//! Quickstart: solve a sparse SPD system resiliently and compare the
//! fault-free baseline against forward recovery with the paper's DVFS
//! optimization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_sparse::generators::stencil_2d;

fn main() {
    // 1. A workload: the 2D 5-point Laplacian on a 100x100 grid, with the
    //    all-ones solution as ground truth.
    let a = stencil_2d(100, 100);
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    println!(
        "workload: {} rows, {} nonzeros ({:.1} nnz/row)",
        a.nrows(),
        a.nnz(),
        a.nnz_per_row()
    );

    // 2. Fault-free baseline on a virtual 64-rank cluster.
    let ranks = 64;
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, ranks));
    println!(
        "\nfault-free: {} iterations, T = {:.3} s, E = {:.1} J, P = {:.1} W",
        ff.iterations, ff.time_s, ff.energy_j, ff.avg_power_w
    );

    // 3. The same solve with 5 node failures, recovered by the paper's
    //    optimized LI forward recovery with DVFS power management.
    let faults = FaultSchedule::evenly_spaced(5, ff.iterations, ranks, FaultClass::Snf, 42);
    let cfg = RunConfig::new(Scheme::li_local_cg(), ranks)
        .with_faults(faults)
        .with_dvfs(DvfsPolicy::ThrottleWaiters);
    let li = run(&a, &b, &cfg);
    println!(
        "{}: {} iterations, T = {:.3} s, E = {:.1} J, P = {:.1} W ({} faults recovered)",
        li.scheme, li.iterations, li.time_s, li.energy_j, li.avg_power_w, li.faults_injected
    );

    let n = li.normalized_vs(&ff);
    println!(
        "\nvs fault-free: time x{:.2}, energy x{:.2}, power x{:.2}",
        n.time, n.energy, n.power
    );
    assert!(li.converged, "resilient solve must converge");
    println!(
        "final relative residual: {:.2e}",
        li.final_relative_residual
    );
}
