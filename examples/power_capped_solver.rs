//! Resilient solving under a node power budget.
//!
//! The paper's motivation (§2.3): "the additional power required to
//! provide resilience reduces the power available for computation". This
//! example makes that concrete — given a node power cap, it picks the
//! highest admissible DVFS frequency, derates the virtual cluster
//! accordingly, and shows how the cap changes the time/energy balance of
//! a resilient run (and why DMR may simply not fit the budget).
//!
//! ```text
//! cargo run --release --example power_capped_solver [cap_watts]
//! ```

use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_power::{CoreState, PowerCap, PowerModel};
use rsls_sparse::generators::{banded_spd, BandedConfig};

fn main() {
    let cap_w: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150.0);
    let cores = 24; // one node
    let model = PowerModel::default();
    let cap = PowerCap::new(cap_w);

    println!("node: {cores} cores, power cap {cap_w} W");
    let uncapped = model.group_power(&[(CoreState::Compute, model.freq_table().max(), cores)]);
    println!("uncapped compute power: {uncapped:.1} W");

    let Some(freq) = cap.max_frequency(&model, CoreState::Compute, cores) else {
        println!("cap is below the lowest DVFS level for {cores} cores — nothing can run");
        return;
    };
    println!(
        "admissible frequency: {freq:.1} GHz (speed factor {:.2}) -> {:.1} W",
        model.speed_factor(freq),
        model.group_power(&[(CoreState::Compute, freq, cores)])
    );

    // DMR needs 2x the cores; does the replica fit the same budget?
    let dmr_fits = cap.admits(
        &model,
        &[(CoreState::Compute, model.freq_table().min(), 2 * cores)],
    );
    println!(
        "DMR (2x cores even at f_min): {}",
        if dmr_fits {
            "fits the budget"
        } else {
            "does NOT fit the budget"
        }
    );

    // Run a capped resilient solve: the whole cluster is derated to the
    // admissible frequency (modeled through per-rank speed factors folded
    // into the flop rate).
    let a = banded_spd(&BandedConfig::regular(3000, 9, 3e-4, 7).with_band_decay(0.3));
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);

    for (label, pinned) in [("uncapped", None), ("capped", Some(freq))] {
        let ff = {
            let mut cfg = RunConfig::new(Scheme::FaultFree, cores);
            cfg.frequency_ghz = pinned;
            run(&a, &b, &cfg)
        };
        let faults = FaultSchedule::evenly_spaced(3, ff.iterations, cores, FaultClass::Snf, 9);
        let mut cfg = RunConfig::new(Scheme::li_local_cg(), cores)
            .with_faults(faults)
            .with_dvfs(DvfsPolicy::ThrottleWaiters);
        cfg.frequency_ghz = pinned;
        let r = run(&a, &b, &cfg);
        println!(
            "{label:<9} LI-DVFS: T = {:.3} s, E = {:.1} J, avg P = {:.1} W",
            r.time_s, r.energy_j, r.avg_power_w
        );
    }
    println!("\n(capping stretches time and trims power; energy moves by the net of the two)");
}
