//! Answer the paper's research question 4 for a concrete workload:
//! *which recovery mechanism should this job use?*
//!
//! Measures the workload once per scheme family on the virtual cluster,
//! fits the §3 model parameters, and asks the advisor for a ranking under
//! each objective (time, energy, power) — including the system-wide-outage
//! situation where memory-based schemes are disqualified.
//!
//! ```text
//! cargo run --release --example scheme_advisor [matrix]
//! ```

use rsls_core::{DvfsPolicy, Scheme};
use rsls_experiments::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use rsls_experiments::Scale;
use rsls_models::{recommend, FittedParams, Objective, Situation};

fn main() {
    let matrix = std::env::args().nth(1).unwrap_or_else(|| "crystm02".into());
    let ranks = 64;
    let (a, b) = workload(&matrix, Scale::from_env());
    println!("workload: {matrix} ({} rows), {ranks} ranks", a.nrows());

    let ff = run_fault_free(&a, &b, ranks);
    let (faults, mtbf) = poisson_faults_for(&ff, 4.0, ranks, "advisor");
    println!(
        "measured fault-free: {} iterations, {:.3} s; fault rate 1/{:.3} s",
        ff.iterations, ff.time_s, mtbf
    );

    // One measurement per family to fit the unit costs.
    let fw_run = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
        .dvfs(DvfsPolicy::ThrottleWaiters)
        .faults(faults.clone())
        .tag("advisor-fw")
        .mtbf_s(mtbf)
        .execute();
    let crd_run = SchemeRun::new(&a, &b, ranks, Scheme::cr_disk())
        .faults(faults)
        .tag("advisor-crd")
        .mtbf_s(mtbf)
        .execute();
    let fw_fit = FittedParams::from_reports(&fw_run, &ff);
    let crd_fit = FittedParams::from_reports(&crd_run, &ff);

    let situation = Situation::from_fits(ff.time_s, 1.0 / mtbf, &fw_fit, &crd_fit, ranks);

    for objective in [Objective::Time, Objective::Energy, Objective::Power] {
        let ranked = recommend(&situation, objective);
        println!("\nobjective {objective:?}:");
        for (i, e) in ranked.iter().enumerate() {
            println!(
                "  {}. {:<5} T={:.2}x P={:.2}x E={:.2}x",
                i + 1,
                e.label,
                e.t_norm,
                e.p_norm,
                e.e_norm
            );
        }
    }

    // Same question under system-wide outages: memory-based recovery is
    // off the table.
    let swo = Situation {
        memory_survives: false,
        ..situation
    };
    let ranked = recommend(&swo, Objective::Energy);
    println!("\nobjective Energy, system-wide outages (no surviving memory):");
    for (i, e) in ranked.iter().enumerate() {
        println!(
            "  {}. {:<5} T={:.2}x P={:.2}x E={:.2}x",
            i + 1,
            e.label,
            e.t_norm,
            e.p_norm,
            e.e_norm
        );
    }
}
