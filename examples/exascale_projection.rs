//! Project resilience costs from measured runs to exascale (§6).
//!
//! Measures one suite workload on the virtual cluster, fits the §3 model
//! parameters from the run reports, and projects `T_res`/`E_res`/power
//! for every scheme under weak scaling with a decreasing system MTBF —
//! the Figure 9 pipeline end-to-end, starting from *your own measured
//! parameters* instead of the defaults.
//!
//! ```text
//! cargo run --release --example exascale_projection
//! ```

use rsls_core::{DvfsPolicy, Scheme};
use rsls_experiments::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use rsls_experiments::Scale;
use rsls_models::general::OverheadModel;
use rsls_models::{project_scheme, FittedParams, ProjectionConfig, ProjectionScheme};

fn main() {
    let ranks = 64;
    let (a, b) = workload("crystm02", Scale::Quick);
    println!("measuring crystm02 analog on {ranks} virtual ranks...");
    let ff = run_fault_free(&a, &b, ranks);
    let (faults, mtbf) = poisson_faults_for(&ff, 4.0, ranks, "projection");

    let li = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
        .dvfs(DvfsPolicy::ThrottleWaiters)
        .faults(faults.clone())
        .tag("proj")
        .mtbf_s(mtbf)
        .execute();
    let crd = SchemeRun::new(&a, &b, ranks, Scheme::cr_disk())
        .faults(faults)
        .tag("proj")
        .mtbf_s(mtbf)
        .execute();

    let li_fit = FittedParams::from_reports(&li, &ff);
    let crd_fit = FittedParams::from_reports(&crd, &ff);
    println!(
        "fitted: t_iter = {:.2e} s, t_const = {:.2e} s/fault, t_C(disk) = {:.2e} s",
        li_fit.t_iter_s, li_fit.t_const_s, crd_fit.t_c_s
    );

    // Feed the fitted constants into the §6 projection. Per the paper,
    // t_C of CR-D and t_const of FW grow linearly with system size; the
    // measured values anchor the lines at the measured scale.
    let cfg = ProjectionConfig {
        t_solve_s: ff.time_s,
        overhead: OverheadModel {
            spmv_comm_s: ff.time_s * 0.05,
            spmv_growth_per_doubling: 0.08,
            dot_comm_per_level_s: ff.time_s * 0.005,
            reference_n: ranks,
        },
        tc_disk_base_s: crd_fit.t_c_s,
        tc_disk_slope_s: crd_fit.t_c_s / ranks as f64,
        t_const_base_s: li_fit.t_const_s,
        t_const_slope_s: li_fit.t_const_s / ranks as f64 * 0.1,
        fw_extra_frac_per_fault: (li_fit.t_extra_per_fault_s / ff.time_s).max(1e-4),
        ..ProjectionConfig::default()
    };

    println!("\nprojected normalized overheads (T_res | E_res | P):");
    println!(
        "{:>10}  {:>22}  {:>22}  {:>22}  {:>22}",
        "#procs", "RD", "CR-D", "CR-M", "FW"
    );
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let mut row = format!("{n:>10}");
        for s in [
            ProjectionScheme::Rd,
            ProjectionScheme::CrDisk,
            ProjectionScheme::CrMemory,
            ProjectionScheme::Forward,
        ] {
            let p = project_scheme(s, &cfg, n);
            row.push_str(&format!(
                "  {:>6.2} {:>6.2} {:>6.2} ",
                p.t_res_norm, p.e_res_norm, p.p_norm
            ));
        }
        println!("{row}");
    }
    println!("\ntrends (paper Fig. 9): RD flat; CR-D grows fastest; CR-M negligible;");
    println!("FW grows ~linearly; FW/CR-D power drops as recovery time dominates.");
}
