//! Compare every recovery scheme on one suite matrix.
//!
//! ```text
//! cargo run --release --example compare_schemes [matrix] [faults]
//! # e.g.
//! cargo run --release --example compare_schemes crystm02 10
//! ```
//!
//! Prints a Table 5-style normalized comparison: time, power, energy,
//! and iterations per scheme, normalized to the fault-free run.

use rsls_core::{DvfsPolicy, Scheme};
use rsls_experiments::output::{f2, Table};
use rsls_experiments::runners::{
    cr_interval_for, evenly_spaced_faults, run_fault_free, standard_schemes, workload, SchemeRun,
};
use rsls_experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let matrix = args.first().map(String::as_str).unwrap_or("crystm02");
    let k_faults: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let scale = Scale::from_env();
    let ranks = scale.default_ranks();

    let (a, b) = workload(matrix, scale);
    println!(
        "matrix {matrix}: {} rows, {:.1} nnz/row, {ranks} ranks, {k_faults} faults\n",
        a.nrows(),
        a.nnz_per_row()
    );

    let ff = run_fault_free(&a, &b, ranks);
    let interval = cr_interval_for(scale, ff.iterations);

    let mut table = Table::new(
        format!("Recovery-scheme comparison on {matrix}"),
        &["scheme", "iters", "T", "P", "E", "converged"],
    );
    for (scheme, _) in standard_schemes(interval) {
        // Interpolating schemes get the paper's DVFS optimization.
        let dvfs = if scheme.is_forward() {
            DvfsPolicy::ThrottleWaiters
        } else {
            DvfsPolicy::OsDefault
        };
        let r = if scheme == Scheme::FaultFree {
            ff.clone()
        } else {
            let faults = evenly_spaced_faults(k_faults, ff.iterations, ranks, matrix);
            SchemeRun::new(&a, &b, ranks, scheme)
                .dvfs(dvfs)
                .faults(faults)
                .tag("compare")
                .execute()
        };
        let n = r.normalized_vs(&ff);
        table.push_row(vec![
            r.scheme.clone(),
            r.iterations.to_string(),
            f2(n.time),
            f2(n.power),
            f2(n.energy),
            r.converged.to_string(),
        ]);
    }
    println!("{}", table.render());
}
