//! End-to-end assertions of the paper's headline claims, spanning every
//! crate in the workspace. Each test is a compact version of one claim
//! from the evaluation (the full-size reproductions are produced by
//! `rsls-run`).

use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, ForwardKind, Scheme};
use rsls_faults::{FaultClass, FaultSchedule, MtbfEstimator, SystemScale};
use rsls_models::{project_scheme, validate, ProjectionConfig, ProjectionScheme};
use rsls_sparse::generators::{banded_spd, BandedConfig};
use rsls_sparse::CsrMatrix;

const RANKS: usize = 16;

fn workload() -> (CsrMatrix, Vec<f64>) {
    let a = banded_spd(&BandedConfig::regular(2000, 9, 4e-4, 31).with_band_decay(0.3));
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    (a, b)
}

fn faults(k: usize, ff_iters: usize) -> FaultSchedule {
    FaultSchedule::evenly_spaced(k, ff_iters, RANKS, FaultClass::Snf, 77)
}

/// §1 / Figure 1: exascale MTBF is within an hour.
#[test]
fn claim_exascale_mtbf_within_an_hour() {
    let est = MtbfEstimator::default();
    assert!(est.combined_system_mtbf_h(SystemScale::exascale()) < 1.0);
    assert!(est.combined_system_mtbf_h(SystemScale::petascale()) > 0.1);
}

/// §2.2 / Figure 3: every mechanism costs something; FW costs the least
/// energy; RD doubles power without a time overhead.
#[test]
fn claim_recovery_mechanisms_cost_time_or_energy() {
    let (a, b) = workload();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let sched = faults(5, ff.iterations);

    let rd = run(
        &a,
        &b,
        &RunConfig::new(Scheme::Dmr, RANKS).with_faults(sched.clone()),
    );
    let fw = run(
        &a,
        &b,
        &RunConfig::new(Scheme::li_local_cg(), RANKS)
            .with_faults(sched.clone())
            .with_dvfs(DvfsPolicy::ThrottleWaiters),
    );
    let mut cr_cfg = RunConfig::new(Scheme::cr_disk(), RANKS).with_faults(sched);
    cr_cfg.mtbf_s = Some(ff.time_s / 5.0);
    cr_cfg.run_tag = "claims-crd".into();
    let cr = run(&a, &b, &cr_cfg);

    // RD: no time overhead, 2x power and energy.
    assert!(rd.time_s <= ff.time_s * 1.02);
    assert!((rd.energy_j / ff.energy_j - 2.0).abs() < 0.05);
    // FW: least energy among the recovery mechanisms.
    assert!(fw.energy_j < rd.energy_j);
    assert!(fw.energy_j < cr.energy_j);
    // Every mechanism converges despite the faults.
    assert!(rd.converged && fw.converged && cr.converged);
}

/// §5.2 / Figure 5 + Table 4: F0/FI worst, LI/LSI better, CR between;
/// RD tracks FF exactly.
#[test]
fn claim_recovery_accuracy_ordering() {
    let (a, b) = workload();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let sched = faults(5, ff.iterations);
    let iters_of = |scheme: Scheme| {
        let mut cfg = RunConfig::new(scheme, RANKS).with_faults(sched.clone());
        cfg.run_tag = format!("claims-{}", scheme.label().replace([' ', '(', ')'], ""));
        let r = run(&a, &b, &cfg);
        assert!(r.converged, "{} failed to converge", r.scheme);
        r.iterations
    };
    let rd = iters_of(Scheme::Dmr);
    let f0 = iters_of(Scheme::Forward(ForwardKind::Zero));
    let fi = iters_of(Scheme::Forward(ForwardKind::InitialGuess));
    let li = iters_of(Scheme::li_local_cg());
    let lsi = iters_of(Scheme::lsi_local_cg());
    let cr = iters_of(Scheme::cr_memory());

    assert_eq!(rd, ff.iterations, "RD must track FF");
    assert!(f0 > ff.iterations && fi > ff.iterations);
    assert!(li < f0, "LI ({li}) must beat F0 ({f0})");
    assert!(lsi < f0, "LSI ({lsi}) must beat F0 ({f0})");
    assert!(cr > ff.iterations, "CR rolls back and recomputes");
}

/// §4.2 / Figure 7: DVFS cuts power/energy at identical performance.
#[test]
fn claim_dvfs_is_performance_neutral() {
    let (a, b) = workload();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let sched = faults(5, ff.iterations);
    let base = run(
        &a,
        &b,
        &RunConfig::new(Scheme::lsi_local_cg(), RANKS).with_faults(sched.clone()),
    );
    let dvfs = run(
        &a,
        &b,
        &RunConfig::new(Scheme::lsi_local_cg(), RANKS)
            .with_faults(sched)
            .with_dvfs(DvfsPolicy::ThrottleWaiters),
    );
    assert_eq!(base.iterations, dvfs.iterations);
    assert!((base.time_s - dvfs.time_s).abs() < 1e-9);
    assert!(dvfs.energy_j < base.energy_j);
}

/// §5.3 / Table 6: the analytical models order the schemes like the
/// measurements do.
///
/// The §3 CR model assumes the Young regime `t_C ≪ MTBF` (as on the
/// paper's testbed); the virtual machine's disk latency is scaled down so
/// the miniature test workload sits in that regime too.
#[test]
fn claim_models_match_experiment_ordering() {
    let (a, b) = workload();
    let machine = rsls_cluster::MachineConfig {
        disk_latency_s: 5.0e-5,
        ..Default::default()
    };
    let mut ff_cfg = RunConfig::new(Scheme::FaultFree, RANKS);
    ff_cfg.machine = machine.clone();
    let ff = run(&a, &b, &ff_cfg);
    let sched = faults(4, ff.iterations);

    let mut crm_cfg = RunConfig::new(Scheme::cr_memory(), RANKS).with_faults(sched.clone());
    crm_cfg.machine = machine.clone();
    crm_cfg.mtbf_s = Some(ff.time_s / 4.0);
    let crm = run(&a, &b, &crm_cfg);
    let mut crd_cfg = RunConfig::new(Scheme::cr_disk(), RANKS).with_faults(sched);
    crd_cfg.machine = machine;
    crd_cfg.mtbf_s = Some(ff.time_s / 4.0);
    crd_cfg.run_tag = "claims-t6".into();
    let crd = run(&a, &b, &crd_cfg);

    let row_m = validate(&crm, &ff);
    let row_d = validate(&crd, &ff);
    // Model and experiment agree: CR-D costs more than CR-M.
    assert!(row_d.exp_t_res >= row_m.exp_t_res);
    assert!(row_d.model_t_res >= row_m.model_t_res);
    // The CR-D prediction lands in the right ballpark (the paper accepts
    // over-estimation: "such estimation is acceptable").
    if row_d.exp_t_res > 0.01 {
        let ratio = row_d.model_t_res / row_d.exp_t_res;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "CR-D model/exp ratio {ratio}"
        );
    }
}

/// §6 / Figure 9: projected trends — RD flat, CR-D fastest-growing,
/// CR-M negligible, FW in between; FW/CR-D power drops with scale.
#[test]
fn claim_projection_trends() {
    let cfg = ProjectionConfig::default();
    let t = |s, n| project_scheme(s, &cfg, n).t_res_norm;
    let big = 1_000_000;
    assert_eq!(t(ProjectionScheme::Rd, big), 0.0);
    assert!(t(ProjectionScheme::CrMemory, big) < 0.05);
    assert!(t(ProjectionScheme::Forward, big) > t(ProjectionScheme::Forward, 1_000));
    assert!(t(ProjectionScheme::CrDisk, big) > t(ProjectionScheme::Forward, big));
    let p = |s, n| project_scheme(s, &cfg, n).p_norm;
    assert!(p(ProjectionScheme::CrDisk, big) < p(ProjectionScheme::CrDisk, 1_000));
    assert!(p(ProjectionScheme::Forward, big) < p(ProjectionScheme::Forward, 1_000));
}

/// §4.1 / Figure 4: the localized CG construction is never slower than
/// the exact baselines end-to-end. LI wins outright; LSI's advantage over
/// the parallel-QR baseline comes from avoided *communication*, which
/// only dominates at scale — at 16 ranks we allow a small slack.
#[test]
fn claim_localized_construction_wins() {
    let (a, b) = workload();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let sched = faults(4, ff.iterations);
    let t_of = |scheme: Scheme| {
        let r = run(
            &a,
            &b,
            &RunConfig::new(scheme, RANKS).with_faults(sched.clone()),
        );
        assert!(r.converged);
        r.time_s
    };
    assert!(t_of(Scheme::li_local_cg()) <= t_of(Scheme::li_exact()) * 1.001);
    assert!(t_of(Scheme::lsi_local_cg()) <= t_of(Scheme::lsi_exact()) * 1.15);
}
