//! Full-stack pipeline tests: matrix generation → serialization → solve →
//! fault injection → recovery → reporting, with cross-cutting invariants
//! (energy = ∫P dt, breakdown consistency, determinism).

use std::io::BufReader;

use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_sparse::generators::{stencil_2d, wathen};
use rsls_sparse::io::{read_matrix_market, write_matrix_market};
use rsls_sparse::CsrMatrix;

fn rhs(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    b
}

#[test]
fn matrix_market_round_trip_preserves_solver_behaviour() {
    let a = wathen(6, 6, 3);
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).unwrap();
    let a2 = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(a, a2);

    let b = rhs(&a);
    let r1 = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 4));
    let r2 = run(&a2, &b, &RunConfig::new(Scheme::FaultFree, 4));
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.energy_j, r2.energy_j);
}

#[test]
fn energy_equals_average_power_times_time() {
    let a = stencil_2d(40, 40);
    let b = rhs(&a);
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 8));
    let faults = FaultSchedule::evenly_spaced(3, ff.iterations, 8, FaultClass::Snf, 1);
    for scheme in [
        Scheme::FaultFree,
        Scheme::Dmr,
        Scheme::li_local_cg(),
        Scheme::cr_memory(),
    ] {
        let mut cfg = RunConfig::new(scheme, 8).with_faults(faults.clone());
        cfg.run_tag = format!("pipe-{}", scheme.label().replace([' ', '(', ')'], ""));
        let r = run(&a, &b, &cfg);
        assert!(
            (r.energy_j - r.avg_power_w * r.time_s).abs() <= 1e-6 * r.energy_j,
            "{}: E = {} vs P*T = {}",
            r.scheme,
            r.energy_j,
            r.avg_power_w * r.time_s
        );
        // The power profile integrates to the same energy.
        let integral: f64 = r
            .power_profile
            .iter()
            .map(|s| s.watts * (s.t1 - s.t0))
            .sum();
        assert!((integral - r.energy_j).abs() <= 1e-6 * r.energy_j);
        // The breakdown covers the whole run.
        assert!((r.breakdown.total_s() - r.time_s).abs() <= 1e-6 * r.time_s.max(1e-12));
    }
}

#[test]
fn reports_are_bitwise_deterministic() {
    let a = stencil_2d(30, 30);
    let b = rhs(&a);
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 8));
    let faults = FaultSchedule::evenly_spaced(4, ff.iterations, 8, FaultClass::Sdc, 9);
    let mut cfg = RunConfig::new(Scheme::lsi_local_cg(), 8)
        .with_faults(faults)
        .with_dvfs(DvfsPolicy::ThrottleWaiters);
    cfg.record_history = true;
    let r1 = run(&a, &b, &cfg);
    let r2 = run(&a, &b, &cfg);
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.time_s.to_bits(), r2.time_s.to_bits());
    assert_eq!(r1.energy_j.to_bits(), r2.energy_j.to_bits());
    assert_eq!(r1.history.len(), r2.history.len());
}

#[test]
fn run_report_serializes_to_json() {
    let a = stencil_2d(20, 20);
    let b = rhs(&a);
    let r = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 4));
    let json = serde_json::to_string(&r).expect("RunReport must serialize");
    assert!(json.contains("\"scheme\":\"FF\""));
    let back: rsls_core::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.iterations, r.iterations);
}

#[test]
fn pinned_frequency_trades_time_for_power() {
    let a = stencil_2d(40, 40);
    let b = rhs(&a);
    let fast = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 8));
    let mut cfg = RunConfig::new(Scheme::FaultFree, 8);
    cfg.frequency_ghz = Some(1.2);
    let slow = run(&a, &b, &cfg);
    assert_eq!(fast.iterations, slow.iterations, "math unchanged");
    assert!(slow.time_s > fast.time_s, "throttled run must be slower");
    assert!(
        slow.avg_power_w < fast.avg_power_w,
        "throttled run must draw less power"
    );
}

#[test]
fn every_fault_class_is_recoverable() {
    let a = stencil_2d(30, 30);
    let b = rhs(&a);
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 8));
    for class in [
        FaultClass::Snf,
        FaultClass::Due,
        FaultClass::Sdc,
        FaultClass::Lnf,
    ] {
        let faults = FaultSchedule::evenly_spaced(3, ff.iterations, 8, class, 4);
        let r = run(
            &a,
            &b,
            &RunConfig::new(Scheme::li_local_cg(), 8).with_faults(faults),
        );
        assert!(r.converged, "{class:?} not recovered");
        assert_eq!(r.faults_injected, 3);
    }
}

#[test]
fn zero_fault_schedule_matches_fault_free_for_any_forward_scheme() {
    let a = stencil_2d(25, 25);
    let b = rhs(&a);
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, 4));
    for scheme in [Scheme::li_local_cg(), Scheme::lsi_local_cg(), Scheme::Dmr] {
        let r = run(&a, &b, &RunConfig::new(scheme, 4));
        assert_eq!(r.iterations, ff.iterations);
        assert_eq!(r.time_s, ff.time_s, "{}", r.scheme);
    }
}

#[test]
fn distributed_cg_validates_the_drivers_communication_model() {
    // The physical SPMD implementation and the driver's logical model must
    // agree on the data actually moved: the driver charges per-iteration
    // halo volume derived from off-block nonzeros; DistCg moves exactly
    // the deduplicated halo entries. The model may over-charge (it counts
    // nonzeros, not unique columns) but never under-charge.
    use rsls_solvers::DistCg;
    use rsls_sparse::Partition;

    let a = stencil_2d(40, 40);
    let b = rhs(&a);
    let p = 8;
    let part = Partition::balanced(a.nrows(), p);
    let dist = DistCg::new(&a, &b, part.clone());
    let physical_bytes = dist.plan().bytes_per_exchange();

    // The driver's per-iteration charge: halo_bytes per rank × 2 neighbors
    // × p ranks (see iteration_costs + halo_exchange).
    let total_off: u64 = (0..p)
        .map(|r| a.off_block_nnz(part.range(r), part.range(r)) as u64)
        .sum();
    let model_bytes = (total_off / p as u64 / 2).max(8) * 8 * 2 * p as u64;
    assert!(
        model_bytes >= physical_bytes,
        "model ({model_bytes} B) must not under-charge the physical exchange ({physical_bytes} B)"
    );
    assert!(
        model_bytes <= 4 * physical_bytes,
        "model ({model_bytes} B) should stay within 4x of physical ({physical_bytes} B)"
    );
}

#[test]
fn distributed_cg_recovers_via_li_reconstruction() {
    // End-to-end SPMD recovery: corrupt a rank, rebuild its block with the
    // LI construction, and converge — the physical version of what the
    // driver simulates.
    use rsls_core::construction::{li, ConstructionMethod};
    use rsls_solvers::DistCg;
    use rsls_sparse::Partition;

    let a = stencil_2d(25, 25);
    let b = rhs(&a);
    let part = Partition::balanced(a.nrows(), 5);
    let mut dist = DistCg::new(&a, &b, part.clone());
    for _ in 0..50 {
        dist.step();
    }
    let pre_fault = dist.relative_residual();
    dist.corrupt_rank(2);
    // Reconstruct from the surviving global view (rank 2's block is NaN,
    // but LI only reads the *other* blocks).
    let x = dist.x_global();
    let res = li(
        &a,
        &part,
        2,
        &x,
        &b,
        ConstructionMethod::local_cg_default(),
        pre_fault,
    );
    dist.restore_rank(2, &res.x_block);
    let after = dist.relative_residual();
    assert!(
        after < 100.0 * pre_fault,
        "LI recovery must roughly preserve progress: {pre_fault} -> {after}"
    );
    let (_, ok) = dist.solve(1e-10, 5000);
    assert!(ok);
}
