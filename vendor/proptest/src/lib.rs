//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Deterministic property testing: each `proptest!` test runs its body
//! for [`ProptestConfig::cases`] cases, with inputs drawn from
//! [`Strategy`] values seeded per `(test name, case index)` — fully
//! reproducible across runs and platforms, no shrinking. The supported
//! strategy surface is what the RSLS test suites use: numeric ranges,
//! tuples, `Just`, `prop_map`, `prop_flat_map`, and `collection::vec`.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod prelude {
    //! Everything the test files import with `use proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Explicit test-case failure, for `return Err(TestCaseError::fail(..))`
/// style early exits inside `proptest!` bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fails the current case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic generator for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let name_hash = test_name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    StdRng::seed_from_u64(name_hash ^ ((case as u64) << 32 | case as u64))
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    start
                } else {
                    // Sample the half-open range then map the excluded
                    // endpoint back in by drawing once more on a coin flip;
                    // exactness does not matter for test-input generation.
                    let v: $t = rng.random_range(start..end);
                    if rng.random::<bool>() && v == start { end } else { v }
                }
            }
        }
    )*};
}

impl_range_inclusive_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a property holds, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_ne!($left, $right $(, $($fmt)+)?)
    };
}

/// Declares deterministic property tests.
///
/// Each test runs its body once per case with fresh inputs drawn from the
/// argument strategies; the case seed derives from the test name and the
/// case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_and_vec_compose(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..100, n..n + 1)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(x in 0usize..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_rng("some_test", 3);
        let mut b = crate::test_rng("some_test", 3);
        let s = 0usize..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
