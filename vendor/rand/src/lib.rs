//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the subset the RSLS workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension with
//! `random::<T>()` and `random_range(a..b)`. The generator is
//! xoshiro256++ behind a SplitMix64 seeder — deterministic across
//! platforms, which the experiment campaign's content-addressed cache
//! depends on. Streams differ from upstream `rand`'s `StdRng` (ChaCha12);
//! only reproducibility, not stream compatibility, is promised.

use std::ops::Range;

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from the canonical distribution for the type
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is
                // < 2^-64 per draw, irrelevant for experiment scheduling.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + f64::from_rng(rng) * (high - low)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one value from the type's canonical distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from the half-open range `low..high`.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let i = rng.random_range(0..8usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        for _ in 0..100 {
            let b = rng.random_range(40..62usize);
            assert!((40..62).contains(&b));
        }
    }
}
