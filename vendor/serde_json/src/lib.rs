//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Renders and parses the vendored [`serde::Value`] tree. Rendering is
//! byte-deterministic for a given value: object keys keep insertion
//! order, floats use Rust's shortest round-trip (`{:?}`) formatting, and
//! non-finite floats render as `null`. That determinism is what the
//! campaign engine's content-addressed result cache relies on.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON parse/convert failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

// --- writer -------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same bits — deterministic and round-trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos:?}, found {other:?}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {}", *pos)));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos:?}, found {other:?}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error::new(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                // Fast path: copy the whole ASCII run in one shot instead
                // of validating the remaining input per character (which
                // turns large documents quadratic).
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b >= 0x80 || b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                // ASCII bytes are valid UTF-8 by construction.
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
                );
            }
            Some(&b) => {
                // Multi-byte UTF-8: decode just this character (1–4 bytes),
                // never the whole remaining input.
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(Error::new(format!("invalid UTF-8 at byte {}", *pos))),
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| Error::new("truncated UTF-8 sequence in string"))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number bytes"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
            .map(|u| Value::Int(-(u as i64)))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![(1usize, 0.5f64), (2, 0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,0.25]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        let x = 0.1f64 + 0.2f64;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{0007}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corrupt_input_errors_instead_of_panicking() {
        assert!(from_str::<Vec<usize>>("[1, 2,").is_err());
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<usize>("12 34").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1usize];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }
}
