//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the subset the RSLS workspace uses with `std::thread::scope`
//! workers instead of a persistent work-stealing pool:
//!
//! * `slice.par_iter_mut().enumerate().for_each(..)` — chunked over the
//!   available threads (the parallel SpMV path),
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` — dynamically
//!   scheduled, order-preserving (the campaign engine's unit executor),
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — bounds the number
//!   of worker threads for everything running inside `install`.
//!
//! Work items here are coarse (whole CG solves, matrix row blocks), so
//! scoped-thread spawn overhead is irrelevant next to upstream rayon's
//! stealing pool; determinism and ordering are what matter.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `par_iter`-style methods available.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Default thread count when no pool is installed: `RAYON_NUM_THREADS`
/// if set to a positive integer (matching upstream rayon), else the
/// machine's available parallelism. Read once and cached.
fn default_num_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        machine_parallelism()
    })
}

/// Hardware thread count (`available_parallelism`, floor 1). Read once
/// and cached: `available_parallelism` re-reads cgroup quota files on
/// every call, which is far too slow for the kernel hot paths that
/// consult [`effective_num_threads`] per operation.
fn machine_parallelism() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads parallel operations use right now.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        default_num_threads()
    }
}

/// Worker count that can actually run concurrently for compute-bound
/// work: [`current_num_threads`] clamped to the hardware thread count.
///
/// A configured budget above the machine's parallelism only helps work
/// that blocks (I/O, waiting on other jobs); for pure-CPU kernels the
/// extra workers just time-slice. Kernels that are bit-identical at any
/// worker count can use this to skip spawn overhead that cannot pay off.
pub fn effective_num_threads() -> usize {
    current_num_threads().min(machine_parallelism())
}

/// Error building a thread pool (the stand-in cannot actually fail; the
/// type exists for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A bounded thread budget: parallel operations run inside
/// [`ThreadPool::install`] use at most this many workers.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread budget installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Dynamically scheduled, order-preserving parallel map over `0..n`.
///
/// Workers claim indices from a shared cursor, so uneven item costs load
/// balance; results come back in index order. A panicking item panics the
/// whole call after in-flight items finish (callers needing isolation
/// wrap `f` in `catch_unwind`).
pub fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panicked while holding a result slot")
                .expect("all slots are filled once the scope joins")
        })
        .collect()
}

// --- shared-slice parallel iteration ------------------------------------

/// `par_iter()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over the slice.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a shared slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> EnumerateParIter<'a, T> {
        EnumerateParIter { slice: self.slice }
    }

    /// Applies `f` to every element in parallel.
    pub fn for_each(self, f: impl Fn(&'a T) + Sync) {
        self.enumerate().for_each(|(_, t)| f(t));
    }

    /// Maps every element in parallel, preserving order.
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> MappedSlice<'a, T, F> {
        MappedSlice {
            slice: self.slice,
            f,
        }
    }
}

/// Enumerated parallel iterator over a shared slice.
pub struct EnumerateParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> EnumerateParIter<'a, T> {
    /// Applies `f` to every `(index, element)` pair in parallel.
    pub fn for_each(self, f: impl Fn((usize, &'a T)) + Sync) {
        let slice = self.slice;
        run_indexed(slice.len(), |i| f((i, &slice[i])));
    }
}

/// Lazily mapped shared slice.
pub struct MappedSlice<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MappedSlice<'a, T, F> {
    /// Evaluates the map in parallel into an ordered collection.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelResults<R>,
    {
        let slice = self.slice;
        let f = &self.f;
        C::from_ordered(run_indexed(slice.len(), |i| f(&slice[i])))
    }
}

// --- mutable-slice parallel iteration -----------------------------------

/// `par_iter_mut()` / `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// A parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            size: chunk_size.max(1),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Parallel iterator over an exclusive slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> EnumerateParIterMut<'a, T> {
        EnumerateParIterMut { slice: self.slice }
    }

    /// Applies `f` to every element in parallel.
    pub fn for_each(self, f: impl Fn(&mut T) + Sync) {
        self.enumerate().for_each(|(_, t)| f(t));
    }
}

/// Enumerated parallel iterator over an exclusive slice.
pub struct EnumerateParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateParIterMut<'_, T> {
    /// Applies `f` to every `(index, element)` pair, chunked over the
    /// available threads.
    pub fn for_each(self, f: impl Fn((usize, &mut T)) + Sync) {
        let len = self.slice.len();
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            for (i, item) in self.slice.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        std::thread::scope(|s| {
            for (ci, items) in self.slice.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    let offset = ci * chunk;
                    for (i, item) in items.iter_mut().enumerate() {
                        f((offset + i, item));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over non-overlapping mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its chunk index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel iterator over non-overlapping mutable chunks.
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

/// Work list handing each `(chunk_index, chunk)` to exactly one worker.
type ChunkWork<'a, T> = Vec<Mutex<Option<(usize, &'a mut [T])>>>;

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Applies `f` to every `(chunk_index, chunk)` pair. Workers claim
    /// chunks from a shared cursor, so uneven chunk costs load balance;
    /// chunks are disjoint, so writes never race.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        let n_chunks = self.slice.len().div_ceil(self.size);
        let threads = current_num_threads().min(n_chunks.max(1));
        if threads <= 1 || n_chunks <= 1 {
            for (ci, chunk) in self.slice.chunks_mut(self.size).enumerate() {
                f((ci, chunk));
            }
            return;
        }
        let work: ChunkWork<'_, T> = self
            .slice
            .chunks_mut(self.size)
            .enumerate()
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let item = work[i].lock().unwrap().take();
                    if let Some(pair) = item {
                        f(pair);
                    }
                });
            }
        });
    }
}

// --- owned parallel iteration -------------------------------------------

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index in parallel, preserving order.
    pub fn map<R: Send, F: Fn(usize) -> R + Sync>(self, f: F) -> MappedRange<F> {
        MappedRange {
            range: self.range,
            f,
        }
    }

    /// Applies `f` to every index in parallel.
    pub fn for_each(self, f: impl Fn(usize) + Sync) {
        let start = self.range.start;
        run_indexed(self.range.len(), |i| f(start + i));
    }
}

/// Lazily mapped index range.
pub struct MappedRange<F> {
    range: Range<usize>,
    f: F,
}

impl<F> MappedRange<F> {
    /// Evaluates the map in parallel into an ordered collection.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: FromParallelResults<R>,
    {
        let start = self.range.start;
        let f = &self.f;
        C::from_ordered(run_indexed(self.range.len(), |i| f(start + i)))
    }
}

/// Collections buildable from ordered parallel results.
pub trait FromParallelResults<T> {
    /// Builds the collection from results in index order.
    fn from_ordered(results: Vec<T>) -> Self;
}

impl<T> FromParallelResults<T> for Vec<T> {
    fn from_ordered(results: Vec<T>) -> Self {
        results
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn mutable_for_each_touches_every_element_once() {
        let mut v = vec![0usize; 1000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn chunked_for_each_covers_every_chunk_once() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = ci * 64 + i + 1;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn chunked_for_each_handles_empty_and_oversized() {
        let mut empty: Vec<u8> = Vec::new();
        empty
            .par_chunks_mut(8)
            .for_each(|c| panic!("no chunks expected, got {}", c.len()));
        let mut v = vec![1u8; 5];
        v.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            assert_eq!(ci, 0);
            assert_eq!(chunk.len(), 5);
        });
    }

    #[test]
    fn mapped_range_preserves_order() {
        let out: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 257);
        for (i, x) in out.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn pool_bounds_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let out: Vec<usize> = (0..64).into_par_iter().map(|i| i + 1).collect();
            assert_eq!(out[63], 64);
        });
        assert_ne!(CURRENT_THREADS.with(std::cell::Cell::get), 2);
    }

    #[test]
    fn effective_threads_clamped_to_machine() {
        let pool = ThreadPoolBuilder::new().num_threads(512).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 512);
            let eff = effective_num_threads();
            assert!(eff >= 1);
            assert!(eff <= 512);
            assert!(eff <= std::thread::available_parallelism().map_or(1, |n| n.get()));
        });
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let main_id = std::thread::current().id();
        pool.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), main_id);
            });
        });
    }
}
