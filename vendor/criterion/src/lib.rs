//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal wall-clock timing harness with criterion's macro and method
//! shapes (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`). Each
//! benchmark runs `sample_size` timed samples and reports min/median
//! to stdout — no statistics engine, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(self.sample_size, &id.into().label, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration (accepted for API parity; the
    /// stand-in reports raw times only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(self.criterion.sample_size, &label, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(self.criterion.sample_size, &label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Declared per-iteration work (reporting hint).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the routine under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    pending: usize,
}

impl Bencher {
    /// Runs and times `routine` once per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.pending {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
        self.pending = 0;
    }
}

fn run_bench(sample_size: usize, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        pending: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples — Bencher::iter never called)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{label:<40} min {:>12.3?}   median {:>12.3?}   ({} samples)",
        min,
        median,
        bencher.samples.len()
    );
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        tiny(&mut c);
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("with-input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
