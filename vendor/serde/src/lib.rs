//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a minimal, self-consistent serialization framework under the
//! `serde` name (see `vendor/README.md`). The public surface mirrors the
//! subset the RSLS crates use:
//!
//! * [`Serialize`] / [`Deserialize`] traits (value-tree based, not
//!   visitor based),
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro (named-field structs and unit/tuple/struct-variant enums),
//! * impls for the primitive, tuple, `Vec`, `Option`, and `String` shapes
//!   the workspace serializes.
//!
//! The interchange representation is the JSON-like [`Value`] tree;
//! `serde_json` (also vendored) renders and parses it. Rendering is
//! deterministic: object keys keep insertion order and floats use Rust's
//! shortest round-trip formatting, which is what makes content-addressed
//! caching of reports byte-stable.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between `Serialize`
/// implementations and the `serde_json` reader/writer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (determinism for hashing).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {LEN}-element array, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl Serialize for std::ops::Range<usize> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl Deserialize for std::ops::Range<usize> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(helpers::field::<usize>(v, "start")?..helpers::field::<usize>(v, "end")?)
    }
}

/// Support functions called by derive-generated code.
pub mod helpers {
    use super::{DeError, Deserialize, Value};

    /// Extracts and deserializes a named field from an object value.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(inner) => {
                T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
            }
            None => Err(DeError::new(format!("missing field `{name}`"))),
        }
    }

    /// Interprets an externally tagged enum value: returns the variant
    /// name and its payload (`Value::Null` for unit variants).
    pub fn variant(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Str(name) => Ok((name.as_str(), &Value::Null)),
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            other => Err(DeError::new(format!(
                "expected enum (string or single-key object), found {other:?}"
            ))),
        }
    }

    /// Extracts the `idx`-th element of a tuple-variant payload.
    pub fn tuple_elem<T: Deserialize>(v: &Value, idx: usize, len: usize) -> Result<T, DeError> {
        if len == 1 {
            // Single-element tuple variants store the payload directly.
            return T::from_value(v);
        }
        match v {
            Value::Array(items) if items.len() == len => T::from_value(&items[idx]),
            other => Err(DeError::new(format!(
                "expected {len}-element tuple payload, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3usize).to_value(), Value::UInt(3));
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1usize, 2.5f64).to_value();
        assert_eq!(v, Value::Array(vec![Value::UInt(1), Value::Float(2.5)]));
        let back: (usize, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2.5));
    }

    #[test]
    fn signed_negative_values_round_trip() {
        let v = (-3i64).to_value();
        assert_eq!(v, Value::Int(-3));
        assert_eq!(i64::from_value(&v).unwrap(), -3);
        assert_eq!(i32::from_value(&Value::UInt(7)).unwrap(), 7);
    }
}
