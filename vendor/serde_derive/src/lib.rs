//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! The build container has no crates.io access, so `syn`/`quote` are not
//! available; the item definition is parsed directly from the
//! `proc_macro::TokenStream` and the impls are emitted as formatted
//! source. Supported shapes — the ones the RSLS workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs,
//! * enums with unit, tuple, and struct variants,
//! * no generic parameters.
//!
//! The generated representation is externally tagged like real serde:
//! `Unit` → `"Unit"`, `Tuple(x)` → `{"Tuple": x}`,
//! `Struct { a }` → `{"Struct": {"a": ...}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed item shape.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Field list of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Derives `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive emitted invalid Serialize impl")
}

/// Derives `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive emitted invalid Deserialize impl")
}

// --- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: {name}");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips any number of `#[...]` / `#![...]` attributes at `toks[*i]`.
fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("malformed attribute: {other:?}"),
        }
    }
}

/// Skips `pub` / `pub(...)` at `toks[*i]`.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Extracts the field names of a `{ name: Type, ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth zero (parenthesized/bracketed types are single groups).
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name);
    }
    names
}

/// Counts the fields of a `(TypeA, TypeB, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == toks.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma (discriminants are not supported).
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --- code generation ----------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::helpers::field(v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::helpers::tuple_elem(v, {k}, {n})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (vname, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let elems: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                };
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), {payload})]),",
                    binders.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let entries: Vec<String> = fnames
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                    fnames.join(", "),
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (vname, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::helpers::tuple_elem(payload, {k}, {n})?"))
                    .collect();
                format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                    elems.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let inits: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: ::serde::helpers::field(payload, \"{f}\")?"))
                    .collect();
                format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                    inits.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let (variant, payload) = ::serde::helpers::variant(v)?;\n\
         let _ = payload;\n\
         match variant {{\n{}\n\
         other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\n\
         \"unknown variant `{{other}}` for {name}\"))),\n\
         }}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}
