//! Service metrics, rendered in the Prometheus text exposition format.
//!
//! Everything is lock-free atomics except the per-`(route, status)`
//! request counters, which live behind one mutex on a `BTreeMap` so the
//! rendered output is deterministically ordered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use rsls_campaign::CampaignSummary;

/// Snapshot of the process-wide artifact caches (sparse block cache,
/// workload interner, halo-plan memo), gathered at scrape time by the
/// server and folded into the exposition alongside the campaign totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCounters {
    /// `rsls_sparse::artifacts` block-extraction cache hits.
    pub sparse_hits: u64,
    /// `rsls_sparse::artifacts` block-extraction cache misses.
    pub sparse_misses: u64,
    /// Entries currently held by the block-extraction cache.
    pub sparse_entries: u64,
    /// Workload-interner hits (`rsls_experiments::artifacts`).
    pub workload_hits: u64,
    /// Workload-interner misses (matrix + rhs generated).
    pub workload_misses: u64,
    /// Memoized matrix-fingerprint hits.
    pub fingerprint_hits: u64,
    /// Matrix fingerprints computed from scratch.
    pub fingerprint_misses: u64,
    /// Halo-plan memo hits (`rsls_solvers::dist`).
    pub halo_hits: u64,
    /// Halo-plan memo misses (plans built).
    pub halo_misses: u64,
}

/// Snapshot of the `rsls-lab` warehouse counters (process-wide,
/// gathered at scrape time from [`rsls_lab`]'s atomics): how many
/// store objects ingest accepted and rejected, and how many queries
/// the warehouse executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabCounters {
    /// Reports ingested into warehouse views.
    pub ingested_objects: u64,
    /// Store entries tolerant decode rejected (counted, not fatal).
    pub ingest_rejected: u64,
    /// Queries executed against warehouse views.
    pub queries: u64,
}

impl LabCounters {
    /// Reads the current process-wide lab counters.
    pub fn gather() -> LabCounters {
        LabCounters {
            ingested_objects: rsls_lab::ingested_objects_total(),
            ingest_rejected: rsls_lab::ingest_rejected_total(),
            queries: rsls_lab::queries_total(),
        }
    }
}

/// Latency histogram bucket upper bounds, in seconds.
const BUCKETS: [f64; 8] = [0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
struct Histogram {
    /// One counter per bucket in [`BUCKETS`]; the implicit `+Inf`
    /// bucket is `count`.
    buckets: [AtomicU64; 8],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        for (bound, counter) in BUCKETS.iter().zip(&self.buckets) {
            if secs <= *bound {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }
}

/// Per-shard slices of the queue counters: one slot per campaign shard
/// so saturation on one (experiment, scale) family is visible even when
/// the process-wide totals look healthy.
#[derive(Debug, Default)]
struct ShardCounters {
    queue_depth: AtomicU64,
    coalesced: AtomicU64,
    computed: AtomicU64,
}

/// All counters and gauges the service exports on `/metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests served, by `(route label, status code)`.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    latency: Histogram,
    /// Per-shard queue counters (length = shard count, ≥ 1).
    shards: Vec<ShardCounters>,
    /// Connections currently open on the event loop (gauge).
    connections_active: AtomicU64,
    /// Connections accepted since boot.
    connections_total: AtomicU64,
    /// Requests served beyond the first on a kept-alive connection.
    keepalive_reuses: AtomicU64,
    /// In-memory result-body cache (`/experiments/{id}`).
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    /// On-disk report-object cache (`/reports/{sha256}`).
    report_hits: AtomicU64,
    report_misses: AtomicU64,
    /// Jobs that actually invoked a harness.
    computed: AtomicU64,
    /// Submissions that coalesced onto an in-flight job at the queue.
    coalesced: AtomicU64,
    /// Submissions rejected because the queue was full.
    rejected: AtomicU64,
    /// Jobs waiting in the queue right now (gauge).
    queue_depth: AtomicU64,
    /// Workers executing a job right now (gauge).
    workers_busy: AtomicU64,
    /// Request handlers that panicked (each isolated to a `500`).
    panics: AtomicU64,
    /// End-to-end `/query` + `/compare` latency (warehouse load,
    /// execution, serialization), observed at the I/O edge.
    lab_latency: Histogram,
}

macro_rules! counters {
    ($($method:ident => $field:ident),+ $(,)?) => {
        $(
            /// Increments the counter this method is named after.
            pub fn $method(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )+
    };
}

impl Metrics {
    /// A zeroed metrics registry with a single shard slot.
    pub fn new() -> Metrics {
        Metrics::with_shards(1)
    }

    /// A zeroed registry with `shards` per-shard counter slots
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Metrics {
        Metrics {
            shards: (0..shards.max(1))
                .map(|_| ShardCounters::default())
                .collect(),
            ..Metrics::default()
        }
    }

    /// Number of per-shard counter slots.
    pub fn shard_count(&self) -> usize {
        self.shards.len().max(1)
    }

    fn shard_slot(&self, shard: usize) -> Option<&ShardCounters> {
        self.shards
            .get(shard.min(self.shards.len().saturating_sub(1)))
    }

    counters! {
        result_cache_hit => result_hits,
        result_cache_miss => result_misses,
        report_cache_hit => report_hits,
        report_cache_miss => report_misses,
        queue_rejected => rejected,
        request_panicked => panics,
        connection_opened => connections_total,
        keepalive_reuse => keepalive_reuses,
    }

    /// Counts one harness-invoking job against `shard` (and the
    /// process-wide total).
    pub fn job_computed_on(&self, shard: usize) {
        self.computed.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.shard_slot(shard) {
            slot.computed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one harness-invoking job on shard 0 (unsharded callers).
    pub fn job_computed(&self) {
        self.job_computed_on(0);
    }

    /// Counts one coalesced submission against `shard` (and the
    /// process-wide total).
    pub fn job_coalesced_on(&self, shard: usize) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.shard_slot(shard) {
            slot.coalesced.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one coalesced submission on shard 0 (unsharded callers).
    pub fn job_coalesced(&self) {
        self.job_coalesced_on(0);
    }

    /// Adjusts the connections-open gauge by `delta`, counting opens
    /// in `rsls_serve_connections_total`.
    pub fn connection_gauge_add(&self, delta: i64) {
        gauge_add(&self.connections_active, delta);
    }

    /// Connections currently open.
    pub fn connections_active(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Requests served beyond the first on kept-alive connections.
    pub fn keepalive_reuses_total(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Records one finished request.
    pub fn observe_request(&self, route: &str, status: u16, elapsed: Duration) {
        let mut map = self.requests.lock().unwrap_or_else(PoisonError::into_inner);
        *map.entry((route.to_string(), status)).or_insert(0) += 1;
        drop(map);
        self.latency.observe(elapsed);
    }

    /// Records one finished warehouse query or comparison.
    pub fn observe_lab_query(&self, elapsed: Duration) {
        self.lab_latency.observe(elapsed);
    }

    /// Adjusts the queued-jobs gauge by `delta` (shard 0 slice).
    pub fn queue_depth_add(&self, delta: i64) {
        self.queue_depth_add_on(0, delta);
    }

    /// Adjusts the queued-jobs gauge by `delta`, against `shard`'s
    /// slice and the process-wide gauge.
    pub fn queue_depth_add_on(&self, shard: usize, delta: i64) {
        gauge_add(&self.queue_depth, delta);
        if let Some(slot) = self.shard_slot(shard) {
            gauge_add(&slot.queue_depth, delta);
        }
    }

    /// Coalesced-submission total for one shard slice.
    pub fn shard_coalesced_total(&self, shard: usize) -> u64 {
        self.shard_slot(shard)
            .map_or(0, |s| s.coalesced.load(Ordering::Relaxed))
    }

    /// Adjusts the busy-workers gauge by `delta`.
    pub fn workers_busy_add(&self, delta: i64) {
        gauge_add(&self.workers_busy, delta);
    }

    /// Current queued-jobs gauge.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Running total of queue-coalesced submissions.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Running total of jobs that invoked a harness.
    pub fn computed_total(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Renders the exposition text. `campaign`/`campaign_waiters` fold
    /// in the engine's own totals, and `artifacts` the process-wide
    /// artifact-cache counters, so one scrape covers every layer.
    pub fn render(
        &self,
        campaign: &CampaignSummary,
        campaign_waiters: usize,
        artifacts: &ArtifactCounters,
        lab: &LabCounters,
    ) -> String {
        let mut out = String::new();
        let mut scalar = |name: &str, kind: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };

        scalar(
            "rsls_serve_result_cache_hits_total",
            "counter",
            "Experiment requests served from the in-memory result cache.",
            self.result_hits.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_result_cache_misses_total",
            "counter",
            "Experiment requests that needed a computation or coalesce.",
            self.result_misses.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_report_cache_hits_total",
            "counter",
            "Report objects served from the content-addressed store.",
            self.report_hits.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_report_cache_misses_total",
            "counter",
            "Report lookups that found no object.",
            self.report_misses.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_computations_total",
            "counter",
            "Jobs that invoked an experiment harness.",
            self.computed.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_coalesced_total",
            "counter",
            "Submissions coalesced onto an in-flight job.",
            self.coalesced.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_queue_rejected_total",
            "counter",
            "Submissions rejected with 503 because the queue was full.",
            self.rejected.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_request_panics_total",
            "counter",
            "Request handlers that panicked (isolated to a 500).",
            self.panics.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_queue_depth",
            "gauge",
            "Jobs waiting in the work queue.",
            self.queue_depth.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_workers_busy",
            "gauge",
            "Workers currently executing a job.",
            self.workers_busy.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_connections_active",
            "gauge",
            "Connections currently open on the event loop.",
            self.connections_active.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_connections_total",
            "counter",
            "Connections accepted since boot.",
            self.connections_total.load(Ordering::Relaxed),
        );
        scalar(
            "rsls_serve_keepalive_reuses_total",
            "counter",
            "Requests served beyond the first on a kept-alive connection.",
            self.keepalive_reuses.load(Ordering::Relaxed),
        );

        scalar(
            "rsls_campaign_units_total",
            "counter",
            "Units submitted to the campaign engine.",
            campaign.total as u64,
        );
        scalar(
            "rsls_campaign_units_executed_total",
            "counter",
            "Units the campaign engine actually solved.",
            campaign.executed as u64,
        );
        scalar(
            "rsls_campaign_cache_hits_total",
            "counter",
            "Units served from the content-addressed cache.",
            campaign.cache_hits as u64,
        );
        scalar(
            "rsls_campaign_units_failed_total",
            "counter",
            "Units that failed every attempt.",
            campaign.failed as u64,
        );
        scalar(
            "rsls_campaign_coalesced_total",
            "counter",
            "Units coalesced onto an identical in-flight unit.",
            campaign.coalesced as u64,
        );
        scalar(
            "rsls_campaign_coalesce_waiters",
            "gauge",
            "Threads parked on an in-flight unit right now.",
            campaign_waiters as u64,
        );
        scalar(
            "rsls_campaign_unit_retries_total",
            "counter",
            "Unit re-attempts after a panic (backoff retries).",
            campaign.retries as u64,
        );
        scalar(
            "rsls_campaign_units_degraded_total",
            "counter",
            "Units skipped behind an open circuit breaker.",
            campaign.degraded as u64,
        );
        scalar(
            "rsls_campaign_cache_corrupt_detected_total",
            "counter",
            "Cache entries that failed verification and were detected.",
            campaign.corrupt_detected as u64,
        );
        scalar(
            "rsls_campaign_cache_quarantined_total",
            "counter",
            "Cache objects moved to quarantine/ after failing verification.",
            campaign.quarantined,
        );
        scalar(
            "rsls_campaign_circuit_state",
            "gauge",
            "Experiments whose circuit breaker is currently open.",
            campaign.circuits_open as u64,
        );
        scalar(
            "rsls_serve_client_retries_total",
            "counter",
            "Re-attempts made by in-process retrying clients.",
            crate::client::client_retries_total(),
        );

        scalar(
            "rsls_artifact_sparse_cache_hits_total",
            "counter",
            "Block extractions served from the sparse artifact cache.",
            artifacts.sparse_hits,
        );
        scalar(
            "rsls_artifact_sparse_cache_misses_total",
            "counter",
            "Block extractions computed and inserted into the cache.",
            artifacts.sparse_misses,
        );
        scalar(
            "rsls_artifact_sparse_cache_entries",
            "gauge",
            "Entries currently held by the sparse artifact cache.",
            artifacts.sparse_entries,
        );
        scalar(
            "rsls_artifact_workload_hits_total",
            "counter",
            "Suite workloads served from the process-wide interner.",
            artifacts.workload_hits,
        );
        scalar(
            "rsls_artifact_workload_misses_total",
            "counter",
            "Suite workloads generated (matrix + rhs built).",
            artifacts.workload_misses,
        );
        scalar(
            "rsls_artifact_fingerprint_hits_total",
            "counter",
            "Matrix fingerprints served from the per-workload memo.",
            artifacts.fingerprint_hits,
        );
        scalar(
            "rsls_artifact_fingerprint_misses_total",
            "counter",
            "Matrix fingerprints hashed from scratch.",
            artifacts.fingerprint_misses,
        );
        scalar(
            "rsls_artifact_halo_plan_hits_total",
            "counter",
            "Halo exchange plans served from the dist-solver memo.",
            artifacts.halo_hits,
        );
        scalar(
            "rsls_artifact_halo_plan_misses_total",
            "counter",
            "Halo exchange plans built from the matrix structure.",
            artifacts.halo_misses,
        );

        scalar(
            "rsls_lab_ingested_objects_total",
            "counter",
            "Reports ingested into warehouse views.",
            lab.ingested_objects,
        );
        scalar(
            "rsls_lab_ingest_rejected_total",
            "counter",
            "Store entries warehouse ingest rejected (tolerant decode).",
            lab.ingest_rejected,
        );
        scalar(
            "rsls_lab_queries_total",
            "counter",
            "SQL queries executed against warehouse views.",
            lab.queries,
        );

        let _ = writeln!(
            out,
            "# HELP rsls_serve_shard_queue_depth Jobs waiting, by campaign shard."
        );
        let _ = writeln!(out, "# TYPE rsls_serve_shard_queue_depth gauge");
        for (k, slot) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "rsls_serve_shard_queue_depth{{shard=\"{k}\"}} {}",
                slot.queue_depth.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP rsls_serve_shard_coalesced_total Coalesced submissions, by campaign shard."
        );
        let _ = writeln!(out, "# TYPE rsls_serve_shard_coalesced_total counter");
        for (k, slot) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "rsls_serve_shard_coalesced_total{{shard=\"{k}\"}} {}",
                slot.coalesced.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP rsls_serve_shard_computations_total Harness-invoking jobs, by campaign shard."
        );
        let _ = writeln!(out, "# TYPE rsls_serve_shard_computations_total counter");
        for (k, slot) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "rsls_serve_shard_computations_total{{shard=\"{k}\"}} {}",
                slot.computed.load(Ordering::Relaxed)
            );
        }

        // Per-scheme campaign mix. Every registered scheme label is
        // pre-seeded at 0 so dashboards can alert on a scheme that
        // *stopped* appearing, not just count the ones that did.
        let _ = writeln!(
            out,
            "# HELP rsls_campaign_scheme_units_total Units submitted, by recovery-scheme label."
        );
        let _ = writeln!(out, "# TYPE rsls_campaign_scheme_units_total counter");
        let mut scheme_units: std::collections::BTreeMap<&str, u64> =
            rsls_core::Scheme::KNOWN_LABELS
                .iter()
                .map(|&l| (l, 0))
                .collect();
        for (label, n) in &campaign.scheme_units {
            *scheme_units.entry(label.as_str()).or_insert(0) += n;
        }
        for (label, n) in &scheme_units {
            let _ = writeln!(
                out,
                "rsls_campaign_scheme_units_total{{scheme=\"{label}\"}} {n}"
            );
        }

        let _ = writeln!(
            out,
            "# HELP rsls_serve_requests_total Requests served, by route and status."
        );
        let _ = writeln!(out, "# TYPE rsls_serve_requests_total counter");
        let requests = self
            .requests
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for ((route, status), count) in &requests {
            let _ = writeln!(
                out,
                "rsls_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
            );
        }

        let _ = writeln!(
            out,
            "# HELP rsls_serve_request_duration_seconds Request latency."
        );
        let _ = writeln!(out, "# TYPE rsls_serve_request_duration_seconds histogram");
        for (bound, counter) in BUCKETS.iter().zip(&self.latency.buckets) {
            let _ = writeln!(
                out,
                "rsls_serve_request_duration_seconds_bucket{{le=\"{bound}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let count = self.latency.count.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "rsls_serve_request_duration_seconds_bucket{{le=\"+Inf\"}} {count}"
        );
        let _ = writeln!(
            out,
            "rsls_serve_request_duration_seconds_sum {}",
            self.latency.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(out, "rsls_serve_request_duration_seconds_count {count}");

        let _ = writeln!(
            out,
            "# HELP rsls_lab_query_seconds Warehouse query/compare latency (load + execute + serialize)."
        );
        let _ = writeln!(out, "# TYPE rsls_lab_query_seconds histogram");
        for (bound, counter) in BUCKETS.iter().zip(&self.lab_latency.buckets) {
            let _ = writeln!(
                out,
                "rsls_lab_query_seconds_bucket{{le=\"{bound}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let lab_count = self.lab_latency.count.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "rsls_lab_query_seconds_bucket{{le=\"+Inf\"}} {lab_count}"
        );
        let _ = writeln!(
            out,
            "rsls_lab_query_seconds_sum {}",
            self.lab_latency.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(out, "rsls_lab_query_seconds_count {lab_count}");
        out
    }
}

/// Saturating add of a possibly negative delta to a `u64` gauge.
fn gauge_add(gauge: &AtomicU64, delta: i64) {
    if delta >= 0 {
        gauge.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        let dec = delta.unsigned_abs();
        let mut current = gauge.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(dec);
            match gauge.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_family_and_is_ordered() {
        let m = Metrics::new();
        m.observe_request("healthz", 200, Duration::from_millis(2));
        m.observe_request("experiment", 200, Duration::from_millis(50));
        m.observe_request("experiment", 503, Duration::from_micros(300));
        m.result_cache_hit();
        m.job_computed();
        m.queue_depth_add(3);
        m.queue_depth_add(-1);
        let summary = CampaignSummary {
            total: 7,
            executed: 4,
            cache_hits: 3,
            failed: 0,
            coalesced: 2,
            retries: 5,
            degraded: 1,
            corrupt_detected: 2,
            quarantined: 2,
            circuits_open: 1,
            unit_wall_s: 1.5,
            scheme_units: [("FF".to_string(), 4), ("CR-LC".to_string(), 3)]
                .into_iter()
                .collect(),
        };
        let artifacts = ArtifactCounters {
            sparse_hits: 9,
            sparse_misses: 4,
            sparse_entries: 4,
            workload_hits: 6,
            workload_misses: 2,
            fingerprint_hits: 5,
            fingerprint_misses: 2,
            halo_hits: 3,
            halo_misses: 1,
        };
        let lab = LabCounters {
            ingested_objects: 12,
            ingest_rejected: 3,
            queries: 8,
        };
        m.observe_lab_query(Duration::from_millis(10));
        let text = m.render(&summary, 1, &artifacts, &lab);
        assert!(text.contains("rsls_serve_requests_total{route=\"experiment\",status=\"200\"} 1"));
        assert!(text.contains("rsls_serve_requests_total{route=\"experiment\",status=\"503\"} 1"));
        assert!(text.contains("rsls_serve_result_cache_hits_total 1"));
        assert!(text.contains("rsls_serve_computations_total 1"));
        assert!(text.contains("rsls_serve_queue_depth 2"));
        assert!(text.contains("rsls_campaign_units_total 7"));
        assert!(text.contains("rsls_campaign_coalesced_total 2"));
        assert!(text.contains("rsls_campaign_coalesce_waiters 1"));
        assert!(text.contains("rsls_campaign_unit_retries_total 5"));
        assert!(text.contains("rsls_campaign_units_degraded_total 1"));
        assert!(text.contains("rsls_campaign_cache_corrupt_detected_total 2"));
        assert!(text.contains("rsls_campaign_cache_quarantined_total 2"));
        assert!(text.contains("rsls_campaign_circuit_state 1"));
        assert!(text.contains("rsls_campaign_scheme_units_total{scheme=\"FF\"} 4"));
        assert!(text.contains("rsls_campaign_scheme_units_total{scheme=\"CR-LC\"} 3"));
        // Registered-but-unseen schemes are pre-seeded at zero.
        assert!(text.contains("rsls_campaign_scheme_units_total{scheme=\"ABFT-CR\"} 0"));
        assert!(text.contains("rsls_campaign_scheme_units_total{scheme=\"MNF\"} 0"));
        assert!(text.contains("rsls_serve_client_retries_total"));
        assert!(text.contains("rsls_artifact_sparse_cache_hits_total 9"));
        assert!(text.contains("rsls_artifact_sparse_cache_misses_total 4"));
        assert!(text.contains("rsls_artifact_sparse_cache_entries 4"));
        assert!(text.contains("rsls_artifact_workload_hits_total 6"));
        assert!(text.contains("rsls_artifact_workload_misses_total 2"));
        assert!(text.contains("rsls_artifact_fingerprint_hits_total 5"));
        assert!(text.contains("rsls_artifact_fingerprint_misses_total 2"));
        assert!(text.contains("rsls_artifact_halo_plan_hits_total 3"));
        assert!(text.contains("rsls_artifact_halo_plan_misses_total 1"));
        assert!(text.contains("rsls_serve_request_duration_seconds_count 3"));
        assert!(text.contains("rsls_lab_ingested_objects_total 12"));
        assert!(text.contains("rsls_lab_ingest_rejected_total 3"));
        assert!(text.contains("rsls_lab_queries_total 8"));
        assert!(text.contains("rsls_lab_query_seconds_count 1"));
        assert!(text.contains("rsls_lab_query_seconds_bucket{le=\"+Inf\"} 1"));
        // Deterministic label order: BTreeMap keys render sorted.
        let experiment = text
            .find("route=\"experiment\",status=\"200\"")
            .expect("series present");
        let experiment_503 = text
            .find("route=\"experiment\",status=\"503\"")
            .expect("series present");
        assert!(experiment < experiment_503);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_request("x", 200, Duration::from_micros(500)); // ≤ 0.001
        m.observe_request("x", 200, Duration::from_millis(40)); // ≤ 0.1
        let text = m.render(
            &CampaignSummary::default(),
            0,
            &ArtifactCounters::default(),
            &LabCounters::default(),
        );
        assert!(text.contains("bucket{le=\"0.001\"} 1"));
        assert!(text.contains("bucket{le=\"0.1\"} 2"));
        assert!(text.contains("bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn shard_slices_and_connection_families_render() {
        let m = Metrics::with_shards(2);
        assert_eq!(m.shard_count(), 2);
        m.job_coalesced_on(1);
        m.job_computed_on(1);
        m.queue_depth_add_on(1, 2);
        m.connection_opened();
        m.connection_gauge_add(1);
        m.keepalive_reuse();
        let text = m.render(
            &CampaignSummary::default(),
            0,
            &ArtifactCounters::default(),
            &LabCounters::default(),
        );
        assert!(text.contains("rsls_serve_shard_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("rsls_serve_shard_queue_depth{shard=\"1\"} 2"));
        assert!(text.contains("rsls_serve_shard_coalesced_total{shard=\"1\"} 1"));
        assert!(text.contains("rsls_serve_shard_computations_total{shard=\"1\"} 1"));
        assert!(text.contains("rsls_serve_connections_active 1"));
        assert!(text.contains("rsls_serve_connections_total 1"));
        assert!(text.contains("rsls_serve_keepalive_reuses_total 1"));
        // The shard slices roll up into the process-wide families.
        assert!(text.contains("rsls_serve_coalesced_total 1"));
        assert!(text.contains("rsls_serve_computations_total 1"));
        assert!(text.contains("rsls_serve_queue_depth 2"));
        assert_eq!(m.shard_coalesced_total(1), 1);
        assert_eq!(m.shard_coalesced_total(0), 0);
        assert_eq!(m.connections_active(), 1);
        assert_eq!(m.keepalive_reuses_total(), 1);
    }

    #[test]
    fn gauge_never_underflows() {
        let m = Metrics::new();
        m.workers_busy_add(-5);
        let text = m.render(
            &CampaignSummary::default(),
            0,
            &ArtifactCounters::default(),
            &LabCounters::default(),
        );
        assert!(text.contains("rsls_serve_workers_busy 0"));
    }
}
