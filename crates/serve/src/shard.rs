//! The service's view of its campaign engines: one global engine, or a
//! consistent-hash-routed set of per-shard engines.
//!
//! An unsharded server (the default, and every embedded test server)
//! runs against the process-wide engine from
//! [`rsls_experiments::campaign::engine`] — exactly the pre-PR-8
//! behavior. A sharded server (`--shards N`) owns `N` private
//! [`Engine`]s instead, each with a disjoint store namespace
//! (`<cache>/shard-<k>`) and journal; request keys route to shards
//! through [`rsls_campaign::ShardRouter`], and compute jobs run under
//! [`rsls_experiments::campaign::with_engine`] so the harness's units
//! land in that shard's store. Read paths that span the whole corpus
//! (`/reports`, `/query`, `/compare`, `/metrics`) fan out across every
//! shard and merge.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rsls_campaign::{shard_dir, CampaignSummary, Engine, EngineOptions, ShardRouter};
use rsls_experiments::campaign;

/// Outcome of a `/reports/{sha256}` object lookup across shard stores.
#[derive(Debug)]
pub enum ReportLookup {
    /// No shard has a store (caching disabled): `404` with an
    /// explanatory body.
    Disabled,
    /// Stores exist but none holds the object.
    Missing,
    /// The object's verified bytes, from the first shard holding it
    /// (content addressing makes every copy byte-identical).
    Found(Vec<u8>),
}

/// The engines behind one server: the process-wide global engine, or an
/// owned per-shard set.
pub struct ShardSet {
    /// `None` routes everything at the global engine (shard 0).
    engines: Option<Vec<Arc<Engine>>>,
    router: ShardRouter,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.count())
            .field("owned", &self.engines.is_some())
            .finish()
    }
}

/// Journal path for one shard: `campaign.journal` becomes
/// `shard-<k>.campaign.journal` next to the original (single shard
/// keeps the path untouched, like [`shard_dir`]).
fn shard_journal(path: &Path, shard: usize, shards: usize) -> PathBuf {
    if shards <= 1 {
        return path.to_path_buf();
    }
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "campaign.journal".to_string());
    path.with_file_name(format!("shard-{shard}.{name}"))
}

impl ShardSet {
    /// A set that delegates to the process-wide engine (one shard).
    pub fn global() -> ShardSet {
        ShardSet {
            engines: None,
            router: ShardRouter::new(1),
        }
    }

    /// Builds `shards` private engines from `base`, namespacing each
    /// one's store (`shard_dir`) and journal (`shard_journal`). The
    /// base options' chaos injector, retry policy, and job count are
    /// shared by every shard.
    pub fn build(base: &EngineOptions, shards: usize) -> io::Result<ShardSet> {
        let n = shards.max(1);
        let engines = (0..n)
            .map(|k| {
                let mut opts = base.clone();
                opts.cache_dir = shard_dir(&base.cache_dir, k, n);
                opts.journal_path = base.journal_path.as_deref().map(|p| shard_journal(p, k, n));
                Engine::new(opts).map(Arc::new)
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ShardSet {
            engines: Some(engines),
            router: ShardRouter::new(n),
        })
    }

    /// Number of shards (≥ 1).
    pub fn count(&self) -> usize {
        match &self.engines {
            Some(engines) => engines.len().max(1),
            None => 1,
        }
    }

    /// Routes a result key to its shard.
    pub fn route(&self, key: &str) -> usize {
        self.router.route(key)
    }

    /// The engine a compute job for `shard` must run under, or `None`
    /// when the global engine (already the thread default) serves it.
    pub fn engine_arc(&self, shard: usize) -> Option<Arc<Engine>> {
        let engines = self.engines.as_ref()?;
        engines
            .get(shard.min(engines.len().saturating_sub(1)))
            .cloned()
    }

    /// Campaign totals summed across every shard (or the global
    /// engine's own summary).
    pub fn summary(&self) -> CampaignSummary {
        match &self.engines {
            None => campaign::engine().summary(),
            Some(engines) => {
                let mut total = CampaignSummary::default();
                for engine in engines {
                    let s = engine.summary();
                    total.total += s.total;
                    total.executed += s.executed;
                    total.cache_hits += s.cache_hits;
                    total.failed += s.failed;
                    total.degraded += s.degraded;
                    total.coalesced += s.coalesced;
                    total.retries += s.retries;
                    total.corrupt_detected += s.corrupt_detected;
                    total.quarantined += s.quarantined;
                    total.circuits_open += s.circuits_open;
                    total.unit_wall_s += s.unit_wall_s;
                    for (label, n) in s.scheme_units {
                        *total.scheme_units.entry(label).or_insert(0) += n;
                    }
                }
                total
            }
        }
    }

    /// Threads parked on in-flight units, summed across shards.
    pub fn coalesce_waiters(&self) -> usize {
        match &self.engines {
            None => campaign::engine().coalesce_waiters(),
            Some(engines) => engines.iter().map(|e| e.coalesce_waiters()).sum(),
        }
    }

    /// Looks `hash` up across every shard store in shard order.
    pub fn load_report(&self, hash: &str) -> ReportLookup {
        match &self.engines {
            None => match campaign::engine().cache() {
                None => ReportLookup::Disabled,
                Some(cache) => match cache.load_object(hash) {
                    Some(bytes) => ReportLookup::Found(bytes),
                    None => ReportLookup::Missing,
                },
            },
            Some(engines) => {
                let mut any_store = false;
                for engine in engines {
                    if let Some(cache) = engine.cache() {
                        any_store = true;
                        if let Some(bytes) = cache.load_object(hash) {
                            return ReportLookup::Found(bytes);
                        }
                    }
                }
                if any_store {
                    ReportLookup::Missing
                } else {
                    ReportLookup::Disabled
                }
            }
        }
    }

    /// The `(cache dir, journal)` pairs the warehouse routes load —
    /// every shard with a store, in shard order. `None` when caching is
    /// disabled everywhere (there is nothing to query).
    pub fn warehouse_stores(&self) -> Option<Vec<(PathBuf, Option<PathBuf>)>> {
        let stores: Vec<(PathBuf, Option<PathBuf>)> = match &self.engines {
            None => {
                let engine = campaign::engine();
                let cache = engine.cache()?;
                vec![(
                    cache.dir().to_path_buf(),
                    engine.options().journal_path.clone(),
                )]
            }
            Some(engines) => engines
                .iter()
                .filter_map(|e| {
                    let cache = e.cache()?;
                    Some((cache.dir().to_path_buf(), e.options().journal_path.clone()))
                })
                .collect(),
        };
        if stores.is_empty() {
            None
        } else {
            Some(stores)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_set_is_one_unsharded_namespace() {
        let set = ShardSet::global();
        assert_eq!(set.count(), 1);
        assert_eq!(set.route("fig5@quick"), 0);
        assert!(set.engine_arc(0).is_none(), "global set owns no engines");
    }

    #[test]
    fn owned_set_namespaces_stores_and_journals() {
        let dir = std::env::temp_dir().join(format!("rsls-shardset-{}", std::process::id()));
        let base = EngineOptions {
            cache_dir: dir.join("cache"),
            use_cache: true,
            journal_path: Some(dir.join("campaign.journal")),
            ..EngineOptions::default()
        };
        let set = ShardSet::build(&base, 3).unwrap();
        assert_eq!(set.count(), 3);
        for k in 0..3 {
            let engine = set.engine_arc(k).expect("owned engine");
            let cache = engine.cache().expect("sharded stores are cached");
            assert_eq!(cache.dir(), dir.join("cache").join(format!("shard-{k}")));
            assert_eq!(
                engine.options().journal_path.as_deref(),
                Some(dir.join(format!("shard-{k}.campaign.journal")).as_path())
            );
        }
        // Routing covers every shard eventually and stays in range.
        // (Short sequential keys hash-correlate under FNV-1a, so sample
        // a couple thousand before expecting full coverage.)
        let mut seen = [false; 3];
        for i in 0..2000 {
            seen[set.route(&format!("family-{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let stores = set.warehouse_stores().expect("cached shards have stores");
        assert_eq!(stores.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
