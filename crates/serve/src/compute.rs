//! The service's deterministic compute path.
//!
//! Everything between "which experiment at which scale" and "which
//! bytes go on the wire" lives here, and none of it may depend on
//! wall-clock time, thread scheduling, or iteration order: the response
//! body for a given `(experiment, scale)` must be byte-identical across
//! runs, processes, and worker interleavings, because its sha256 is the
//! `ETag` clients revalidate against. `rsls-lint` holds this file to
//! the same wall-clock/ordering rules as the numeric crates (the rest
//! of the crate is I/O edge and may read clocks for latency metrics).

use rsls_experiments::{Scale, Table};

/// Canonical JSON shape of one computed experiment (field order is
/// declaration order, which `serde_json` preserves — the byte layout is
/// part of the service contract).
#[derive(Debug, serde::Serialize)]
struct ExperimentResult {
    experiment: String,
    scale: String,
    tables: Vec<Table>,
}

/// The queue/result-cache key for one `(experiment, scale)` request.
pub fn result_key(id: &str, scale: Scale) -> String {
    format!("{id}@{}", scale.label())
}

/// Serializes a harness's tables to the canonical JSON body.
pub fn tables_to_json(id: &str, scale: Scale, tables: Vec<Table>) -> Result<Vec<u8>, String> {
    let result = ExperimentResult {
        experiment: id.to_string(),
        scale: scale.label().to_string(),
        tables,
    };
    serde_json::to_string(&result)
        .map(String::into_bytes)
        .map_err(|e| format!("serializing {id} result: {e}"))
}

/// The `ETag` for a response body: its own sha256, so the tag is
/// self-certifying (`/reports/{sha}` serves bytes whose hash *is* the
/// path; `/experiments/{id}` bodies hash to their tag).
pub fn etag_for(body: &[u8]) -> String {
    rsls_core::sha256_hex(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["matrix", "iters"]);
        t.push_row(vec!["x104".into(), "42".into()]);
        t
    }

    #[test]
    fn result_key_includes_scale() {
        assert_eq!(result_key("fig5", Scale::Quick), "fig5@quick");
        assert_eq!(result_key("fig5", Scale::Full), "fig5@full");
    }

    #[test]
    fn json_is_byte_stable_and_canonical() {
        let a = tables_to_json("fig5", Scale::Quick, vec![table()]).unwrap();
        let b = tables_to_json("fig5", Scale::Quick, vec![table()]).unwrap();
        assert_eq!(a, b, "same input must serialize to identical bytes");
        let s = String::from_utf8(a.clone()).unwrap();
        assert!(s.starts_with(r#"{"experiment":"fig5","scale":"quick","tables":["#));
        assert!(s.contains(r#""title":"Demo""#));
        // Stable bytes → stable self-certifying ETag.
        assert_eq!(etag_for(&a), etag_for(&b));
        assert_eq!(etag_for(&a).len(), 64);
    }
}
