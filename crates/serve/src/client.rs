//! A minimal blocking HTTP/1.1 client.
//!
//! Exists for the integration tests and CI smoke checks — one
//! round-trip per connection, mirroring the server's
//! `Connection: close` semantics. Not a general-purpose client.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http;

/// A fully-read response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, keyed by lowercased name.
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The response `ETag`, unquoted.
    pub fn etag(&self) -> Option<&str> {
        self.header("etag").map(|v| v.trim_matches('"'))
    }
}

/// Performs one `GET` with optional extra headers, reading the full
/// response.
pub fn get(
    addr: impl ToSocketAddrs,
    path: &str,
    headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET {path} HTTP/1.1\r\nHost: rsls\r\n")?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Connection: close\r\n\r\n")?;
    writer.flush()?;
    let (status, headers, body) = http::parse_response(&mut BufReader::new(stream))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
