//! A minimal blocking HTTP/1.1 client.
//!
//! Exists for the integration tests and CI smoke checks — one
//! round-trip per connection, mirroring the server's
//! `Connection: close` semantics. Not a general-purpose client.
//!
//! [`get`] is the raw one-shot request. [`get_with_retry`] wraps it in
//! the resilience the chaos plan's client faults (connection reset,
//! garbled status line, delay) are absorbed by: bounded attempts under
//! deterministic capped exponential backoff, an overall wall-clock
//! deadline, and `Retry-After` honoring on `503` — the server tells
//! overloaded clients when to come back, and the client listens
//! (clamped to its own backoff cap so a test never sleeps for the
//! server's full suggestion). Every re-attempt increments a
//! process-wide counter exported as `rsls_serve_client_retries_total`.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rsls_chaos::{ChaosInjector, ChaosSite};

use crate::http;

/// Process-wide count of client re-attempts (see
/// [`client_retries_total`]).
static CLIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// How many re-attempts in-process clients have made, for `/metrics`.
pub fn client_retries_total() -> u64 {
    CLIENT_RETRIES.load(Ordering::Relaxed)
}

/// A fully-read response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, keyed by lowercased name.
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The response `ETag`, unquoted.
    pub fn etag(&self) -> Option<&str> {
        self.header("etag").map(|v| v.trim_matches('"'))
    }
}

/// Retry/backoff/deadline policy for [`get_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (>= 1; 1 = no retries).
    pub attempts: usize,
    /// Base backoff before the first re-attempt; attempt `k` waits
    /// `min(base << (k-1), cap)` — deterministic, no jitter.
    pub backoff_ms: u64,
    /// Ceiling on any single wait, including a server `Retry-After`.
    pub backoff_cap_ms: u64,
    /// Overall wall-clock budget: once spent, the last outcome is
    /// returned instead of waiting again.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff_ms: 50,
            backoff_cap_ms: 2000,
            deadline: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// The deterministic wait before re-attempt `attempt` (1-based).
    fn backoff(&self, attempt: usize) -> Duration {
        let shifted = self
            .backoff_ms
            .checked_shl((attempt - 1).min(63) as u32)
            .unwrap_or(u64::MAX);
        Duration::from_millis(shifted.min(self.backoff_cap_ms))
    }
}

/// Performs one `GET` with optional extra headers, reading the full
/// response.
pub fn get(
    addr: impl ToSocketAddrs,
    path: &str,
    headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET {path} HTTP/1.1\r\nHost: rsls\r\n")?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Connection: close\r\n\r\n")?;
    writer.flush()?;
    let (status, headers, body) = http::parse_response(&mut BufReader::new(stream))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// [`get`] under a [`RetryPolicy`]: transport errors and `503`s are
/// retried with deterministic capped exponential backoff (a `503`'s
/// `Retry-After` is honored, clamped to the backoff cap) until the
/// attempts or the deadline run out. Any other status returns
/// immediately.
pub fn get_with_retry(
    addr: impl ToSocketAddrs + Copy,
    path: &str,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> io::Result<ClientResponse> {
    get_with_retry_chaotic(addr, path, headers, policy, None)
}

/// [`get_with_retry`] with a chaos injector on the connection: resets,
/// garbled status lines, and delays fire client-side and must be
/// absorbed by the retry loop.
pub fn get_with_retry_chaotic(
    addr: impl ToSocketAddrs + Copy,
    path: &str,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
    chaos: Option<&ChaosInjector>,
) -> io::Result<ClientResponse> {
    let start = Instant::now();
    let attempts = policy.attempts.max(1);
    let mut last: io::Result<ClientResponse> = Err(io::Error::other("no request attempt was made"));
    for attempt in 0..attempts {
        if attempt > 0 {
            CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
        }
        last = attempt_once(addr, path, headers, chaos);
        let wait = match &last {
            Ok(resp) if resp.status == 503 => {
                // Overload: come back when the server says, within our
                // own cap.
                let suggested = resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(|secs| Duration::from_millis((secs * 1000).min(policy.backoff_cap_ms)));
                suggested
                    .unwrap_or_default()
                    .max(policy.backoff(attempt + 1))
            }
            Ok(_) => return last,
            Err(_) => policy.backoff(attempt + 1),
        };
        if attempt + 1 == attempts || start.elapsed() + wait > policy.deadline {
            break;
        }
        std::thread::sleep(wait);
    }
    last
}

/// One chaos-instrumented request attempt.
fn attempt_once(
    addr: impl ToSocketAddrs + Copy,
    path: &str,
    headers: &[(&str, &str)],
    chaos: Option<&ChaosInjector>,
) -> io::Result<ClientResponse> {
    if let Some(chaos) = chaos {
        if chaos.fire(ChaosSite::ClientDelay, path) {
            std::thread::sleep(Duration::from_millis(2));
        }
        if chaos.fire(ChaosSite::ClientReset, path) {
            // Connect and abandon: the server sees a probe, the client
            // sees a reset before any response bytes arrived.
            let _ = TcpStream::connect(addr);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection reset before the response",
            ));
        }
    }
    let resp = get(addr, path, headers)?;
    if let Some(chaos) = chaos {
        if chaos.fire(ChaosSite::ClientGarble, path) {
            // The bytes arrived but the status line was mangled in
            // flight: indistinguishable from a framing bug, retried the
            // same way.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chaos: garbled status line",
            ));
        }
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy {
            attempts: 8,
            backoff_ms: 50,
            backoff_cap_ms: 300,
            deadline: Duration::from_secs(5),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(50));
        assert_eq!(policy.backoff(2), Duration::from_millis(100));
        assert_eq!(policy.backoff(3), Duration::from_millis(200));
        assert_eq!(policy.backoff(4), Duration::from_millis(300), "capped");
        assert_eq!(policy.backoff(60), Duration::from_millis(300));
    }

    #[test]
    fn retry_gives_up_after_attempts_against_a_dead_port() {
        // Port 1 on localhost: connection refused immediately.
        let before = client_retries_total();
        let policy = RetryPolicy {
            attempts: 3,
            backoff_ms: 1,
            backoff_cap_ms: 2,
            deadline: Duration::from_secs(5),
        };
        let err = get_with_retry("127.0.0.1:1", "/healthz", &[], &policy).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::Other, "a real transport error");
        assert_eq!(client_retries_total() - before, 2, "3 attempts = 2 retries");
    }

    #[test]
    fn deadline_stops_retrying_early() {
        let policy = RetryPolicy {
            attempts: 100,
            backoff_ms: 400,
            backoff_cap_ms: 400,
            deadline: Duration::from_millis(200),
        };
        let start = Instant::now();
        let _ = get_with_retry("127.0.0.1:1", "/healthz", &[], &policy);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "the deadline must bound total wait, not attempts × backoff"
        );
    }
}
