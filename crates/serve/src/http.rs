//! Minimal HTTP/1.1 request parsing and response serialization.
//!
//! Just enough protocol for the service's GET-only API: request line +
//! headers in, status line + headers + body out, `Connection: close`
//! semantics (one request per connection — the clients here are curl,
//! Prometheus scrapes, and the integration tests, none of which need
//! keep-alive).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};

/// Upper bound on one request/header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 100;

/// A parsed request head (the service never reads bodies).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `HEAD`, ...).
    pub method: String,
    /// Decoded path component of the request target (query stripped).
    pub path: String,
    /// Query parameters in target order, percent-decoded (`+` is a
    /// space). Keys keep duplicates; [`Request::query_param`] takes the
    /// first.
    pub query: Vec<(String, String)>,
    /// Headers, keyed by lowercased name.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// First query parameter named `name`, already percent-decoded.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether an `If-None-Match` header matches `etag` (either the
    /// exact quoted tag or the `*` wildcard; weak validators `W/"…"`
    /// also match — byte-identical bodies are the only thing we serve).
    pub fn if_none_match(&self, etag: &str) -> bool {
        let Some(value) = self.header("if-none-match") else {
            return false;
        };
        value.split(',').map(str::trim).any(|candidate| {
            let candidate = candidate.strip_prefix("W/").unwrap_or(candidate);
            candidate == "*" || candidate.trim_matches('"') == etag
        })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Percent-decodes one query component: `%XX` becomes the byte `XX`
/// (malformed escapes pass through literally), `+` becomes a space,
/// and non-UTF-8 results are lossily replaced.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    let s = std::str::from_utf8(pair).ok()?;
                    u8::from_str_radix(s, 16).ok()
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string (`a=1&b=x%20y`) into decoded pairs. A key
/// with no `=` decodes with an empty value.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads one CRLF (or bare-LF) terminated line, without the terminator.
/// `Ok(None)` means clean EOF before any byte.
fn read_line(stream: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = stream.take(MAX_LINE).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(bad("request line too long or truncated"));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("request is not UTF-8"))
}

/// Parses one request head from `stream`.
///
/// Returns `Ok(None)` on a connection closed before sending anything
/// (common with health-check port probes), `Err` on malformed input.
pub fn parse_request(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(stream)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let without_fragment = target.split('#').next().unwrap_or(target);
    let (path, query) = match without_fragment.split_once('?') {
        Some((path, query)) => (path, parse_query(query)),
        None => (without_fragment, Vec::new()),
    };
    let mut headers = BTreeMap::new();
    loop {
        let Some(line) = read_line(stream)? else {
            return Err(bad("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
    }))
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in insertion order (names as written on the wire).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into())
    }

    /// Appends a header (builder style).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Replaces the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serializes the response. `head_only` omits the body (HEAD and
    /// 304 responses) while keeping the entity headers.
    pub fn write_to(&self, w: &mut impl Write, head_only: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        if !head_only {
            w.write_all(&self.body)?;
        }
        w.flush()
    }
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads a full response from `stream` (status line, headers, then
/// `Content-Length` bytes of body, or to EOF without one). Shared by
/// [`crate::client`]; lives here so parse/serialize stay one module.
pub fn parse_response(
    stream: &mut impl BufRead,
) -> io::Result<(u16, BTreeMap<String, String>, Vec<u8>)> {
    let Some(line) = read_line(stream)? else {
        return Err(bad("empty response"));
    };
    let mut parts = line.split_whitespace();
    let status = parts
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = BTreeMap::new();
    loop {
        let Some(line) = read_line(stream)? else {
            return Err(bad("connection closed inside response headers"));
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut body = Vec::new();
    match headers.get("content-length").map(|v| v.parse::<usize>()) {
        Some(Ok(len)) => {
            body.resize(len, 0);
            stream.read_exact(&mut body)?;
        }
        _ => {
            stream.read_to_end(&mut body)?;
        }
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> io::Result<Option<Request>> {
        parse_request(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse("GET /experiments/fig5?x=1 HTTP/1.1\r\nHost: a\r\nX-Weird:  v \r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/experiments/fig5");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.header("X-WEIRD"), Some("v"));
    }

    #[test]
    fn parses_query_parameters_with_percent_decoding() {
        let req = parse(
            "GET /query?sql=SELECT%20scheme%2C%20avg(energy)+FROM+runs&x=&flag HTTP/1.1\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(
            req.query_param("sql"),
            Some("SELECT scheme, avg(energy) FROM runs")
        );
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        // Malformed escapes pass through literally rather than erroring.
        let req = parse("GET /q?a=100%25&b=%zz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("a"), Some("100%"));
        assert_eq!(req.query_param("b"), Some("%zz"));
    }

    #[test]
    fn eof_before_bytes_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nHost: a").is_err()); // EOF in headers
    }

    #[test]
    fn if_none_match_variants() {
        let mk = |v: &str| {
            parse(&format!("GET / HTTP/1.1\r\nIf-None-Match: {v}\r\n\r\n"))
                .unwrap()
                .unwrap()
        };
        assert!(mk("\"abc\"").if_none_match("abc"));
        assert!(mk("W/\"abc\"").if_none_match("abc"));
        assert!(mk("\"x\", \"abc\"").if_none_match("abc"));
        assert!(mk("*").if_none_match("anything"));
        assert!(!mk("\"x\"").if_none_match("abc"));
    }

    #[test]
    fn response_round_trips_through_parse_response() {
        let resp = Response::json(200, br#"{"ok":true}"#.to_vec()).header("ETag", "\"e\"");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let (status, headers, body) = parse_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("etag").map(String::as_str), Some("\"e\""));
        assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn head_only_omits_body_but_keeps_length() {
        let resp = Response::text(200, "hello");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Content-Length: 5"));
        assert!(!s.ends_with("hello"));
    }
}
