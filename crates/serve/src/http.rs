//! Minimal HTTP/1.1 request parsing and response serialization.
//!
//! Just enough protocol for the service's GET-only API: request line +
//! headers in, status line + headers + body out. Since PR 8 the parser
//! is **incremental** — [`RequestBuffer`] accumulates whatever bytes
//! the nonblocking event loop read and yields complete request heads as
//! they materialize, which is what makes keep-alive and pipelining
//! possible — and responses serialize with either `Connection:
//! keep-alive` or `Connection: close` ([`Response::serialize`]).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};

/// Upper bound on one request/header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 100;
/// Upper bound on a buffered request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request head (the service never reads bodies).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `HEAD`, ...).
    pub method: String,
    /// Decoded path component of the request target (query stripped).
    pub path: String,
    /// Query parameters in target order, percent-decoded (`+` is a
    /// space). Keys keep duplicates; [`Request::query_param`] takes the
    /// first.
    pub query: Vec<(String, String)>,
    /// Headers, keyed by lowercased name.
    pub headers: BTreeMap<String, String>,
    /// False only for `HTTP/1.0` requests (keep-alive defaults differ).
    pub version_11: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// First query parameter named `name`, already percent-decoded.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless the request says `close`;
    /// HTTP/1.0 closes unless it says `keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let tokens: Vec<String> = self
            .header("connection")
            .map(|v| {
                v.split(',')
                    .map(|t| t.trim().to_ascii_lowercase())
                    .collect()
            })
            .unwrap_or_default();
        if tokens.iter().any(|t| t == "close") {
            false
        } else if tokens.iter().any(|t| t == "keep-alive") {
            true
        } else {
            self.version_11
        }
    }

    /// Whether an `If-None-Match` header matches `etag` (either the
    /// exact quoted tag or the `*` wildcard; weak validators `W/"…"`
    /// also match — byte-identical bodies are the only thing we serve).
    pub fn if_none_match(&self, etag: &str) -> bool {
        let Some(value) = self.header("if-none-match") else {
            return false;
        };
        value.split(',').map(str::trim).any(|candidate| {
            let candidate = candidate.strip_prefix("W/").unwrap_or(candidate);
            candidate == "*" || candidate.trim_matches('"') == etag
        })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Percent-decodes one query component: `%XX` becomes the byte `XX`
/// (malformed escapes pass through literally), `+` becomes a space,
/// and non-UTF-8 results are lossily replaced.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    let s = std::str::from_utf8(pair).ok()?;
                    u8::from_str_radix(s, 16).ok()
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string (`a=1&b=x%20y`) into decoded pairs. A key
/// with no `=` decodes with an empty value.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads one CRLF (or bare-LF) terminated line, without the terminator.
/// `Ok(None)` means clean EOF before any byte.
fn read_line(stream: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = stream.take(MAX_LINE).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(bad("request line too long or truncated"));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("request is not UTF-8"))
}

/// Pieces of a parsed request line: method, path, query pairs, and
/// whether the version is HTTP/1.1 (keep-alive by default).
type RequestLine = (String, String, Vec<(String, String)>, bool);

/// Parses one request line (`GET /x?q=1 HTTP/1.1`) into its pieces.
fn parse_request_line(line: &str) -> Result<RequestLine, ParseStep> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseStep::Reject(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseStep::Reject(400, "unsupported HTTP version"));
    }
    let without_fragment = target.split('#').next().unwrap_or(target);
    let (path, query) = match without_fragment.split_once('?') {
        Some((path, query)) => (path, parse_query(query)),
        None => (without_fragment, Vec::new()),
    };
    Ok((
        method.to_string(),
        path.to_string(),
        query,
        version != "HTTP/1.0",
    ))
}

/// Parses one request head from `stream`.
///
/// Returns `Ok(None)` on a connection closed before sending anything
/// (common with health-check port probes), `Err` on malformed input.
/// This is the blocking, one-shot surface (tests and simple tools); the
/// event loop parses incrementally through [`RequestBuffer`].
pub fn parse_request(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(stream)? else {
        return Ok(None);
    };
    let (method, path, query, version_11) = match parse_request_line(&line) {
        Ok(parts) => parts,
        Err(ParseStep::Reject(_, msg)) => return Err(bad(msg)),
        Err(_) => return Err(bad("malformed request line")),
    };
    let mut headers = BTreeMap::new();
    loop {
        let Some(line) = read_line(stream)? else {
            return Err(bad("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        version_11,
    }))
}

/// Outcome of one [`RequestBuffer::next_request`] attempt.
#[derive(Debug)]
pub enum ParseStep {
    /// A complete request head was consumed from the buffer.
    Request(Request),
    /// The buffered bytes do not yet hold a full head; read more.
    Incomplete,
    /// The head is unusable. Respond with this status (`400` malformed,
    /// `431` oversized) and close the connection — the buffer can no
    /// longer be framed.
    Reject(u16, &'static str),
}

/// Incremental request-head parser for the nonblocking event loop.
///
/// The loop appends whatever `read` returned ([`RequestBuffer::extend`])
/// and drains complete heads with [`RequestBuffer::next_request`] — a
/// request split across ten TCP segments and ten pipelined requests in
/// one segment both come out the same way. Bounds are enforced on the
/// *buffered* bytes, so an attacker streaming an endless header line is
/// rejected at [`MAX_HEAD`] without ever allocating past it.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> RequestBuffer {
        RequestBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial request is buffered (a connection closing
    /// now is a clean close, not a truncated request).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to frame and parse the next request head from the buffer.
    pub fn next_request(&mut self) -> ParseStep {
        let Some((head_len, consumed)) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return ParseStep::Reject(431, "request head too large");
            }
            // An unterminated line longer than the line bound can never
            // become a valid head; reject before buffering more.
            let tail_line = self.buf.iter().rev().take_while(|&&b| b != b'\n').count();
            if tail_line as u64 > MAX_LINE {
                return ParseStep::Reject(431, "request line or header too large");
            }
            return ParseStep::Incomplete;
        };
        let step = parse_head(&self.buf[..head_len]);
        self.buf.drain(..consumed);
        step
    }
}

/// Finds the end of the first request head in `buf`: returns
/// `(head length, bytes to consume)` for the earliest blank line
/// (`\r\n\r\n` or bare `\n\n`).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1..i + 3) {
                Some(b"\r\n") => return Some((i + 1, i + 3)),
                _ => {
                    if buf.get(i + 1) == Some(&b'\n') {
                        return Some((i + 1, i + 2));
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Parses one complete request head (everything up to the blank line).
fn parse_head(head: &[u8]) -> ParseStep {
    let Ok(text) = std::str::from_utf8(head) else {
        return ParseStep::Reject(400, "request is not UTF-8");
    };
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let Some(request_line) = lines.next() else {
        return ParseStep::Reject(400, "empty request head");
    };
    if request_line.len() as u64 > MAX_LINE {
        return ParseStep::Reject(431, "request line too large");
    }
    let (method, path, query, version_11) = match parse_request_line(request_line) {
        Ok(parts) => parts,
        Err(step) => return step,
    };
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue; // the trailing blank terminator
        }
        if line.len() as u64 > MAX_LINE {
            return ParseStep::Reject(431, "header line too large");
        }
        if headers.len() >= MAX_HEADERS {
            return ParseStep::Reject(431, "too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseStep::Reject(400, "malformed header line");
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    ParseStep::Request(Request {
        method,
        path,
        query,
        headers,
        version_11,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in insertion order (names as written on the wire).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into())
    }

    /// Appends a header (builder style).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Replaces the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serializes the response to wire bytes. `head_only` omits the
    /// body (HEAD and 304 responses) while keeping the entity headers;
    /// `keep_alive` picks the `Connection` header, and every response
    /// is `Content-Length`-framed so a kept-alive peer can find the
    /// next response boundary.
    pub fn serialize(&self, head_only: bool, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + if head_only { 0 } else { self.body.len() });
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        let conn = if keep_alive { "keep-alive" } else { "close" };
        out.extend_from_slice(format!("Connection: {conn}\r\n\r\n").as_bytes());
        if !head_only {
            out.extend_from_slice(&self.body);
        }
        out
    }

    /// Serializes the response with `Connection: close` (the one-shot
    /// blocking surface; the event loop uses [`Response::serialize`]).
    pub fn write_to(&self, w: &mut impl Write, head_only: bool) -> io::Result<()> {
        w.write_all(&self.serialize(head_only, false))?;
        w.flush()
    }
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads a full response from `stream` (status line, headers, then
/// `Content-Length` bytes of body, or to EOF without one). Shared by
/// [`crate::client`]; lives here so parse/serialize stay one module.
pub fn parse_response(
    stream: &mut impl BufRead,
) -> io::Result<(u16, BTreeMap<String, String>, Vec<u8>)> {
    let Some(line) = read_line(stream)? else {
        return Err(bad("empty response"));
    };
    let mut parts = line.split_whitespace();
    let status = parts
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = BTreeMap::new();
    loop {
        let Some(line) = read_line(stream)? else {
            return Err(bad("connection closed inside response headers"));
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut body = Vec::new();
    match headers.get("content-length").map(|v| v.parse::<usize>()) {
        Some(Ok(len)) => {
            body.resize(len, 0);
            stream.read_exact(&mut body)?;
        }
        _ => {
            stream.read_to_end(&mut body)?;
        }
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> io::Result<Option<Request>> {
        parse_request(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse("GET /experiments/fig5?x=1 HTTP/1.1\r\nHost: a\r\nX-Weird:  v \r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/experiments/fig5");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.header("X-WEIRD"), Some("v"));
    }

    #[test]
    fn parses_query_parameters_with_percent_decoding() {
        let req = parse(
            "GET /query?sql=SELECT%20scheme%2C%20avg(energy)+FROM+runs&x=&flag HTTP/1.1\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(
            req.query_param("sql"),
            Some("SELECT scheme, avg(energy) FROM runs")
        );
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        // Malformed escapes pass through literally rather than erroring.
        let req = parse("GET /q?a=100%25&b=%zz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("a"), Some("100%"));
        assert_eq!(req.query_param("b"), Some("%zz"));
    }

    #[test]
    fn eof_before_bytes_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nHost: a").is_err()); // EOF in headers
    }

    #[test]
    fn if_none_match_variants() {
        let mk = |v: &str| {
            parse(&format!("GET / HTTP/1.1\r\nIf-None-Match: {v}\r\n\r\n"))
                .unwrap()
                .unwrap()
        };
        assert!(mk("\"abc\"").if_none_match("abc"));
        assert!(mk("W/\"abc\"").if_none_match("abc"));
        assert!(mk("\"x\", \"abc\"").if_none_match("abc"));
        assert!(mk("*").if_none_match("anything"));
        assert!(!mk("\"x\"").if_none_match("abc"));
    }

    #[test]
    fn response_round_trips_through_parse_response() {
        let resp = Response::json(200, br#"{"ok":true}"#.to_vec()).header("ETag", "\"e\"");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let (status, headers, body) = parse_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("etag").map(String::as_str), Some("\"e\""));
        assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn incremental_parse_handles_torn_bytes() {
        let mut buf = RequestBuffer::new();
        let wire = b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n";
        buf.extend(&wire[..9]);
        assert!(matches!(buf.next_request(), ParseStep::Incomplete));
        buf.extend(&wire[9..wire.len() - 1]);
        assert!(matches!(buf.next_request(), ParseStep::Incomplete));
        buf.extend(&wire[wire.len() - 1..]);
        match buf.next_request() {
            ParseStep::Request(req) => {
                assert_eq!(req.path, "/healthz");
                assert!(req.version_11);
            }
            other => panic!("expected a request, got {other:?}"),
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn incremental_parse_yields_pipelined_requests_in_order() {
        let mut buf = RequestBuffer::new();
        buf.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\nGET /c HT");
        let paths: Vec<String> = std::iter::from_fn(|| match buf.next_request() {
            ParseStep::Request(r) => Some(r.path),
            _ => None,
        })
        .collect();
        assert_eq!(paths, ["/a", "/b"]);
        assert!(!buf.is_empty(), "the torn third request stays buffered");
        buf.extend(b"TP/1.1\r\n\r\n");
        assert!(matches!(
            buf.next_request(),
            ParseStep::Request(r) if r.path == "/c"
        ));
    }

    #[test]
    fn oversized_heads_reject_with_431_and_garbage_with_400() {
        let mut buf = RequestBuffer::new();
        let huge = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "v".repeat(9000));
        buf.extend(huge.as_bytes());
        assert!(matches!(buf.next_request(), ParseStep::Reject(431, _)));

        // An endless unterminated line rejects before a blank line ever
        // arrives.
        let mut buf = RequestBuffer::new();
        buf.extend("GET / HTTP/1.1\r\nX-Endless: ".as_bytes());
        buf.extend("y".repeat(9000).as_bytes());
        assert!(matches!(buf.next_request(), ParseStep::Reject(431, _)));

        let mut buf = RequestBuffer::new();
        buf.extend(b"not an http request\r\n\r\n");
        assert!(matches!(buf.next_request(), ParseStep::Reject(400, _)));
    }

    #[test]
    fn keep_alive_semantics_follow_version_and_connection_header() {
        let parse_one = |wire: &str| -> Request {
            let mut buf = RequestBuffer::new();
            buf.extend(wire.as_bytes());
            match buf.next_request() {
                ParseStep::Request(r) => r,
                other => panic!("expected request, got {other:?}"),
            }
        };
        assert!(parse_one("GET / HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!parse_one("GET / HTTP/1.0\r\n\r\n").wants_keep_alive());
        assert!(!parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn serialize_picks_the_connection_header() {
        let resp = Response::text(200, "ok");
        let ka = String::from_utf8(resp.serialize(false, true)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
        assert!(ka.ends_with("ok"));
        let close = String::from_utf8(resp.serialize(false, false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
    }

    #[test]
    fn head_only_omits_body_but_keeps_length() {
        let resp = Response::text(200, "hello");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Content-Length: 5"));
        assert!(!s.ends_with("hello"));
    }
}
