//! The `rsls-serve` binary: serve experiment results over HTTP.
//!
//! ```text
//! rsls-serve --addr 127.0.0.1:8080 --jobs 4
//! rsls-serve --addr 127.0.0.1:8080 --cache-dir results/cache --queue-depth 32
//! ```
//!
//! The service fronts the campaign engine: experiment requests run (or
//! cache-load) harnesses through the same content-addressed store that
//! `rsls-run` populates, so a campaign you ran yesterday serves today
//! without recomputing. SIGTERM/ctrl-c drains gracefully: in-flight
//! requests finish, the journal is already flushed (append-on-write),
//! and the process exits 0.

use std::path::PathBuf;
use std::sync::Arc;

use rsls_campaign::EngineOptions;
use rsls_experiments::campaign;
use rsls_serve::server::{RegistrySource, ServeOptions, Server};
use rsls_serve::signal;

fn usage() -> ! {
    eprintln!(
        "usage: rsls-serve [--addr <host:port>] [--jobs <n>] [--queue-depth <n>]\n\
         \x20                 [--cache-dir <dir>] [--no-cache]\n\
         defaults: --addr 127.0.0.1:8080 --jobs 2 --queue-depth 16 --cache-dir results/cache"
    );
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: &mut usize, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else { usage() };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value for {what}: {raw}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:8080".to_string();
    let mut jobs = 2usize;
    let mut queue_depth = 16usize;
    let mut cache_dir = PathBuf::from("results/cache");
    let mut use_cache = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "-a" => addr = parse_arg(&args, &mut i, "--addr"),
            "--jobs" | "-j" => jobs = parse_arg::<usize>(&args, &mut i, "--jobs").max(1),
            "--queue-depth" => {
                queue_depth = parse_arg::<usize>(&args, &mut i, "--queue-depth").max(1)
            }
            "--cache-dir" => cache_dir = parse_arg(&args, &mut i, "--cache-dir"),
            "--no-cache" => use_cache = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    // The service appends to the campaign journal across restarts
    // (resume semantics): a service restart is an operational event,
    // not a new campaign.
    let journal_path = cache_dir
        .parent()
        .map(|p| p.join("campaign.journal"))
        .unwrap_or_else(|| PathBuf::from("campaign.journal"));
    if let Err(e) = campaign::configure(EngineOptions {
        jobs,
        cache_dir: cache_dir.clone(),
        use_cache,
        resume: use_cache,
        journal_path: Some(journal_path),
        retries: 0,
        ..EngineOptions::default()
    }) {
        eprintln!("failed to configure campaign engine: {e}");
        std::process::exit(1);
    }

    signal::install();
    let opts = ServeOptions {
        workers: jobs,
        queue_depth,
        scale: rsls_experiments::Scale::from_env(),
        honor_signals: true,
    };
    let server = match Server::bind(&addr, opts, Arc::new(RegistrySource)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "rsls-serve listening on http://{bound} ({jobs} worker{}, queue {queue_depth}, cache {})",
            if jobs == 1 { "" } else { "s" },
            if use_cache {
                cache_dir.display().to_string()
            } else {
                "disabled".to_string()
            },
        ),
        Err(e) => eprintln!("rsls-serve listening ({e})"),
    }

    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    eprint!(
        "rsls-serve: drained and shut down\n{}",
        campaign::engine().summary_table()
    );
}
