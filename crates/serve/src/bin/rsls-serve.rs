//! The `rsls-serve` binary: serve experiment results over HTTP.
//!
//! ```text
//! rsls-serve --addr 127.0.0.1:8080 --jobs 4
//! rsls-serve --addr 127.0.0.1:8080 --cache-dir results/cache --queue-depth 32
//! rsls-serve --addr 127.0.0.1:8080 --shards 4 --cache-dir results/cache
//! ```
//!
//! The service fronts the campaign engine: experiment requests run (or
//! cache-load) harnesses through the same content-addressed store that
//! `rsls-run` populates, so a campaign you ran yesterday serves today
//! without recomputing. With `--shards N` the engine is split into `N`
//! independent shards — each (experiment, scale) family routes to one
//! shard's store namespace (`<cache>/shard-<k>`) through a
//! consistent-hash ring. `--chaos-seed S` arms the aggressive fault
//! plan against the server's own I/O sites (accept/read/write teardown)
//! and the store paths, with engine retries absorbing the faults.
//! SIGTERM/ctrl-c drains gracefully: in-flight requests finish, the
//! journals are already flushed (append-on-write), and the process
//! exits 0.

use std::path::PathBuf;
use std::sync::Arc;

use rsls_campaign::EngineOptions;
use rsls_chaos::{ChaosInjector, ChaosPlan};
use rsls_experiments::campaign;
use rsls_serve::server::{RegistrySource, ServeOptions, Server};
use rsls_serve::signal;

fn usage() -> ! {
    eprintln!(
        "usage: rsls-serve [--addr <host:port>] [--jobs <n>] [--queue-depth <n>]\n\
         \x20                 [--cache-dir <dir>] [--no-cache] [--shards <n>] [--chaos-seed <u64>]\n\
         defaults: --addr 127.0.0.1:8080 --jobs 2 --queue-depth 16 --cache-dir results/cache --shards 1"
    );
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: &mut usize, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else { usage() };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value for {what}: {raw}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:8080".to_string();
    let mut jobs = 2usize;
    let mut queue_depth = 16usize;
    let mut cache_dir = PathBuf::from("results/cache");
    let mut use_cache = true;
    let mut shards = 1usize;
    let mut chaos_seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "-a" => addr = parse_arg(&args, &mut i, "--addr"),
            "--jobs" | "-j" => jobs = parse_arg::<usize>(&args, &mut i, "--jobs").max(1),
            "--queue-depth" => {
                queue_depth = parse_arg::<usize>(&args, &mut i, "--queue-depth").max(1)
            }
            "--cache-dir" => cache_dir = parse_arg(&args, &mut i, "--cache-dir"),
            "--no-cache" => use_cache = false,
            "--shards" => shards = parse_arg::<usize>(&args, &mut i, "--shards").max(1),
            "--chaos-seed" => chaos_seed = Some(parse_arg(&args, &mut i, "--chaos-seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    // The service appends to the campaign journal across restarts
    // (resume semantics): a service restart is an operational event,
    // not a new campaign. Sharded journals derive from this base path
    // (shard-<k>.campaign.journal).
    let journal_path = cache_dir
        .parent()
        .map(|p| p.join("campaign.journal"))
        .unwrap_or_else(|| PathBuf::from("campaign.journal"));
    let chaos = chaos_seed.map(|seed| Arc::new(ChaosInjector::new(ChaosPlan::aggressive(seed))));
    let engine_opts = EngineOptions {
        jobs,
        cache_dir: cache_dir.clone(),
        use_cache,
        resume: use_cache,
        journal_path: Some(journal_path),
        // Under an armed chaos plan the engine retries through injected
        // store faults; fault-free serving keeps the fail-fast default.
        retries: if chaos.is_some() { 3 } else { 0 },
        chaos: chaos.clone(),
        ..EngineOptions::default()
    };

    // Unsharded: configure the process-wide engine (the layout every
    // other tool reads: <cache>/objects, sibling campaign.journal).
    // Sharded: leave the global engine untouched and hand the server a
    // template to derive per-shard engines from.
    let shard_base = if shards <= 1 {
        if let Err(e) = campaign::configure(engine_opts) {
            eprintln!("failed to configure campaign engine: {e}");
            std::process::exit(1);
        }
        None
    } else {
        Some(engine_opts)
    };

    signal::install();
    let opts = ServeOptions {
        workers: jobs,
        queue_depth,
        scale: rsls_experiments::Scale::from_env(),
        honor_signals: true,
        shards,
        shard_base,
        chaos,
    };
    let server = match Server::bind(&addr, opts, Arc::new(RegistrySource)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "rsls-serve listening on http://{bound} ({jobs} worker{} x {shards} shard{}, queue {queue_depth}, cache {}{})",
            if jobs == 1 { "" } else { "s" },
            if shards == 1 { "" } else { "s" },
            if use_cache {
                cache_dir.display().to_string()
            } else {
                "disabled".to_string()
            },
            if chaos_seed.is_some() {
                ", chaos armed"
            } else {
                ""
            },
        ),
        Err(e) => eprintln!("rsls-serve listening ({e})"),
    }

    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    if shards <= 1 {
        eprint!(
            "rsls-serve: drained and shut down\n{}",
            campaign::engine().summary_table()
        );
    } else {
        eprintln!("rsls-serve: drained and shut down ({shards} shards)");
    }
}
