#![warn(missing_docs)]
//! `rsls-serve`: a concurrent results service over the campaign engine.
//!
//! A dependency-free HTTP/1.1 service (std `TcpListener`, no external
//! crates) that fronts the experiment harnesses and the campaign
//! engine's content-addressed result store:
//!
//! | route                 | behavior                                            |
//! |-----------------------|-----------------------------------------------------|
//! | `GET /experiments`    | registry listing (canonical JSON)                   |
//! | `GET /experiments/{id}` | run (or cache-load) one experiment, JSON + `ETag` |
//! | `GET /reports/{sha256}` | raw cached `RunReport` object by content address  |
//! | `GET /query?sql=…`    | SQL over the warehouse views (`rsls-lab`), JSON + `ETag` |
//! | `GET /compare?a=…&b=…` | A/B diff of two filtered result slices, JSON + `ETag` |
//! | `GET /healthz`        | liveness                                            |
//! | `GET /metrics`        | Prometheus text: requests, latency, cache, queue, lab |
//!
//! Architecture: a single-threaded nonblocking event loop owns the
//! listener and every connection socket ([`server`]) — readiness via
//! `poll(2)` on Linux, incremental request parsing ([`http`]), HTTP/1.1
//! keep-alive and in-order pipelining. Experiment computation never
//! happens on the event loop — it is submitted to bounded per-shard
//! work queues drained by fixed worker pools ([`queue`]), so load is
//! shed explicitly (`503` + `Retry-After` when a queue is full) instead
//! of by unbounded thread growth. Duplicate in-flight requests for the
//! same result key coalesce onto one computation at the queue layer,
//! and identical solver units coalesce again inside the campaign engine
//! itself, so a thundering herd of clients costs one solve. With
//! `--shards N` the campaign engine is sharded ([`shard`]): result keys
//! route through a consistent-hash ring to per-shard engines with
//! disjoint store namespaces, and corpus-wide reads (`/reports`,
//! `/query`, `/metrics`) fan out across every shard and merge.
//!
//! Responses carry self-certifying `ETag`s: every body is addressed by
//! its own sha256 ([`compute::etag_for`]), `/reports/{sha}` doubly so —
//! the path *is* the hash of the bytes served. Conditional requests
//! (`If-None-Match`) short-circuit to `304`.
//!
//! Determinism: everything from [`compute`] down (result keys, JSON
//! bodies, content addresses) is deterministic and lint-scoped like the
//! numeric crates; wall-clock time exists only at the I/O edge (latency
//! metrics, timeouts), which is the non-deterministic-allowed zone.

pub mod client;
pub mod compute;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod shard;
pub mod signal;

pub use client::{
    client_retries_total, get, get_with_retry, get_with_retry_chaotic, ClientResponse, RetryPolicy,
};
pub use http::{Request, Response};
pub use metrics::{LabCounters, Metrics};
pub use queue::{JobOutput, Submitted, WorkQueue};
pub use server::{ExperimentInfo, ExperimentSource, RegistrySource, ServeOptions, Server};
pub use shard::{ReportLookup, ShardSet};
