//! The service: listener, router, and per-request orchestration.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use std::collections::BTreeMap;

use rsls_campaign::is_sha256_hex;
use rsls_experiments::campaign;
use rsls_experiments::{ExperimentRegistry, Scale, Table};

use crate::http::{self, Request, Response};
use crate::metrics::{ArtifactCounters, LabCounters, Metrics};
use crate::queue::{JobOutput, SubmitError, WorkQueue};
use crate::{compute, signal};

/// `Retry-After` seconds sent with queue-overload `503`s.
const RETRY_AFTER_S: u32 = 2;
/// Accept-loop poll interval while idle (also the shutdown-detection
/// latency bound).
const ACCEPT_POLL: Duration = Duration::from_millis(15);
/// How long `run` waits for connection threads to flush during drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// One row of the `/experiments` listing.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExperimentInfo {
    /// Experiment id (`fig5`, `table6`, ...).
    pub id: String,
    /// Human-readable description.
    pub description: String,
}

/// Where the service gets experiments from. The production source is
/// [`RegistrySource`]; tests inject gated/panicking sources to make
/// coalescing and panic isolation deterministic.
pub trait ExperimentSource: Send + Sync {
    /// The experiments this source can run, in canonical order.
    fn list(&self) -> Vec<ExperimentInfo>;
    /// Runs one experiment; `None` for an unknown id.
    fn run(&self, id: &str, scale: Scale) -> Option<Vec<Table>>;
}

/// [`ExperimentSource`] backed by [`ExperimentRegistry::builtin`].
#[derive(Debug, Default, Clone)]
pub struct RegistrySource;

impl ExperimentSource for RegistrySource {
    fn list(&self) -> Vec<ExperimentInfo> {
        ExperimentRegistry::builtin()
            .entries()
            .iter()
            .map(|e| ExperimentInfo {
                id: e.name.to_string(),
                description: e.description.to_string(),
            })
            .collect()
    }

    fn run(&self, id: &str, scale: Scale) -> Option<Vec<Table>> {
        ExperimentRegistry::builtin().run(id, scale)
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Compute workers draining the job queue.
    pub workers: usize,
    /// Pending-job bound; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Scale every experiment runs at.
    pub scale: Scale,
    /// React to the process-wide SIGINT/SIGTERM flag ([`signal`]). The
    /// binary sets this; embedded/test servers default to their own
    /// [`Server::handle`] stop flag only.
    pub honor_signals: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 16,
            scale: Scale::Quick,
            honor_signals: false,
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    opts: ServeOptions,
    source: Arc<dyn ExperimentSource>,
    queue: WorkQueue,
    metrics: Arc<Metrics>,
    /// Completed result bodies by result key — the layer that turns a
    /// repeat `/experiments/{id}` into a pure lookup.
    results: Mutex<BTreeMap<String, Arc<JobOutput>>>,
    stop: AtomicBool,
    active_connections: AtomicUsize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || (self.opts.honor_signals && signal::requested())
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// A remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// The service metrics (shared with the running server).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }
}

/// The bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` and builds the worker pool. The server does not
    /// accept connections until [`Server::run`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
        source: Arc<dyn ExperimentSource>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?; // rsls-lint: allow(unguarded-io) -- listener setup; bind failure aborts startup, chaos targets per-request paths
        let metrics = Arc::new(Metrics::new());
        let queue = WorkQueue::new(opts.workers, opts.queue_depth, Arc::clone(&metrics));
        let shared = Arc::new(Shared {
            opts,
            source,
            queue,
            metrics,
            results: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server and reading its metrics from
    /// another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Accepts connections until shutdown is requested (via
    /// [`ServerHandle::shutdown`] or, with `honor_signals`, a
    /// SIGINT/SIGTERM), then drains gracefully: the listener closes,
    /// queued jobs finish, connection threads flush their responses,
    /// and the campaign journal (append-on-write) is already durable.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.shared.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&self.shared);
                    shared.active_connections.fetch_add(1, Ordering::SeqCst);
                    let spawned = std::thread::Builder::new()
                        .name("rsls-serve-conn".to_string())
                        .spawn(move || {
                            let _guard = ConnGuard(&shared.active_connections);
                            handle_connection(&shared, stream);
                        });
                    if spawned.is_err() {
                        self.shared
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain: finish queued work (every accepted request gets its
        // response), then wait for connection threads to flush.
        self.shared.queue.shutdown();
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(ACCEPT_POLL);
        }
        Ok(())
    }
}

/// Decrements the active-connection gauge on every exit path.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let started = Instant::now();

    let (label, response, head_only) = match http::parse_request(&mut reader) {
        Ok(Some(req)) => {
            let head_only = req.method == "HEAD";
            if req.method == "GET" || head_only {
                // Panic isolation per request: a routing bug turns into
                // one 500, not a dead connection thread and a hung
                // client.
                match panic::catch_unwind(AssertUnwindSafe(|| route(shared, &req))) {
                    Ok((label, response)) => (label, response, head_only),
                    Err(_) => {
                        shared.metrics.request_panicked();
                        (
                            "panic",
                            Response::text(500, "internal error: request handler panicked\n"),
                            head_only,
                        )
                    }
                }
            } else {
                (
                    "other",
                    Response::text(405, "method not allowed\n").header("Allow", "GET, HEAD"),
                    head_only,
                )
            }
        }
        Ok(None) => return, // port probe: connect + close
        Err(e) => (
            "bad-request",
            Response::text(400, format!("bad request: {e}\n")),
            false,
        ),
    };
    shared
        .metrics
        .observe_request(label, response.status, started.elapsed());
    let _ = response.write_to(&mut writer, head_only || response.status == 304);
}

/// Routes one request, returning a metrics label and the response.
fn route(shared: &Arc<Shared>, req: &Request) -> (&'static str, Response) {
    let path = req.path.trim_end_matches('/');
    match path {
        "" | "/index.html" => ("root", root_response()),
        "/healthz" => (
            "healthz",
            Response::json(200, &b"{\"status\":\"ok\"}\n"[..]),
        ),
        "/metrics" => ("metrics", metrics_response(shared)),
        "/experiments" => ("experiments", listing_response(shared)),
        "/query" => ("query", query_response(shared, req)),
        "/compare" => ("compare", compare_response(shared, req)),
        _ => {
            if let Some(id) = path.strip_prefix("/experiments/") {
                ("experiment", experiment_response(shared, req, id))
            } else if let Some(hash) = path.strip_prefix("/reports/") {
                ("report", report_response(shared, req, hash))
            } else {
                ("other", Response::text(404, "not found\n"))
            }
        }
    }
}

/// Snapshots every process-wide artifact cache for one `/metrics` scrape.
fn gather_artifact_counters() -> ArtifactCounters {
    let sparse = rsls_sparse::artifacts::global().stats();
    let workload = rsls_experiments::artifacts::stats();
    let (halo_hits, halo_misses) = rsls_solvers::halo_plan_cache_stats();
    ArtifactCounters {
        sparse_hits: sparse.hits,
        sparse_misses: sparse.misses,
        sparse_entries: sparse.entries as u64,
        workload_hits: workload.hits,
        workload_misses: workload.misses,
        fingerprint_hits: workload.fingerprint_hits,
        fingerprint_misses: workload.fingerprint_misses,
        halo_hits,
        halo_misses,
    }
}

fn root_response() -> Response {
    Response::text(
        200,
        "rsls-serve: GET /experiments, /experiments/{id}, /reports/{sha256}, \
         /query?sql=…, /compare?a=…&b=…, /healthz, /metrics\n",
    )
}

fn metrics_response(shared: &Arc<Shared>) -> Response {
    let engine = campaign::engine();
    let text = shared.metrics.render(
        &engine.summary(),
        engine.coalesce_waiters(),
        &gather_artifact_counters(),
        &LabCounters::gather(),
    );
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .with_body(text.into_bytes())
}

fn listing_response(shared: &Arc<Shared>) -> Response {
    match serde_json::to_string(&shared.source.list()) {
        Ok(json) => Response::json(200, json.into_bytes()),
        Err(e) => Response::text(500, format!("serializing listing: {e}\n")),
    }
}

/// `200` with body + `ETag`, or `304` when `If-None-Match` matches.
fn conditional(req: &Request, out: &JobOutput) -> Response {
    let etag = format!("\"{}\"", out.etag);
    if req.if_none_match(&out.etag) {
        Response::new(304).header("ETag", etag)
    } else {
        Response::json(200, out.body.clone()).header("ETag", etag)
    }
}

fn experiment_response(shared: &Arc<Shared>, req: &Request, id: &str) -> Response {
    if !shared.source.list().iter().any(|e| e.id == id) {
        return Response::text(404, format!("unknown experiment '{id}'\n"));
    }
    let key = compute::result_key(id, shared.opts.scale);
    let cached = shared
        .results
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
        .cloned();
    if let Some(out) = cached {
        shared.metrics.result_cache_hit();
        return conditional(req, &out);
    }
    shared.metrics.result_cache_miss();

    let job = {
        let source = Arc::clone(&shared.source);
        let metrics = Arc::clone(&shared.metrics);
        let id = id.to_string();
        let scale = shared.opts.scale;
        shared.queue.submit(&key, move || {
            metrics.job_computed();
            let tables = source
                .run(&id, scale)
                .ok_or_else(|| format!("experiment '{id}' disappeared from the source"))?;
            let body = compute::tables_to_json(&id, scale, tables)?;
            let etag = compute::etag_for(&body);
            Ok(JobOutput { body, etag })
        })
    };
    match job {
        Ok(submitted) => match submitted.job().wait() {
            Ok(out) => {
                let out = Arc::new(out);
                shared
                    .results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key, Arc::clone(&out));
                conditional(req, &out)
            }
            Err(msg) => Response::text(500, format!("experiment '{id}' failed: {msg}\n")),
        },
        Err(SubmitError::Full) => Response::text(503, "compute queue is full; retry later\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
        Err(SubmitError::ShuttingDown) => Response::text(503, "service is shutting down\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
    }
}

fn report_response(shared: &Arc<Shared>, req: &Request, hash: &str) -> Response {
    if !is_sha256_hex(hash) {
        return Response::text(400, "report id must be 64 lowercase hex digits\n");
    }
    // Content addressing makes the conditional check free: the path IS
    // the hash of the bytes, so a matching If-None-Match needs no disk.
    if req.if_none_match(hash) {
        shared.metrics.report_cache_hit();
        return Response::new(304).header("ETag", format!("\"{hash}\""));
    }
    let Some(cache) = campaign::engine().cache() else {
        shared.metrics.report_cache_miss();
        return Response::text(404, "result caching is disabled on this server\n");
    };
    match cache.load_object(hash) {
        Some(bytes) => {
            shared.metrics.report_cache_hit();
            Response::json(200, bytes).header("ETag", format!("\"{hash}\""))
        }
        None => {
            shared.metrics.report_cache_miss();
            Response::text(404, format!("no report object {hash}\n"))
        }
    }
}

/// The campaign store the warehouse routes read: the global engine's
/// cache directory and journal path. `None` when caching is disabled
/// (there is no store to query).
fn warehouse_paths() -> Option<(std::path::PathBuf, Option<std::path::PathBuf>)> {
    let engine = campaign::engine();
    let cache_dir = engine.cache()?.dir().to_path_buf();
    let journal = engine.options().journal_path.clone();
    Some((cache_dir, journal))
}

/// Submits a warehouse job (coalescing on `key` like experiment runs)
/// and maps its outcome: `sql:`-prefixed errors are the caller's
/// fault (400), anything else is a store failure (500). Successful
/// bodies are canonical JSON with self-certifying `ETag`s; they are
/// *not* inserted into the permanent result map — the store grows as
/// campaigns run, so query results may legitimately change between
/// requests.
fn warehouse_job(
    shared: &Arc<Shared>,
    req: &Request,
    key: &str,
    job: impl FnOnce() -> Result<JobOutput, String> + Send + 'static,
) -> Response {
    let started = Instant::now();
    match shared.queue.submit(key, job) {
        Ok(submitted) => match submitted.job().wait() {
            Ok(out) => {
                shared.metrics.observe_lab_query(started.elapsed());
                conditional(req, &out)
            }
            Err(msg) => match msg.strip_prefix("sql: ") {
                Some(sql_error) => Response::text(400, format!("{sql_error}\n")),
                None => Response::text(500, format!("warehouse failure: {msg}\n")),
            },
        },
        Err(SubmitError::Full) => Response::text(503, "compute queue is full; retry later\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
        Err(SubmitError::ShuttingDown) => Response::text(503, "service is shutting down\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
    }
}

fn query_response(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(sql) = req.query_param("sql").map(str::to_string) else {
        return Response::text(400, "missing query parameter: sql\n");
    };
    // Parse before submitting: a malformed query fails fast with its
    // byte offset instead of occupying a worker.
    if let Err(e) = rsls_lab::parse(&sql) {
        return Response::text(400, format!("{e}\n"));
    }
    let Some((cache_dir, journal)) = warehouse_paths() else {
        return Response::text(404, "result caching is disabled on this server\n");
    };
    let key = format!("query:{sql}");
    warehouse_job(shared, req, &key, move || {
        let warehouse = rsls_lab::Warehouse::load(&cache_dir, journal.as_deref())
            .map_err(|e| format!("loading warehouse: {e}"))?;
        let result = warehouse.query(&sql).map_err(|e| format!("sql: {e}"))?;
        let body = result.to_canonical_json().into_bytes();
        let etag = compute::etag_for(&body);
        Ok(JobOutput { body, etag })
    })
}

fn compare_response(shared: &Arc<Shared>, req: &Request) -> Response {
    let (Some(a), Some(b)) = (
        req.query_param("a").map(str::to_string),
        req.query_param("b").map(str::to_string),
    ) else {
        return Response::text(400, "missing query parameters: a and b (WHERE filters)\n");
    };
    let (expr_a, expr_b) = match (rsls_lab::parse_filter(&a), rsls_lab::parse_filter(&b)) {
        (Ok(ea), Ok(eb)) => (ea, eb),
        (Err(e), _) | (_, Err(e)) => return Response::text(400, format!("{e}\n")),
    };
    let Some((cache_dir, journal)) = warehouse_paths() else {
        return Response::text(404, "result caching is disabled on this server\n");
    };
    let key = format!("compare:{a}\u{1}{b}");
    warehouse_job(shared, req, &key, move || {
        let warehouse = rsls_lab::Warehouse::load(&cache_dir, journal.as_deref())
            .map_err(|e| format!("loading warehouse: {e}"))?;
        let report = rsls_lab::compare_filtered(&warehouse, &expr_a, &a, &expr_b, &b)
            .map_err(|e| format!("sql: {e}"))?;
        let body = rsls_lab::canonical_json(&report).into_bytes();
        let etag = compute::etag_for(&body);
        Ok(JobOutput { body, etag })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_source_lists_builtin_experiments() {
        let list = RegistrySource.list();
        assert!(list.iter().any(|e| e.id == "fig5"));
        assert!(list.iter().any(|e| e.id == "table6"));
        let json = serde_json::to_string(&list).unwrap();
        assert!(json.contains(r#""id":"fig1""#));
    }

    #[test]
    fn default_options_are_sane() {
        let opts = ServeOptions::default();
        assert!(opts.workers >= 1);
        assert!(opts.queue_depth >= 1);
        assert!(!opts.honor_signals);
    }
}
