//! The service: nonblocking event loop, router, and per-request
//! orchestration.
//!
//! Since PR 8 the accept path is a single-threaded readiness event loop
//! (`poll(2)` on Linux, a short-sleep scan elsewhere) over a
//! nonblocking listener and nonblocking connection sockets, instead of
//! one thread per connection. Each connection owns an incremental
//! [`RequestBuffer`]; bytes arrive in whatever fragments TCP delivers,
//! complete request heads are parsed out, and responses queue per
//! connection so **pipelined requests are answered strictly in order**.
//! Connections are kept alive across requests (HTTP/1.1 semantics; any
//! error status or an explicit `Connection: close` closes them), which
//! is what lets a soak drive 10⁵+ requests over a few dozen persistent
//! sockets.
//!
//! Compute still never happens on the event loop: experiment and
//! warehouse work is submitted to the bounded per-shard work queues
//! ([`crate::queue`]) and the loop polls the job latch
//! ([`crate::queue::Job::is_done`]) while servicing other connections.
//! With `--shards N` the campaign engine itself is sharded: result keys
//! route through a consistent-hash ring ([`crate::shard`]) to per-shard
//! engines with disjoint store namespaces.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use rsls_campaign::{is_sha256_hex, EngineOptions};
use rsls_chaos::{ChaosInjector, ChaosSite};
use rsls_experiments::campaign;
use rsls_experiments::{ExperimentRegistry, Scale, Table};

use crate::http::{ParseStep, Request, RequestBuffer, Response};
use crate::metrics::{ArtifactCounters, LabCounters, Metrics};
use crate::queue::{Job, JobOutput, JobResult, SubmitError, WorkQueue};
use crate::shard::{ReportLookup, ShardSet};
use crate::{compute, signal};

/// `Retry-After` seconds sent with queue-overload `503`s.
const RETRY_AFTER_S: u32 = 2;
/// Event-loop wait bound while fully idle (also the shutdown-detection
/// latency bound).
const IDLE_POLL: Duration = Duration::from_millis(10);
/// Event-loop wait bound while a queued job's completion is pending
/// (the latch is polled, not waited on).
const BUSY_POLL: Duration = Duration::from_millis(1);
/// A connection idle (no buffered bytes, no pending work) this long is
/// closed; one holding a torn partial request gets a `408` first.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// How long `run` keeps flushing connection responses during drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);
/// Pipelined responses a single connection may have in flight before
/// the loop stops parsing its buffer (read backpressure).
const MAX_PIPELINED: usize = 32;
/// Connections accepted per loop iteration before yielding to reads.
const ACCEPT_BATCH: usize = 64;
/// Nonblocking read chunk size.
const READ_CHUNK: usize = 8 * 1024;

/// One row of the `/experiments` listing.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExperimentInfo {
    /// Experiment id (`fig5`, `table6`, ...).
    pub id: String,
    /// Human-readable description.
    pub description: String,
}

/// Where the service gets experiments from. The production source is
/// [`RegistrySource`]; tests inject gated/panicking sources to make
/// coalescing and panic isolation deterministic.
pub trait ExperimentSource: Send + Sync {
    /// The experiments this source can run, in canonical order.
    fn list(&self) -> Vec<ExperimentInfo>;
    /// Runs one experiment; `None` for an unknown id.
    fn run(&self, id: &str, scale: Scale) -> Option<Vec<Table>>;
}

/// [`ExperimentSource`] backed by [`ExperimentRegistry::builtin`].
#[derive(Debug, Default, Clone)]
pub struct RegistrySource;

impl ExperimentSource for RegistrySource {
    fn list(&self) -> Vec<ExperimentInfo> {
        ExperimentRegistry::builtin()
            .entries()
            .iter()
            .map(|e| ExperimentInfo {
                id: e.name.to_string(),
                description: e.description.to_string(),
            })
            .collect()
    }

    fn run(&self, id: &str, scale: Scale) -> Option<Vec<Table>> {
        ExperimentRegistry::builtin().run(id, scale)
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Compute workers draining each shard's job queue.
    pub workers: usize,
    /// Per-shard pending-job bound; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Scale every experiment runs at.
    pub scale: Scale,
    /// React to the process-wide SIGINT/SIGTERM flag ([`signal`]). The
    /// binary sets this; embedded/test servers default to their own
    /// [`Server::handle`] stop flag only.
    pub honor_signals: bool,
    /// Campaign shards. Only meaningful with `shard_base` set; the
    /// global engine is always a single namespace.
    pub shards: usize,
    /// Template engine options for *owned* per-shard engines. `None`
    /// (the default) routes all compute at the process-wide campaign
    /// engine, exactly the pre-sharding behavior.
    pub shard_base: Option<EngineOptions>,
    /// Fault injector for the server-side I/O sites (accept teardown,
    /// read teardown, torn writes). `None` injects nothing.
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_depth: 16,
            scale: Scale::Quick,
            honor_signals: false,
            shards: 1,
            shard_base: None,
            chaos: None,
        }
    }
}

/// State shared by the event loop, the worker pools, and handles.
struct Shared {
    opts: ServeOptions,
    source: Arc<dyn ExperimentSource>,
    shards: ShardSet,
    /// One bounded work queue per shard.
    queues: Vec<WorkQueue>,
    metrics: Arc<Metrics>,
    chaos: Arc<ChaosInjector>,
    /// Completed result bodies by result key — the layer that turns a
    /// repeat `/experiments/{id}` into a pure lookup.
    results: Mutex<BTreeMap<String, Arc<JobOutput>>>,
    stop: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || (self.opts.honor_signals && signal::requested())
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// A remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// The service metrics (shared with the running server).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }
}

/// The bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr`, builds the shard engines (when `shard_base` is
    /// set) and the per-shard worker pools. The server does not accept
    /// connections until [`Server::run`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
        source: Arc<dyn ExperimentSource>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?; // rsls-lint: allow(unguarded-io) -- listener setup; bind failure aborts startup, chaos targets per-request paths
        let shards = match &opts.shard_base {
            Some(base) => ShardSet::build(base, opts.shards.max(1))?,
            None => ShardSet::global(),
        };
        let shard_count = shards.count();
        let metrics = Arc::new(Metrics::with_shards(shard_count));
        let queues = (0..shard_count)
            .map(|k| WorkQueue::for_shard(opts.workers, opts.queue_depth, Arc::clone(&metrics), k))
            .collect();
        let chaos = opts
            .chaos
            .clone()
            .unwrap_or_else(|| Arc::new(ChaosInjector::disarmed()));
        let shared = Arc::new(Shared {
            opts,
            source,
            shards,
            queues,
            metrics,
            chaos,
            results: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server and reading its metrics from
    /// another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Runs the event loop until shutdown is requested (via
    /// [`ServerHandle::shutdown`] or, with `honor_signals`, a
    /// SIGINT/SIGTERM), then drains gracefully: accepting stops, the
    /// work queues finish every already-submitted job, buffered
    /// responses flush, and the campaign journals (append-on-write)
    /// are already durable.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        let mut conns: Vec<Conn> = Vec::new();
        while !shared.stopping() {
            for _ in 0..ACCEPT_BATCH {
                match accept_ready(shared, &self.listener) {
                    Accepted::Conn(conn) => conns.push(conn),
                    Accepted::Dropped => continue,
                    Accepted::Idle => break,
                }
            }
            let mut i = 0;
            while i < conns.len() {
                if service_conn(shared, &mut conns[i]) {
                    i += 1;
                } else {
                    close_conn(shared, conns.swap_remove(i));
                }
            }
            let waiting_on_jobs = conns.iter().any(
                |c| matches!(c.pending.front(), Some(Pending::Job { job, .. }) if !job.is_done()),
            );
            let timeout = if waiting_on_jobs {
                BUSY_POLL
            } else {
                IDLE_POLL
            };
            wait_ready(&self.listener, &conns, timeout);
        }
        // Drain: the queues finish every accepted job (each waiting
        // request gets its answer), then the loop keeps flushing until
        // the connections empty or the deadline passes.
        for queue in &shared.queues {
            queue.shutdown();
        }
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while !conns.is_empty() && Instant::now() < deadline {
            let mut i = 0;
            while i < conns.len() {
                let conn = &mut conns[i];
                conn.stop_reading = true;
                conn.close_after_flush = true;
                drain_pending(shared, conn);
                let dead = matches!(flush_write_buf(shared, conn), WriteOutcome::Closed)
                    || (conn.pending.is_empty() && conn.write_done());
                if dead {
                    close_conn(shared, conns.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if !conns.is_empty() {
                std::thread::sleep(BUSY_POLL);
            }
        }
        for conn in conns.drain(..) {
            close_conn(shared, conn);
        }
        Ok(())
    }
}

/// Raw `poll(2)` binding — the readiness primitive of the event loop.
#[cfg(target_os = "linux")]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events ([`POLLIN`] | [`POLLOUT`]).
        pub events: i16,
        /// Kernel-filled returned events.
        pub revents: i16,
    }

    /// Readable (or a pending accept on a listener).
    pub const POLLIN: i16 = 0x001;
    /// Writable without blocking.
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks until an fd is ready or `timeout_ms` elapses.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `fds` is an exclusive slice of `#[repr(C)]` structs
        // matching the kernel's pollfd ABI; the kernel writes only
        // `revents` within the passed length.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }
}

/// Sleeps until the listener or some connection is ready (Linux:
/// `poll(2)` over every socket; elsewhere: a short fixed sleep). The
/// loop's nonblocking operations are attempted every tick regardless,
/// so readiness only decides how soon — correctness never depends on
/// `revents`.
#[cfg(target_os = "linux")]
fn wait_ready(listener: &TcpListener, conns: &[Conn], timeout: Duration) {
    use std::os::unix::io::AsRawFd;
    let mut fds = Vec::with_capacity(conns.len() + 1);
    fds.push(sys::PollFd {
        fd: listener.as_raw_fd(),
        events: sys::POLLIN,
        revents: 0,
    });
    for conn in conns {
        let mut events = 0i16;
        if !conn.stop_reading {
            events |= sys::POLLIN;
        }
        if !conn.write_done() {
            events |= sys::POLLOUT;
        }
        if events != 0 {
            fds.push(sys::PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
    }
    sys::poll_fds(&mut fds, timeout.as_millis() as i32);
}

/// Portable fallback: a bounded sleep between nonblocking scans.
#[cfg(not(target_os = "linux"))]
fn wait_ready(_listener: &TcpListener, _conns: &[Conn], timeout: Duration) {
    std::thread::sleep(timeout.min(Duration::from_millis(5)));
}

/// A queued (not yet written) response on one connection. Responses
/// drain strictly front-first, which is what keeps pipelined requests
/// answered in request order even when a later cheap request finishes
/// before an earlier queued computation.
enum Pending {
    /// Fully serialized bytes, ready to write.
    Ready {
        /// Wire bytes of the response.
        bytes: Vec<u8>,
        /// Whether the connection survives this response.
        keep_alive: bool,
    },
    /// A submitted computation; serialized when the latch completes.
    Job {
        /// Completion latch shared with the worker pool.
        job: Arc<Job>,
        /// The request, kept for conditional (`If-None-Match`) replies.
        req: Request,
        /// What to do with the job's result.
        kind: JobKind,
        /// Metrics route label.
        label: &'static str,
        /// `HEAD` request: serialize without the body.
        head_only: bool,
        /// The request asked for keep-alive (errors still close).
        keep_alive_request: bool,
        /// Submission time, for the request-latency histogram.
        started: Instant,
    },
}

/// What a completed job's result turns into.
enum JobKind {
    /// `/experiments/{id}`: cache the output under its result key.
    Experiment {
        /// Experiment id, for error bodies.
        id: String,
        /// Result key in the process-wide result map.
        key: String,
    },
    /// `/query` and `/compare`: map `sql:` errors to `400`.
    Warehouse,
}

/// One live connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Peer address string — the chaos decision key.
    peer: String,
    /// Incremental request parser.
    buf: RequestBuffer,
    /// Serialized-but-unwritten response bytes.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// In-order response queue (see [`Pending`]).
    pending: VecDeque<Pending>,
    /// Requests dispatched on this connection (keep-alive reuse
    /// accounting).
    requests_served: u64,
    /// Reading stopped: EOF, a rejected head, or a closing response.
    stop_reading: bool,
    /// Close once `pending` and `write_buf` drain.
    close_after_flush: bool,
    /// Last byte-level activity, for the idle timeout.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, peer: String) -> Conn {
        Conn {
            stream,
            peer,
            buf: RequestBuffer::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            requests_served: 0,
            stop_reading: false,
            close_after_flush: false,
            last_activity: Instant::now(),
        }
    }

    /// Every buffered response byte has been written.
    fn write_done(&self) -> bool {
        self.written == self.write_buf.len()
    }
}

/// Outcome of one accept attempt.
enum Accepted {
    /// A new connection joined the loop.
    Conn(Conn),
    /// Chaos (or setup failure) tore the connection down at accept.
    Dropped,
    /// No pending connection.
    Idle,
}

/// Accepts one pending connection off the nonblocking listener. This is
/// the `server-accept` chaos site: a firing fault tears the connection
/// down immediately after accept — exactly the "accepted then dropped"
/// failure a client's retry path must absorb.
fn accept_ready(shared: &Shared, listener: &TcpListener) -> Accepted {
    match TcpListener::accept(listener) {
        Ok((stream, peer)) => {
            let peer = peer.to_string();
            if shared.chaos.fire(ChaosSite::ServerAccept, &peer) {
                let _ = TcpStream::shutdown(&stream, Shutdown::Both);
                return Accepted::Dropped;
            }
            if stream.set_nonblocking(true).is_err() {
                return Accepted::Dropped;
            }
            let _ = stream.set_nodelay(true);
            shared.metrics.connection_opened();
            shared.metrics.connection_gauge_add(1);
            Accepted::Conn(Conn::new(stream, peer))
        }
        Err(_) => Accepted::Idle,
    }
}

/// Removes a connection from the loop's accounting.
fn close_conn(shared: &Shared, conn: Conn) {
    drop(conn);
    shared.metrics.connection_gauge_add(-1);
}

/// Outcome of one nonblocking read pass.
enum ReadOutcome {
    /// New bytes were buffered.
    Progress,
    /// New bytes were buffered and then the peer half-closed.
    ProgressThenEof,
    /// Clean EOF with nothing new.
    Eof,
    /// Nothing to read right now.
    Idle,
    /// The connection is unusable (I/O error or injected teardown).
    Failed,
}

/// Drains readable bytes into the connection's request buffer. This is
/// the `server-read` chaos site: a firing fault shuts the socket down
/// mid-request, tearing the connection while the client is sending.
fn fill_read_buf(shared: &Shared, conn: &mut Conn) -> ReadOutcome {
    let mut scratch = [0u8; READ_CHUNK];
    let mut progressed = false;
    let mut eof = false;
    for _ in 0..8 {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend(&scratch[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Failed,
        }
    }
    if progressed && shared.chaos.fire(ChaosSite::ServerRead, &conn.peer) {
        let _ = TcpStream::shutdown(&conn.stream, Shutdown::Both);
        return ReadOutcome::Failed;
    }
    match (progressed, eof) {
        (true, true) => ReadOutcome::ProgressThenEof,
        (true, false) => ReadOutcome::Progress,
        (false, true) => ReadOutcome::Eof,
        (false, false) => ReadOutcome::Idle,
    }
}

/// Outcome of one nonblocking write pass.
enum WriteOutcome {
    /// Everything buffered has been written.
    Flushed,
    /// The socket stopped accepting bytes; more remain.
    Partial,
    /// The connection is unusable (I/O error or injected torn write).
    Closed,
}

/// Writes buffered response bytes. This is the `server-write` chaos
/// site: a firing fault writes roughly half the remaining response and
/// tears the connection down — the torn-response failure clients must
/// detect via `Content-Length` framing.
fn flush_write_buf(shared: &Shared, conn: &mut Conn) -> WriteOutcome {
    if conn.write_done() {
        return WriteOutcome::Flushed;
    }
    if shared.chaos.fire(ChaosSite::ServerWrite, &conn.peer) {
        let remaining = conn.write_buf.len() - conn.written;
        let torn = &conn.write_buf[conn.written..conn.written + remaining / 2];
        if !torn.is_empty() {
            let _ = conn.stream.write(torn);
        }
        let _ = TcpStream::shutdown(&conn.stream, Shutdown::Both);
        return WriteOutcome::Closed;
    }
    while !conn.write_done() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return WriteOutcome::Closed,
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return WriteOutcome::Partial,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return WriteOutcome::Closed,
        }
    }
    conn.write_buf.clear();
    conn.written = 0;
    WriteOutcome::Flushed
}

/// One full service pass over a connection: read, parse + dispatch,
/// drain completed responses, write. Returns `false` when the
/// connection should be dropped from the loop.
fn service_conn(shared: &Shared, conn: &mut Conn) -> bool {
    if !conn.stop_reading {
        match fill_read_buf(shared, conn) {
            ReadOutcome::Progress => {
                conn.last_activity = Instant::now();
                parse_available(shared, conn);
            }
            ReadOutcome::ProgressThenEof => {
                conn.last_activity = Instant::now();
                parse_available(shared, conn);
                conn.stop_reading = true;
                conn.close_after_flush = true;
            }
            ReadOutcome::Eof => {
                conn.stop_reading = true;
                conn.close_after_flush = true;
                if conn.pending.is_empty() && conn.write_done() {
                    return false; // port probe / clean client close
                }
            }
            ReadOutcome::Idle => {}
            ReadOutcome::Failed => return false,
        }
    }
    drain_pending(shared, conn);
    if matches!(flush_write_buf(shared, conn), WriteOutcome::Closed) {
        return false;
    }
    if conn.close_after_flush && conn.pending.is_empty() && conn.write_done() {
        return false;
    }
    if conn.pending.is_empty() && conn.write_done() && conn.last_activity.elapsed() > IDLE_TIMEOUT {
        if conn.buf.is_empty() {
            return false; // idle keep-alive connection, close silently
        }
        // A torn request that stopped arriving: answer and close.
        let resp = Response::text(408, "request timeout\n");
        shared
            .metrics
            .observe_request("timeout", 408, Duration::ZERO);
        conn.write_buf
            .extend_from_slice(&resp.serialize(false, false));
        conn.stop_reading = true;
        conn.close_after_flush = true;
    }
    true
}

/// Parses every complete request head currently buffered (bounded by
/// [`MAX_PIPELINED`]) and dispatches each one.
fn parse_available(shared: &Shared, conn: &mut Conn) {
    while !conn.stop_reading && conn.pending.len() < MAX_PIPELINED {
        match conn.buf.next_request() {
            ParseStep::Incomplete => break,
            ParseStep::Reject(status, msg) => {
                let resp = Response::text(status, format!("bad request: {msg}\n"));
                shared
                    .metrics
                    .observe_request("bad-request", status, Duration::ZERO);
                conn.pending.push_back(Pending::Ready {
                    bytes: resp.serialize(false, false),
                    keep_alive: false,
                });
                conn.stop_reading = true;
            }
            ParseStep::Request(req) => {
                if conn.requests_served > 0 {
                    shared.metrics.keepalive_reuse();
                }
                conn.requests_served += 1;
                dispatch(shared, conn, req);
            }
        }
    }
}

/// Routing outcome: an immediate response, or a queued computation.
enum Routed {
    /// Responded inline (cheap route, cache hit, or rejection).
    Done(&'static str, Response),
    /// Submitted to a work queue; the response materializes when the
    /// latch completes.
    Queued {
        /// Metrics route label.
        label: &'static str,
        /// Completion latch.
        job: Arc<Job>,
        /// Result post-processing.
        kind: JobKind,
    },
}

/// Dispatches one parsed request: route (panic-isolated), then queue
/// the response — serialized immediately for inline routes, as a
/// pending job otherwise.
fn dispatch(shared: &Shared, conn: &mut Conn, req: Request) {
    let started = Instant::now();
    let head_only = req.method == "HEAD";
    let keep_alive_request = req.wants_keep_alive() && !shared.stopping();
    let routed = if req.method == "GET" || head_only {
        // Panic isolation per request: a routing bug turns into one
        // 500, not a dead event loop.
        panic::catch_unwind(AssertUnwindSafe(|| route(shared, &req))).unwrap_or_else(|_| {
            shared.metrics.request_panicked();
            Routed::Done(
                "panic",
                Response::text(500, "internal error: request handler panicked\n"),
            )
        })
    } else {
        Routed::Done(
            "other",
            Response::text(405, "method not allowed\n").header("Allow", "GET, HEAD"),
        )
    };
    match routed {
        Routed::Done(label, resp) => {
            let keep = keep_alive_request && resp.status < 400;
            shared
                .metrics
                .observe_request(label, resp.status, started.elapsed());
            conn.pending.push_back(Pending::Ready {
                bytes: resp.serialize(head_only || resp.status == 304, keep),
                keep_alive: keep,
            });
            if !keep {
                conn.stop_reading = true;
            }
        }
        Routed::Queued { label, job, kind } => {
            conn.pending.push_back(Pending::Job {
                job,
                req,
                kind,
                label,
                head_only,
                keep_alive_request,
                started,
            });
        }
    }
}

/// Serializes every front-of-queue response that is ready, preserving
/// request order. A response that closes the connection clears the
/// remainder of the queue (standard pipelining semantics: the client
/// re-issues what it never got an answer to).
fn drain_pending(shared: &Shared, conn: &mut Conn) {
    loop {
        let ready = match conn.pending.front() {
            None => break,
            Some(Pending::Ready { .. }) => true,
            Some(Pending::Job { job, .. }) => job.is_done(),
        };
        if !ready {
            break;
        }
        let Some(entry) = conn.pending.pop_front() else {
            break;
        };
        let keep = match entry {
            Pending::Ready { bytes, keep_alive } => {
                conn.write_buf.extend_from_slice(&bytes);
                keep_alive
            }
            Pending::Job {
                job,
                req,
                kind,
                label,
                head_only,
                keep_alive_request,
                started,
            } => {
                // The latch is done; `wait` returns without blocking.
                let resp = finish_job(shared, &kind, &req, started, job.wait());
                let keep = keep_alive_request && resp.status < 400 && !shared.stopping();
                shared
                    .metrics
                    .observe_request(label, resp.status, started.elapsed());
                conn.write_buf
                    .extend_from_slice(&resp.serialize(head_only || resp.status == 304, keep));
                keep
            }
        };
        if !keep {
            conn.stop_reading = true;
            conn.close_after_flush = true;
            conn.pending.clear();
            break;
        }
    }
}

/// Turns a completed job result into its response.
fn finish_job(
    shared: &Shared,
    kind: &JobKind,
    req: &Request,
    started: Instant,
    result: JobResult,
) -> Response {
    match kind {
        JobKind::Experiment { id, key } => match result {
            Ok(out) => {
                let out = Arc::new(out);
                shared
                    .results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key.clone(), Arc::clone(&out));
                conditional(req, &out)
            }
            Err(msg) => Response::text(500, format!("experiment '{id}' failed: {msg}\n")),
        },
        JobKind::Warehouse => match result {
            Ok(out) => {
                shared.metrics.observe_lab_query(started.elapsed());
                conditional(req, &out)
            }
            Err(msg) => match msg.strip_prefix("sql: ") {
                Some(sql_error) => Response::text(400, format!("{sql_error}\n")),
                None => Response::text(500, format!("warehouse failure: {msg}\n")),
            },
        },
    }
}

/// Routes one request, returning an inline response or a queued job.
fn route(shared: &Shared, req: &Request) -> Routed {
    let path = req.path.trim_end_matches('/');
    match path {
        "" | "/index.html" => Routed::Done("root", root_response()),
        "/healthz" => Routed::Done(
            "healthz",
            Response::json(200, &b"{\"status\":\"ok\"}\n"[..]),
        ),
        "/metrics" => Routed::Done("metrics", metrics_response(shared)),
        "/experiments" => Routed::Done("experiments", listing_response(shared)),
        "/query" => query_route(shared, req),
        "/compare" => compare_route(shared, req),
        _ => {
            if let Some(id) = path.strip_prefix("/experiments/") {
                experiment_route(shared, req, id)
            } else if let Some(hash) = path.strip_prefix("/reports/") {
                Routed::Done("report", report_response(shared, req, hash))
            } else {
                Routed::Done("other", Response::text(404, "not found\n"))
            }
        }
    }
}

/// Snapshots every process-wide artifact cache for one `/metrics` scrape.
fn gather_artifact_counters() -> ArtifactCounters {
    let sparse = rsls_sparse::artifacts::global().stats();
    let workload = rsls_experiments::artifacts::stats();
    let (halo_hits, halo_misses) = rsls_solvers::halo_plan_cache_stats();
    ArtifactCounters {
        sparse_hits: sparse.hits,
        sparse_misses: sparse.misses,
        sparse_entries: sparse.entries as u64,
        workload_hits: workload.hits,
        workload_misses: workload.misses,
        fingerprint_hits: workload.fingerprint_hits,
        fingerprint_misses: workload.fingerprint_misses,
        halo_hits,
        halo_misses,
    }
}

fn root_response() -> Response {
    Response::text(
        200,
        "rsls-serve: GET /experiments, /experiments/{id}, /reports/{sha256}, \
         /query?sql=…, /compare?a=…&b=…, /healthz, /metrics\n",
    )
}

fn metrics_response(shared: &Shared) -> Response {
    let text = shared.metrics.render(
        &shared.shards.summary(),
        shared.shards.coalesce_waiters(),
        &gather_artifact_counters(),
        &LabCounters::gather(),
    );
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .with_body(text.into_bytes())
}

fn listing_response(shared: &Shared) -> Response {
    match serde_json::to_string(&shared.source.list()) {
        Ok(json) => Response::json(200, json.into_bytes()),
        Err(e) => Response::text(500, format!("serializing listing: {e}\n")),
    }
}

/// `200` with body + `ETag`, or `304` when `If-None-Match` matches.
fn conditional(req: &Request, out: &JobOutput) -> Response {
    let etag = format!("\"{}\"", out.etag);
    if req.if_none_match(&out.etag) {
        Response::new(304).header("ETag", etag)
    } else {
        Response::json(200, out.body.clone()).header("ETag", etag)
    }
}

/// The `503` for a submission the queue would not take.
fn overload_response(err: SubmitError) -> Response {
    match err {
        SubmitError::Full => Response::text(503, "compute queue is full; retry later\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
        SubmitError::ShuttingDown => Response::text(503, "service is shutting down\n")
            .header("Retry-After", RETRY_AFTER_S.to_string()),
    }
}

fn experiment_route(shared: &Shared, req: &Request, id: &str) -> Routed {
    if !shared.source.list().iter().any(|e| e.id == id) {
        return Routed::Done(
            "experiment",
            Response::text(404, format!("unknown experiment '{id}'\n")),
        );
    }
    let key = compute::result_key(id, shared.opts.scale);
    let cached = shared
        .results
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
        .cloned();
    if let Some(out) = cached {
        shared.metrics.result_cache_hit();
        return Routed::Done("experiment", conditional(req, &out));
    }
    shared.metrics.result_cache_miss();

    let shard = shared.shards.route(&key);
    let submit = {
        let source = Arc::clone(&shared.source);
        let metrics = Arc::clone(&shared.metrics);
        let engine = shared.shards.engine_arc(shard);
        let id = id.to_string();
        let scale = shared.opts.scale;
        shared.queues[shard].submit(&key, move || {
            metrics.job_computed_on(shard);
            let compute_it = || -> JobResult {
                let tables = source
                    .run(&id, scale)
                    .ok_or_else(|| format!("experiment '{id}' disappeared from the source"))?;
                let body = compute::tables_to_json(&id, scale, tables)?;
                let etag = compute::etag_for(&body);
                Ok(JobOutput { body, etag })
            };
            // An owned shard engine scopes the harness's campaign units
            // to this shard's store namespace; the global engine is
            // already the thread default.
            match engine {
                Some(engine) => campaign::with_engine(engine, compute_it),
                None => compute_it(),
            }
        })
    };
    match submit {
        Ok(submitted) => Routed::Queued {
            label: "experiment",
            job: Arc::clone(submitted.job()),
            kind: JobKind::Experiment {
                id: id.to_string(),
                key,
            },
        },
        Err(err) => Routed::Done("experiment", overload_response(err)),
    }
}

fn report_response(shared: &Shared, req: &Request, hash: &str) -> Response {
    if !is_sha256_hex(hash) {
        return Response::text(400, "report id must be 64 lowercase hex digits\n");
    }
    // Content addressing makes the conditional check free: the path IS
    // the hash of the bytes, so a matching If-None-Match needs no disk.
    if req.if_none_match(hash) {
        shared.metrics.report_cache_hit();
        return Response::new(304).header("ETag", format!("\"{hash}\""));
    }
    match shared.shards.load_report(hash) {
        ReportLookup::Disabled => {
            shared.metrics.report_cache_miss();
            Response::text(404, "result caching is disabled on this server\n")
        }
        ReportLookup::Found(bytes) => {
            shared.metrics.report_cache_hit();
            Response::json(200, bytes).header("ETag", format!("\"{hash}\""))
        }
        ReportLookup::Missing => {
            shared.metrics.report_cache_miss();
            Response::text(404, format!("no report object {hash}\n"))
        }
    }
}

/// Submits a warehouse job (coalescing on `key` like experiment runs)
/// to `key`'s shard queue. Successful bodies are canonical JSON with
/// self-certifying `ETag`s; they are *not* inserted into the permanent
/// result map — the store grows as campaigns run, so query results may
/// legitimately change between requests.
fn warehouse_route(
    shared: &Shared,
    label: &'static str,
    key: &str,
    job: impl FnOnce() -> JobResult + Send + 'static,
) -> Routed {
    let shard = shared.shards.route(key);
    match shared.queues[shard].submit(key, job) {
        Ok(submitted) => Routed::Queued {
            label,
            job: Arc::clone(submitted.job()),
            kind: JobKind::Warehouse,
        },
        Err(err) => Routed::Done(label, overload_response(err)),
    }
}

/// Borrowed view of the shard store list, as
/// [`rsls_lab::Warehouse::load_shards`] wants it.
fn store_refs(
    stores: &[(std::path::PathBuf, Option<std::path::PathBuf>)],
) -> Vec<(&Path, Option<&Path>)> {
    stores
        .iter()
        .map(|(cache, journal)| (cache.as_path(), journal.as_deref()))
        .collect()
}

fn query_route(shared: &Shared, req: &Request) -> Routed {
    let Some(sql) = req.query_param("sql").map(str::to_string) else {
        return Routed::Done(
            "query",
            Response::text(400, "missing query parameter: sql\n"),
        );
    };
    // Parse before submitting: a malformed query fails fast with its
    // byte offset instead of occupying a worker.
    if let Err(e) = rsls_lab::parse(&sql) {
        return Routed::Done("query", Response::text(400, format!("{e}\n")));
    }
    let Some(stores) = shared.shards.warehouse_stores() else {
        return Routed::Done(
            "query",
            Response::text(404, "result caching is disabled on this server\n"),
        );
    };
    let key = format!("query:{sql}");
    warehouse_route(shared, "query", &key, move || {
        let warehouse = rsls_lab::Warehouse::load_shards(&store_refs(&stores))
            .map_err(|e| format!("loading warehouse: {e}"))?;
        let result = warehouse.query(&sql).map_err(|e| format!("sql: {e}"))?;
        let body = result.to_canonical_json().into_bytes();
        let etag = compute::etag_for(&body);
        Ok(JobOutput { body, etag })
    })
}

fn compare_route(shared: &Shared, req: &Request) -> Routed {
    let (Some(a), Some(b)) = (
        req.query_param("a").map(str::to_string),
        req.query_param("b").map(str::to_string),
    ) else {
        return Routed::Done(
            "compare",
            Response::text(400, "missing query parameters: a and b (WHERE filters)\n"),
        );
    };
    let (expr_a, expr_b) = match (rsls_lab::parse_filter(&a), rsls_lab::parse_filter(&b)) {
        (Ok(ea), Ok(eb)) => (ea, eb),
        (Err(e), _) | (_, Err(e)) => {
            return Routed::Done("compare", Response::text(400, format!("{e}\n")))
        }
    };
    let Some(stores) = shared.shards.warehouse_stores() else {
        return Routed::Done(
            "compare",
            Response::text(404, "result caching is disabled on this server\n"),
        );
    };
    let key = format!("compare:{a}\u{1}{b}");
    warehouse_route(shared, "compare", &key, move || {
        let warehouse = rsls_lab::Warehouse::load_shards(&store_refs(&stores))
            .map_err(|e| format!("loading warehouse: {e}"))?;
        let report = rsls_lab::compare_filtered(&warehouse, &expr_a, &a, &expr_b, &b)
            .map_err(|e| format!("sql: {e}"))?;
        let body = rsls_lab::canonical_json(&report).into_bytes();
        let etag = compute::etag_for(&body);
        Ok(JobOutput { body, etag })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_source_lists_builtin_experiments() {
        let list = RegistrySource.list();
        assert!(list.iter().any(|e| e.id == "fig5"));
        assert!(list.iter().any(|e| e.id == "table6"));
        let json = serde_json::to_string(&list).unwrap();
        assert!(json.contains(r#""id":"fig1""#));
    }

    #[test]
    fn default_options_are_sane() {
        let opts = ServeOptions::default();
        assert!(opts.workers >= 1);
        assert!(opts.queue_depth >= 1);
        assert!(!opts.honor_signals);
        assert_eq!(opts.shards, 1);
        assert!(opts.shard_base.is_none());
        assert!(opts.chaos.is_none());
    }
}
