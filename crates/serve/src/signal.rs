//! SIGTERM / SIGINT → a process-wide shutdown flag.
//!
//! The accept loop polls [`requested`] between `accept` attempts; a
//! signal therefore turns into a graceful drain (stop accepting, finish
//! in-flight work, flush the journal) rather than a hard kill. The
//! handler itself only stores to an atomic — the one thing that is
//! async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or [`request`]ed).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Requests shutdown programmatically (tests, embedders).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod sys {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // Installed via `signal(2)` directly rather than a signal-handling
    // crate: the workspace is dependency-free by construction, and an
    // atomic store is within signal(2)'s portable contract.
    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            /// libc `signal(2)`: installs `handler` for `signum`.
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    /// SIGINT (ctrl-c) and SIGTERM on every Unix the repo targets.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Installs [`on_signal`] for SIGINT and SIGTERM.
    #[allow(unsafe_code)]
    pub fn install() {
        // Safety: `on_signal` only performs an atomic store, which is
        // async-signal-safe; the handler address outlives the process.
        unsafe {
            ffi::signal(SIGINT, on_signal as *const () as usize);
            ffi::signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// No signals to hook off Unix; shutdown comes from the stop flag.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub fn install() {
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag() {
        // Note: the flag is process-global and sticky; integration
        // tests that exercise graceful shutdown run in their own
        // process, so flipping it here is safe.
        assert!(!requested() || requested()); // no precondition on order
        request();
        assert!(requested());
    }
}
