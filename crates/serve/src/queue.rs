//! Bounded work queue with a fixed worker pool and in-flight coalescing.
//!
//! Connection threads never compute: they [`WorkQueue::submit`] a job
//! keyed by its result identity and block on the returned [`Job`]
//! latch. The queue gives the service its overload behavior:
//!
//! - a submission whose key is already queued or executing coalesces
//!   onto that job (both callers get the same bytes, one computation);
//! - a submission that would exceed the queue bound is rejected
//!   (`Err(SubmitError::Full)` → the router's `503` + `Retry-After`),
//!   so overload sheds load instead of growing threads;
//! - a panicking job is isolated: the panic is caught on the worker,
//!   every waiter gets `Err(message)`, and the worker survives.
//!
//! [`WorkQueue::shutdown`] is graceful: submissions stop, workers drain
//! everything already queued (every accepted request gets its answer),
//! then exit and are joined.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::metrics::Metrics;

/// The bytes a finished job hands every waiter.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Response body (canonical JSON).
    pub body: Vec<u8>,
    /// sha256 of `body` — the response `ETag`.
    pub etag: String,
}

/// What a job produces: output, or an error message (harness failure or
/// an isolated panic).
pub type JobResult = Result<JobOutput, String>;

type JobFn = Box<dyn FnOnce() -> JobResult + Send>;

/// Completion latch for one submitted computation. Cheap to clone via
/// `Arc`; every coalesced caller waits on the same instance.
#[derive(Debug)]
pub struct Job {
    key: String,
    result: Mutex<Option<JobResult>>,
    cv: Condvar,
}

impl Job {
    fn new(key: String) -> Job {
        Job {
            key,
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// The result key this job computes.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Blocks until the job completes, then returns (a clone of) its
    /// result.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether the job has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    fn complete(&self, result: JobResult) {
        *self.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.cv.notify_all();
    }
}

/// Outcome of a successful [`WorkQueue::submit`].
#[derive(Debug, Clone)]
pub enum Submitted {
    /// The job was enqueued; this caller's closure will run.
    New(Arc<Job>),
    /// An identical job was already in flight; the closure was dropped
    /// and this caller shares that job's latch.
    Coalesced(Arc<Job>),
}

impl Submitted {
    /// The latch to wait on, either way.
    pub fn job(&self) -> &Arc<Job> {
        match self {
            Submitted::New(job) | Submitted::Coalesced(job) => job,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later (`503` + `Retry-After`).
    Full,
    /// The service is shutting down; no new work is accepted.
    ShuttingDown,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<(Arc<Job>, JobFn)>,
    /// Jobs queued or executing, by result key — the coalescing index.
    in_flight: BTreeMap<String, Arc<Job>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<QueueState>,
    /// Wakes workers when work arrives or shutdown begins.
    work_cv: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
    /// Which per-shard metric slice this queue feeds.
    shard: usize,
}

/// The bounded queue plus its worker pool.
pub struct WorkQueue {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl std::fmt::Debug for WorkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("capacity", &self.inner.capacity)
            .finish_non_exhaustive()
    }
}

impl WorkQueue {
    /// Starts `workers` worker threads draining a queue bounded at
    /// `capacity` pending jobs (executing jobs do not count against the
    /// bound). Counters feed shard slice 0.
    pub fn new(workers: usize, capacity: usize, metrics: Arc<Metrics>) -> WorkQueue {
        WorkQueue::for_shard(workers, capacity, metrics, 0)
    }

    /// Like [`WorkQueue::new`], but counters feed the metric slice of
    /// campaign shard `shard` (the sharded service runs one queue per
    /// shard).
    pub fn for_shard(
        workers: usize,
        capacity: usize,
        metrics: Arc<Metrics>,
        shard: usize,
    ) -> WorkQueue {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
            shard,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rsls-serve-worker-{shard}-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        WorkQueue {
            inner,
            workers: Mutex::new(handles),
            stopped: AtomicBool::new(false),
        }
    }

    /// Submits a computation for `key`. See the module docs for the
    /// coalesce/reject semantics.
    pub fn submit(
        &self,
        key: &str,
        job: impl FnOnce() -> JobResult + Send + 'static,
    ) -> Result<Submitted, SubmitError> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if let Some(existing) = state.in_flight.get(key) {
            let job = Arc::clone(existing);
            drop(state);
            self.inner.metrics.job_coalesced_on(self.inner.shard);
            return Ok(Submitted::Coalesced(job));
        }
        if state.queue.len() >= self.inner.capacity {
            drop(state);
            self.inner.metrics.queue_rejected();
            return Err(SubmitError::Full);
        }
        let handle = Arc::new(Job::new(key.to_string()));
        state.in_flight.insert(key.to_string(), Arc::clone(&handle));
        state.queue.push_back((Arc::clone(&handle), Box::new(job)));
        drop(state);
        self.inner.metrics.queue_depth_add_on(self.inner.shard, 1);
        self.inner.work_cv.notify_one();
        Ok(Submitted::New(handle))
    }

    /// Stops accepting work, drains every already-queued job, and joins
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut state = self
                .inner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (job, work) = {
            let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(item) = state.queue.pop_front() {
                    break item;
                }
                if state.shutdown {
                    return;
                }
                state = inner
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        inner.metrics.queue_depth_add_on(inner.shard, -1);
        inner.metrics.workers_busy_add(1);
        // Panic isolation: a harness panic becomes an error result for
        // every waiter; the worker thread itself survives.
        let result = panic::catch_unwind(AssertUnwindSafe(work))
            .unwrap_or_else(|payload| Err(format!("job panicked: {}", panic_message(&*payload))));
        inner.metrics.workers_busy_add(-1);
        // De-index before publishing: once a result is observable, the
        // key is free for a fresh (non-coalesced) computation.
        inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight
            .remove(job.key());
        job.complete(result);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    fn output(s: &str) -> JobOutput {
        JobOutput {
            body: s.as_bytes().to_vec(),
            etag: rsls_core::sha256_hex(s.as_bytes()),
        }
    }

    #[test]
    fn runs_a_job_and_returns_its_output() {
        let q = WorkQueue::new(2, 4, Arc::new(Metrics::new()));
        let submitted = q.submit("k", || Ok(output("hello"))).unwrap();
        assert!(matches!(submitted, Submitted::New(_)));
        assert_eq!(submitted.job().wait().unwrap().body, b"hello");
    }

    #[test]
    fn duplicate_in_flight_submissions_coalesce() {
        let metrics = Arc::new(Metrics::new());
        let q = WorkQueue::new(1, 4, Arc::clone(&metrics));
        let runs = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);

        let runs_leader = Arc::clone(&runs);
        let leader = q
            .submit("same-key", move || {
                runs_leader.fetch_add(1, Ordering::SeqCst);
                let _ = release_rx
                    .lock()
                    .unwrap()
                    .recv_timeout(Duration::from_secs(10));
                Ok(output("computed-once"))
            })
            .unwrap();
        // Wait until the single worker has actually started the leader.
        while metrics.queue_depth() != 0 {
            std::thread::yield_now();
        }
        let runs_dup = Arc::clone(&runs);
        let follower = q
            .submit("same-key", move || {
                runs_dup.fetch_add(1, Ordering::SeqCst);
                Ok(output("must-not-run"))
            })
            .unwrap();
        assert!(matches!(follower, Submitted::Coalesced(_)));
        assert!(Arc::ptr_eq(leader.job(), follower.job()));
        release_tx.send(()).unwrap();

        assert_eq!(leader.job().wait().unwrap().body, b"computed-once");
        assert_eq!(follower.job().wait().unwrap().body, b"computed-once");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(metrics.coalesced_total(), 1);
        // Key freed after completion: a new submit runs fresh.
        let again = q.submit("same-key", || Ok(output("fresh"))).unwrap();
        assert!(matches!(again, Submitted::New(_)));
        assert_eq!(again.job().wait().unwrap().body, b"fresh");
    }

    #[test]
    fn full_queue_rejects_and_drains_after_space_frees() {
        let metrics = Arc::new(Metrics::new());
        let q = WorkQueue::new(1, 1, Arc::clone(&metrics));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let blocker = q
            .submit("blocker", move || {
                let _ = release_rx
                    .lock()
                    .unwrap()
                    .recv_timeout(Duration::from_secs(10));
                Ok(output("done"))
            })
            .unwrap();
        while metrics.queue_depth() != 0 {
            std::thread::yield_now();
        }
        // Worker busy; capacity 1 → one queued job fits, the next is shed.
        let queued = q.submit("queued", || Ok(output("q"))).unwrap();
        assert!(matches!(queued, Submitted::New(_)));
        assert!(matches!(
            q.submit("shed", || Ok(output("s"))),
            Err(SubmitError::Full)
        ));
        release_tx.send(()).unwrap();
        assert!(blocker.job().wait().is_ok());
        assert!(queued.job().wait().is_ok());
    }

    #[test]
    fn panicking_job_fails_waiters_but_not_the_worker() {
        let q = WorkQueue::new(1, 4, Arc::new(Metrics::new()));
        let boom = q
            .submit("boom", || panic!("kaboom in the harness"))
            .unwrap();
        let err = boom.job().wait().unwrap_err();
        assert!(err.contains("kaboom"), "got: {err}");
        // The worker survived and still serves jobs.
        let ok = q.submit("after", || Ok(output("alive"))).unwrap();
        assert_eq!(ok.job().wait().unwrap().body, b"alive");
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let q = WorkQueue::new(1, 8, Arc::new(Metrics::new()));
        let jobs: Vec<_> = (0..4)
            .map(|i| q.submit(&format!("k{i}"), move || Ok(output(&format!("v{i}")))))
            .collect::<Result<_, _>>()
            .unwrap();
        q.shutdown();
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.job().wait().unwrap().body, format!("v{i}").as_bytes());
        }
        assert!(matches!(
            q.submit("late", || Ok(output("no"))),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
