//! Wire-protocol tests for the event-loop server: keep-alive reuse,
//! pipelining, torn request bytes, oversized-header rejection, and
//! cross-connection coalescing on a sharded engine.
//!
//! These tests speak raw HTTP/1.1 over `TcpStream` (framed with the
//! shared [`rsls_serve::http::parse_response`] parser) because the
//! behavior under test *is* the wire behavior — connection lifetimes,
//! response ordering, partial-read handling — which one-shot client
//! helpers deliberately hide.

use std::collections::BTreeMap;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::time::{Duration, Instant};

use rsls_campaign::EngineOptions;
use rsls_experiments::campaign;
use rsls_experiments::{Scale, Table};
use rsls_serve::http::parse_response;
use rsls_serve::server::{
    ExperimentInfo, ExperimentSource, RegistrySource, ServeOptions, Server, ServerHandle,
};

fn engine_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let dir = std::env::temp_dir().join(format!("rsls-serve-proto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        campaign::configure(EngineOptions {
            jobs: 2,
            cache_dir: dir.join("cache"),
            use_cache: true,
            resume: false,
            journal_path: Some(dir.join("campaign.journal")),
            retries: 0,
            ..EngineOptions::default()
        })
        .expect("first configure in this process");
    });
}

fn serve(
    opts: ServeOptions,
    source: Arc<dyn ExperimentSource>,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    engine_init();
    let server = Server::bind("127.0.0.1:0", opts, source).expect("bind ephemeral port");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A raw keep-alive connection: writes on the stream, frames responses
/// off a buffered clone.
struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn open(addr: std::net::SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Wire { stream, reader }
    }

    fn send(&mut self, path: &str) {
        let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n");
        self.stream.write_all(req.as_bytes()).expect("write");
    }

    fn recv(&mut self) -> (u16, BTreeMap<String, String>, Vec<u8>) {
        parse_response(&mut self.reader).expect("framed response")
    }

    fn round_trip(&mut self, path: &str) -> (u16, BTreeMap<String, String>, Vec<u8>) {
        self.send(path);
        self.recv()
    }
}

fn metric_value(metrics_body: &str, series: &str) -> Option<f64> {
    metrics_body.lines().find_map(|line| {
        line.strip_prefix(series)
            .and_then(|rest| rest.trim().parse::<f64>().ok())
    })
}

#[test]
fn keepalive_connection_serves_many_requests_and_reports_reuse() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let mut wire = Wire::open(handle.addr());

    for _ in 0..3 {
        let (status, _headers, body) = wire.round_trip("/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}\n");
    }

    // The fourth request on the same connection scrapes the server's
    // own view: one connection total, every request after the first a
    // keep-alive reuse.
    let (status, _headers, body) = wire.round_trip("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8");
    assert_eq!(
        metric_value(&text, "rsls_serve_connections_total "),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&text, "rsls_serve_connections_active "),
        Some(1.0)
    );
    assert!(
        metric_value(&text, "rsls_serve_keepalive_reuses_total ") >= Some(3.0),
        "got: {text}"
    );

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn pipelined_requests_come_back_in_request_order() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let mut wire = Wire::open(handle.addr());

    // Three requests written back-to-back before any response is read;
    // distinguishable bodies prove the ordering.
    let burst = concat!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /experiments HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    wire.stream.write_all(burst.as_bytes()).expect("write");

    let (status, _h, body) = wire.recv();
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}\n", "first response is healthz");
    let (status, _h, body) = wire.recv();
    assert_eq!(status, 200);
    let listing = String::from_utf8(body).expect("utf8");
    assert!(
        listing.contains(r#""id":"fig1""#),
        "second response is the listing, got: {listing}"
    );
    let (status, _h, body) = wire.recv();
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}\n", "third response is healthz");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn torn_request_bytes_reassemble_across_writes() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let mut wire = Wire::open(handle.addr());

    // The request head arrives in three fragments with pauses between
    // them — the incremental parser must buffer until complete, never
    // rejecting a merely-unfinished request.
    for fragment in ["GET /hea", "lthz HTTP/1.1\r\nHo", "st: t\r\n\r\n"] {
        wire.stream.write_all(fragment.as_bytes()).expect("write");
        wire.stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, _headers, body) = wire.recv();
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}\n");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn oversized_header_draws_431_and_a_close() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let mut wire = Wire::open(handle.addr());

    let huge = "a".repeat(20 * 1024);
    let req = format!("GET /healthz HTTP/1.1\r\nHost: t\r\nX-Flood: {huge}\r\n\r\n");
    wire.stream.write_all(req.as_bytes()).expect("write");

    let (status, headers, _body) = wire.recv();
    assert_eq!(status, 431);
    assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
    // The server hangs up after the rejection: the stream drains to EOF.
    let mut rest = Vec::new();
    wire.reader.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "no bytes after the close");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

/// A source whose experiments block until released, counting entries —
/// the same gating trick as `serve_integration.rs`, here aimed at the
/// sharded queues.
struct GatedSource {
    runs: AtomicUsize,
    entered_tx: Mutex<mpsc::Sender<()>>,
    release_rx: Mutex<mpsc::Receiver<()>>,
}

impl GatedSource {
    fn new() -> (Arc<GatedSource>, mpsc::Receiver<()>, mpsc::Sender<()>) {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let source = Arc::new(GatedSource {
            runs: AtomicUsize::new(0),
            entered_tx: Mutex::new(entered_tx),
            release_rx: Mutex::new(release_rx),
        });
        (source, entered_rx, release_tx)
    }
}

impl ExperimentSource for GatedSource {
    fn list(&self) -> Vec<ExperimentInfo> {
        vec![ExperimentInfo {
            id: "gated-a".to_string(),
            description: "test source".to_string(),
        }]
    }

    fn run(&self, id: &str, _scale: Scale) -> Option<Vec<Table>> {
        if id != "gated-a" {
            return None;
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.entered_tx.lock().unwrap().send(()).ok();
        self.release_rx
            .lock()
            .unwrap()
            .recv_timeout(Duration::from_secs(30))
            .expect("test releases the gate");
        let mut t = Table::new("gated result", &["k", "v"]);
        t.push_row(vec!["a".to_string(), "1".to_string()]);
        Some(vec![t])
    }
}

#[test]
fn identical_requests_coalesce_per_shard_across_keepalive_connections() {
    let shard_dir =
        std::env::temp_dir().join(format!("rsls-serve-proto-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shard_dir);
    let (source, entered_rx, release_tx) = GatedSource::new();
    let (handle, join) = serve(
        ServeOptions {
            workers: 2,
            queue_depth: 8,
            shards: 3,
            shard_base: Some(EngineOptions {
                jobs: 1,
                cache_dir: shard_dir.join("cache"),
                use_cache: true,
                resume: false,
                retries: 0,
                ..EngineOptions::default()
            }),
            ..ServeOptions::default()
        },
        source.clone(),
    );
    let addr = handle.addr();

    // Two *separate* keep-alive connections ask for the same experiment
    // concurrently: both route to the same shard (same key, same ring
    // position), and the duplicate coalesces onto the leader's job.
    let fetch = |addr| {
        std::thread::spawn(move || {
            let mut wire = Wire::open(addr);
            let first = wire.round_trip("/experiments/gated-a");
            // The connection survives the computed response: prove it by
            // reusing it immediately.
            let (status, _h, body) = wire.round_trip("/healthz");
            assert_eq!(status, 200);
            assert_eq!(body, b"{\"status\":\"ok\"}\n");
            first
        })
    };
    let first = fetch(addr);
    let second = fetch(addr);

    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("leader enters the harness");
    let metrics = handle.metrics();
    wait_until("duplicate to coalesce", || metrics.coalesced_total() >= 1);
    assert_eq!(source.runs.load(Ordering::SeqCst), 1, "one computation");
    release_tx.send(()).expect("release the leader");

    let (status_a, headers_a, body_a) = first.join().expect("no panic");
    let (status_b, _headers_b, body_b) = second.join().expect("no panic");
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(body_a, body_b, "coalesced responses are byte-identical");
    assert_eq!(source.runs.load(Ordering::SeqCst), 1, "still one");
    assert!(headers_a.contains_key("etag"));

    // The coalescing shows up under exactly one shard label, and every
    // shard exports a queue-depth gauge.
    let mut wire = Wire::open(addr);
    let (status, _h, body) = wire.round_trip("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8");
    for shard in 0..3 {
        assert!(
            text.contains(&format!(
                "rsls_serve_shard_queue_depth{{shard=\"{shard}\"}}"
            )),
            "shard {shard} gauge missing: {text}"
        );
    }
    let coalesced: f64 = (0..3)
        .filter_map(|s| {
            metric_value(
                &text,
                &format!("rsls_serve_shard_coalesced_total{{shard=\"{s}\"}} "),
            )
        })
        .sum();
    assert!(coalesced >= 1.0, "per-shard coalesce counter: {text}");
    let computed: f64 = (0..3)
        .filter_map(|s| {
            metric_value(
                &text,
                &format!("rsls_serve_shard_computations_total{{shard=\"{s}\"}} "),
            )
        })
        .sum();
    assert!(computed >= 1.0, "per-shard computation counter: {text}");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&shard_dir);
}
