//! End-to-end tests over real sockets.
//!
//! One process, one process-global campaign engine: `engine_init` wires
//! it to a temp cache before any test touches it. Servers bind `:0`
//! ephemeral ports so tests run in parallel without address clashes.
//! Coalescing and overload tests use a *gated* experiment source — the
//! harness blocks on a channel until the test releases it — so "two
//! requests are concurrently in flight" is a guaranteed state, not a
//! race the test hopes to win.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::time::{Duration, Instant};

use rsls_campaign::EngineOptions;
use rsls_chaos::{ChaosInjector, ChaosPlan};
use rsls_experiments::campaign;
use rsls_experiments::{Scale, Table};
use rsls_serve::client::{
    client_retries_total, get, get_with_retry, get_with_retry_chaotic, ClientResponse, RetryPolicy,
};
use rsls_serve::server::{
    ExperimentInfo, ExperimentSource, RegistrySource, ServeOptions, Server, ServerHandle,
};

fn engine_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let dir = std::env::temp_dir().join(format!("rsls-serve-it-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        campaign::configure(EngineOptions {
            jobs: 2,
            cache_dir: dir.join("cache"),
            use_cache: true,
            resume: false,
            journal_path: Some(dir.join("campaign.journal")),
            retries: 0,
            ..EngineOptions::default()
        })
        .expect("first configure in this process");
    });
}

/// Binds an ephemeral-port server and runs it on a background thread.
fn serve(
    opts: ServeOptions,
    source: Arc<dyn ExperimentSource>,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    engine_init();
    let server = Server::bind("127.0.0.1:0", opts, source).expect("bind ephemeral port");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A source whose `gated-*` experiments block until released, with a
/// shared invocation counter; `boom` panics.
struct GatedSource {
    runs: AtomicUsize,
    entered_tx: Mutex<mpsc::Sender<()>>,
    release_rx: Mutex<mpsc::Receiver<()>>,
}

impl GatedSource {
    fn new() -> (Arc<GatedSource>, mpsc::Receiver<()>, mpsc::Sender<()>) {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let source = Arc::new(GatedSource {
            runs: AtomicUsize::new(0),
            entered_tx: Mutex::new(entered_tx),
            release_rx: Mutex::new(release_rx),
        });
        (source, entered_rx, release_tx)
    }
}

impl ExperimentSource for GatedSource {
    fn list(&self) -> Vec<ExperimentInfo> {
        ["gated-a", "gated-b", "gated-c", "boom"]
            .iter()
            .map(|id| ExperimentInfo {
                id: id.to_string(),
                description: "test source".to_string(),
            })
            .collect()
    }

    fn run(&self, id: &str, _scale: Scale) -> Option<Vec<Table>> {
        match id {
            "boom" => panic!("harness exploded"),
            gated if gated.starts_with("gated-") => {
                self.runs.fetch_add(1, Ordering::SeqCst);
                self.entered_tx.lock().unwrap().send(()).ok();
                self.release_rx
                    .lock()
                    .unwrap()
                    .recv_timeout(Duration::from_secs(30))
                    .expect("test releases the gate");
                let mut t = Table::new(format!("{id} result"), &["k", "v"]);
                t.push_row(vec![id.to_string(), "1".to_string()]);
                Some(vec![t])
            }
            _ => None,
        }
    }
}

fn metric_value(metrics_body: &str, series: &str) -> Option<f64> {
    metrics_body.lines().find_map(|line| {
        line.strip_prefix(series)
            .and_then(|rest| rest.trim().parse::<f64>().ok())
    })
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_computation() {
    let (source, entered_rx, release_tx) = GatedSource::new();
    let (handle, join) = serve(
        ServeOptions {
            workers: 2,
            queue_depth: 8,
            ..ServeOptions::default()
        },
        source.clone(),
    );
    let addr = handle.addr();

    // Two concurrent requests for the same experiment.
    let fetch = |addr| std::thread::spawn(move || get(addr, "/experiments/gated-a", &[]));
    let first = fetch(addr);
    let second = fetch(addr);

    // The harness is running exactly once (gate entered), and the
    // duplicate has coalesced at the queue — observable via metrics
    // before any release.
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("leader enters the harness");
    let metrics = handle.metrics();
    wait_until("duplicate to coalesce", || metrics.coalesced_total() >= 1);
    assert_eq!(source.runs.load(Ordering::SeqCst), 1);
    release_tx.send(()).expect("release the leader");

    let a: ClientResponse = first.join().expect("no panic").expect("response");
    let b: ClientResponse = second.join().expect("no panic").expect("response");
    assert_eq!((a.status, b.status), (200, 200));
    assert_eq!(a.body, b.body, "coalesced responses must be byte-identical");
    assert_eq!(a.etag(), b.etag());
    assert_eq!(
        source.runs.load(Ordering::SeqCst),
        1,
        "one computation total"
    );

    // Conditional re-fetch revalidates to 304 with no body...
    let etag = a.etag().expect("etag present").to_string();
    let revalidated = get(
        addr,
        "/experiments/gated-a",
        &[("If-None-Match", &format!("\"{etag}\""))],
    )
    .expect("revalidate");
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty());
    assert_eq!(revalidated.etag(), Some(etag.as_str()));

    // ...and an unconditional one serves from the result cache without
    // re-entering the harness (the gate would otherwise block forever).
    let again = get(addr, "/experiments/gated-a", &[]).expect("cached re-fetch");
    assert_eq!(again.status, 200);
    assert_eq!(again.body, a.body);
    assert_eq!(source.runs.load(Ordering::SeqCst), 1);

    // The whole story is visible on /metrics.
    let scrape = get(addr, "/metrics", &[]).expect("metrics");
    let text = String::from_utf8(scrape.body).expect("utf8");
    assert_eq!(
        metric_value(&text, "rsls_serve_computations_total "),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&text, "rsls_serve_coalesced_total "),
        Some(1.0)
    );
    assert!(metric_value(&text, "rsls_serve_result_cache_hits_total ") >= Some(1.0));
    assert!(text.contains("rsls_serve_request_duration_seconds_bucket"));

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn full_queue_sheds_load_with_503_and_retry_after() {
    let (source, entered_rx, release_tx) = GatedSource::new();
    let (handle, join) = serve(
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            ..ServeOptions::default()
        },
        source,
    );
    let addr = handle.addr();

    // Occupy the single worker...
    let busy = std::thread::spawn(move || get(addr, "/experiments/gated-a", &[]));
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker occupied");
    // ...fill the single queue slot with a *different* key...
    let queued = std::thread::spawn(move || get(addr, "/experiments/gated-b", &[]));
    let metrics = handle.metrics();
    wait_until("second job to queue", || metrics.queue_depth() == 1);

    // ...and watch the third distinct request get shed.
    let shed = get(addr, "/experiments/gated-c", &[]).expect("shed response");
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("2"));

    // Drain: both accepted requests still complete.
    release_tx.send(()).expect("release first");
    release_tx.send(()).expect("release second");
    assert_eq!(
        busy.join().expect("no panic").expect("response").status,
        200
    );
    assert_eq!(
        queued.join().expect("no panic").expect("response").status,
        200
    );

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn panicking_harness_is_isolated_to_a_500() {
    let (source, _entered_rx, _release_tx) = GatedSource::new();
    let (handle, join) = serve(ServeOptions::default(), source);
    let addr = handle.addr();

    let resp = get(addr, "/experiments/boom", &[]).expect("response despite panic");
    assert_eq!(resp.status, 500);
    let body = String::from_utf8(resp.body).expect("utf8");
    assert!(body.contains("harness exploded"), "got: {body}");

    // The worker and the server both survived.
    let health = get(addr, "/healthz", &[]).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"{\"status\":\"ok\"}\n");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn real_registry_serves_listing_and_fig1() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let addr = handle.addr();

    let listing = get(addr, "/experiments", &[]).expect("listing");
    assert_eq!(listing.status, 200);
    let text = String::from_utf8(listing.body).expect("utf8");
    assert!(text.contains(r#""id":"fig1""#));
    assert!(text.contains(r#""id":"table6""#));

    // fig1 is pure table arithmetic — no solver units — so it is fast
    // at any scale.
    let first = get(addr, "/experiments/fig1", &[]).expect("fig1");
    assert_eq!(first.status, 200);
    let etag = first.etag().expect("etag").to_string();
    assert_eq!(
        etag,
        rsls_core::sha256_hex(&first.body),
        "self-certifying ETag"
    );
    let body = String::from_utf8(first.body.clone()).expect("utf8");
    assert!(body.starts_with(r#"{"experiment":"fig1","scale":"#));

    let second = get(addr, "/experiments/fig1", &[]).expect("fig1 again");
    assert_eq!(second.body, first.body, "re-fetch is byte-identical");

    let missing = get(addr, "/experiments/nope", &[]).expect("404");
    assert_eq!(missing.status, 404);

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn reports_round_trip_from_the_content_addressed_store() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let addr = handle.addr();

    // Plant a report in the engine's object store the same way a
    // campaign would, then serve it back by content address.
    let report = rsls_core::RunReport {
        scheme: "FF".into(),
        num_ranks: 8,
        iterations: 120,
        converged: true,
        final_relative_residual: 3.25e-13,
        time_s: 1.5,
        energy_j: 300.0,
        avg_power_w: 200.0,
        faults_injected: 0,
        construction_fallbacks: 0,
        checkpoint_interval_iters: None,
        checkpoint_bytes_written: 0,
        breakdown: Default::default(),
        history: Default::default(),
        power_profile: Vec::new(),
    };
    let cache = campaign::engine().cache().expect("engine cache enabled");
    let spec_hash = "ab".repeat(32);
    let object_hash = cache.store(&spec_hash, &report).expect("store");

    let resp = get(addr, &format!("/reports/{object_hash}"), &[]).expect("report");
    assert_eq!(resp.status, 200);
    assert_eq!(
        rsls_core::sha256_hex(&resp.body),
        object_hash,
        "served bytes hash to their own path"
    );
    assert_eq!(resp.etag(), Some(object_hash.as_str()));

    // Conditional re-fetch needs no disk: the path is the hash.
    let revalidated = get(
        addr,
        &format!("/reports/{object_hash}"),
        &[("If-None-Match", &format!("\"{object_hash}\""))],
    )
    .expect("revalidate");
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty());

    let missing = get(addr, &format!("/reports/{}", "0".repeat(64)), &[]).expect("miss");
    assert_eq!(missing.status, 404);
    let malformed = get(addr, "/reports/not-a-hash", &[]).expect("malformed");
    assert_eq!(malformed.status, 400);

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

/// Minimal percent-encoding for test query strings.
fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z'
            | b'A'..=b'Z'
            | b'0'..=b'9'
            | b'-'
            | b'_'
            | b'.'
            | b'~'
            | b'('
            | b')'
            | b'*'
            | b',' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[test]
fn lab_query_and_compare_routes_serve_etagged_canonical_json() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let addr = handle.addr();

    // Populate the engine's store with a small two-scheme lineup the
    // warehouse routes can rank.
    use rsls_campaign::{UnitSpec, ENGINE_VERSION};
    let a = rsls_sparse::generators::stencil_2d(16, 16);
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    let specs: Vec<UnitSpec> = [rsls_core::Scheme::FaultFree, rsls_core::Scheme::Dmr]
        .into_iter()
        .map(|scheme| UnitSpec {
            experiment: "lab-route".to_string(),
            unit: scheme.label(),
            matrix: "stencil-16".to_string(),
            matrix_fingerprint: 1,
            scale: "quick".to_string(),
            engine_version: ENGINE_VERSION,
            config: rsls_core::RunConfig::new(scheme, 2),
        })
        .collect();
    let outcomes =
        campaign::engine().run_units(&specs, |spec| rsls_core::driver::run(&a, &b, &spec.config));
    assert!(outcomes.iter().all(|o| o.report.is_some()));

    // Other tests in this process plant their own store objects, so
    // pin the query to this lineup's provenance.
    let sql = "SELECT scheme, avg(energy) FROM runs WHERE experiment = 'lab-route' \
               GROUP BY scheme ORDER BY avg(energy)";
    let path = format!("/query?sql={}", urlencode(sql));
    let first = get(addr, &path, &[]).expect("query");
    assert_eq!(
        first.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&first.body)
    );
    let etag = first.etag().expect("etag present").to_string();
    assert_eq!(
        etag,
        rsls_core::sha256_hex(&first.body),
        "self-certifying ETag"
    );
    let body = String::from_utf8(first.body.clone()).expect("utf8");
    assert!(
        body.starts_with(r#"{"columns":["scheme","avg(energy)"],"rows":["#),
        "got: {body}"
    );
    assert!(
        body.contains("\"FF\"") && body.contains("\"RD\""),
        "got: {body}"
    );

    // Re-fetch is byte-identical; conditional re-fetch revalidates.
    let second = get(addr, &path, &[]).expect("query again");
    assert_eq!(second.body, first.body);
    let revalidated =
        get(addr, &path, &[("If-None-Match", &format!("\"{etag}\""))]).expect("revalidate");
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty());

    // Caller errors are 400s: missing parameter, parse error, unknown
    // column (eval error).
    assert_eq!(get(addr, "/query", &[]).expect("no sql").status, 400);
    let bad = get(
        addr,
        &format!("/query?sql={}", urlencode("SELECT FROM")),
        &[],
    )
    .expect("bad sql");
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("SQL error"));
    let eval = get(
        addr,
        &format!("/query?sql={}", urlencode("SELECT nope FROM runs")),
        &[],
    )
    .expect("eval error");
    assert_eq!(eval.status, 400);

    // /compare diffs two filtered slices; a slice against itself is
    // identical, and the report carries a valid ETag too.
    let same = urlencode("experiment = 'lab-route'");
    let compare = get(addr, &format!("/compare?a={same}&b={same}"), &[]).expect("compare");
    assert_eq!(compare.status, 200);
    let compare_etag = compare.etag().expect("etag").to_string();
    assert_eq!(compare_etag, rsls_core::sha256_hex(&compare.body));
    let text = String::from_utf8(compare.body).expect("utf8");
    assert!(text.contains(r#""identical":true"#), "got: {text}");
    let diff = get(
        addr,
        &format!(
            "/compare?a={}&b={}",
            urlencode("scheme = 'FF'"),
            urlencode("scheme = 'RD'")
        ),
        &[],
    )
    .expect("cross compare");
    assert_eq!(diff.status, 200);
    let text = String::from_utf8(diff.body).expect("utf8");
    assert!(text.contains(r#""identical":false"#), "got: {text}");
    assert_eq!(
        get(addr, "/compare?a=x", &[]).expect("missing b").status,
        400
    );

    // The lab metric families are on /metrics for CI to grep.
    let scrape = get(addr, "/metrics", &[]).expect("metrics");
    let text = String::from_utf8(scrape.body).expect("utf8");
    assert!(metric_value(&text, "rsls_lab_queries_total ") >= Some(2.0));
    assert!(metric_value(&text, "rsls_lab_ingested_objects_total ") >= Some(2.0));
    assert!(text.contains("rsls_lab_ingest_rejected_total "));
    assert!(text.contains("rsls_lab_query_seconds_bucket"));
    assert!(metric_value(&text, "rsls_lab_query_seconds_count ") >= Some(3.0));

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn rejects_unsupported_methods_and_bad_requests() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let addr = handle.addr();

    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /experiments HTTP/1.1\r\nHost: a\r\n\r\n")
        .expect("write");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.1 405 "), "got: {buf}");
    assert!(buf.contains("Allow: GET, HEAD"));

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(b"garbage\r\n\r\n").expect("write");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.1 400 "), "got: {buf}");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn retrying_client_absorbs_injected_connection_faults() {
    let (handle, join) = serve(ServeOptions::default(), Arc::new(RegistrySource));
    let addr = handle.addr();

    // One reset, then one garbled status line, then a clean round trip:
    // the retry loop must absorb both injected faults transparently.
    let mut plan = ChaosPlan::quiet(21);
    plan.client_reset_permille = 1000;
    plan.client_garble_permille = 1000;
    plan.max_faults_per_site = 1;
    let injector = ChaosInjector::new(plan);
    let policy = RetryPolicy {
        attempts: 5,
        backoff_ms: 1,
        backoff_cap_ms: 4,
        deadline: Duration::from_secs(30),
    };
    let before = client_retries_total();
    let resp = get_with_retry_chaotic(addr, "/healthz", &[], &policy, Some(&injector))
        .expect("retries must defeat the chaos plan");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"{\"status\":\"ok\"}\n");
    assert_eq!(injector.fired(rsls_chaos::ChaosSite::ClientReset), 1);
    assert_eq!(injector.fired(rsls_chaos::ChaosSite::ClientGarble), 1);
    assert!(
        client_retries_total() - before >= 2,
        "both faults must cost a retry"
    );

    // The retry counter and the campaign resilience families are on
    // /metrics for CI to assert.
    let scrape = get(addr, "/metrics", &[]).expect("metrics");
    let text = String::from_utf8(scrape.body).expect("utf8");
    assert!(metric_value(&text, "rsls_serve_client_retries_total ") >= Some(2.0));
    assert!(text.contains("rsls_campaign_cache_quarantined_total "));
    assert!(text.contains("rsls_campaign_unit_retries_total "));
    assert!(text.contains("rsls_campaign_circuit_state "));
    assert!(text.contains("rsls_campaign_units_degraded_total "));

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn retrying_client_honors_retry_after_on_503() {
    // A hand-rolled two-response server: first connection gets a 503
    // with Retry-After, the second gets a 200. No experiment source —
    // this isolates the client's overload behavior.
    use std::io::Write;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let responses: [&[u8]; 2] = [
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok",
        ];
        for response in responses {
            let (mut stream, _peer) = listener.accept().expect("accept");
            // Drain the full request head before answering: replying
            // mid-request and closing would RST the client's remaining
            // writes, turning this into a transport-error test instead.
            use std::io::Read;
            let mut head = Vec::new();
            let mut buf = [0u8; 1024];
            while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                let n = stream.read(&mut buf).expect("read request");
                if n == 0 {
                    break;
                }
                head.extend_from_slice(&buf[..n]);
            }
            stream.write_all(response).expect("write");
        }
    });

    let policy = RetryPolicy {
        attempts: 3,
        backoff_ms: 1,
        // The server suggests 7s; the client must wait, but clamped to
        // its own cap so overload handling cannot stall a test suite.
        backoff_cap_ms: 60,
        deadline: Duration::from_secs(10),
    };
    let start = Instant::now();
    let resp = get_with_retry(addr, "/anything", &[], &policy).expect("eventual 200");
    let elapsed = start.elapsed();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"ok");
    assert!(
        elapsed >= Duration::from_millis(60),
        "the clamped Retry-After must actually be waited out (elapsed {elapsed:?})"
    );
    server.join().expect("server thread");
}

#[test]
fn signal_flag_drains_a_signal_honoring_server() {
    // The only test that flips the process-global signal flag; every
    // other server in this file ignores it (honor_signals: false).
    let (handle, join) = serve(
        ServeOptions {
            honor_signals: true,
            ..ServeOptions::default()
        },
        Arc::new(RegistrySource),
    );
    let addr = handle.addr();
    assert_eq!(get(addr, "/healthz", &[]).expect("healthz").status, 200);

    rsls_serve::signal::request();
    join.join().expect("no panic").expect("drained on signal");
}
