#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Deterministic infrastructure fault injection.
//!
//! `rsls-faults` injects faults into the *simulated solver* — this crate
//! injects them into the *system that runs it*: the campaign cache's
//! reads and writes, the journal's appends, the engine's unit execution,
//! and the service client's connection. The design mirrors
//! `rsls_faults::FaultSchedule`:
//!
//! * a [`ChaosPlan`] is a canonical-JSON value (integer rates, explicit
//!   seed) with a stable [`ChaosPlan::content_hash`], so a chaos run is
//!   as reproducible as the campaign it torments;
//! * a [`ChaosInjector`] turns the plan into decisions at narrow hook
//!   points ([`ChaosSite`]s) threaded through the I/O edges — each
//!   decision a pure FNV-1a function of `(seed, site, decision index,
//!   caller key)`, with no wall clock or OS entropy anywhere;
//! * per-site fired counters make "the faults actually happened"
//!   assertable, so a green chaos soak proves resilience rather than
//!   quiet luck.
//!
//! The crate sits below `rsls-campaign` and `rsls-serve` in the
//! dependency graph (it depends only on `rsls-core` for hashing), the
//! same way `rsls-faults` sits below the solver driver.

pub mod injector;
pub mod plan;

pub use injector::{ChaosInjector, ChaosSite, SITE_COUNT};
pub use plan::ChaosPlan;
