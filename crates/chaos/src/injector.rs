//! The injector: deterministic, seed-driven firing decisions plus the
//! byte mutators the I/O hooks apply.
//!
//! Every decision hashes `(plan seed, site, per-site decision index,
//! caller key)` through FNV-1a — no wall clock, no OS entropy — so a
//! serial replay of the same workload under the same plan injects the
//! *same* faults at the *same* points. Under a parallel workload the
//! per-site decision indices depend on thread interleaving, but the
//! decision function itself stays pure: whatever fires is still a
//! function of the seed, and the hardened layers above must produce
//! byte-identical results either way (the chaos soak asserts exactly
//! that).

use std::sync::atomic::{AtomicU64, Ordering};

use rsls_core::Fnv1a;

use crate::plan::ChaosPlan;

/// An I/O edge where the injector can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// Transient error while reading a cache object.
    CacheReadError,
    /// Bit corruption of cache object bytes on read.
    CacheCorrupt,
    /// Truncation of cache object bytes on read.
    CacheTruncate,
    /// Torn cache object write (partial bytes, then failure).
    CacheWriteTorn,
    /// Torn trailing journal append.
    JournalTorn,
    /// Injected worker panic during unit execution.
    UnitPanic,
    /// Injected transient unit failure.
    UnitTransient,
    /// Connection reset before the client reads its response.
    ClientReset,
    /// Garbled HTTP status line on the client connection.
    ClientGarble,
    /// Artificial client-side delay.
    ClientDelay,
    /// Dropped connection right after the server accepts it.
    ServerAccept,
    /// Server-side connection teardown while reading a request.
    ServerRead,
    /// Torn server response (connection closed mid-write).
    ServerWrite,
    /// Torn checkpoint-file write (partial bytes, then failure).
    CkptWriteTorn,
    /// Transient error while reading a checkpoint file back.
    CkptReadError,
}

/// Number of distinct [`ChaosSite`]s.
pub const SITE_COUNT: usize = 15;

impl ChaosSite {
    /// All sites, in stable order.
    pub const ALL: [ChaosSite; SITE_COUNT] = [
        ChaosSite::CacheReadError,
        ChaosSite::CacheCorrupt,
        ChaosSite::CacheTruncate,
        ChaosSite::CacheWriteTorn,
        ChaosSite::JournalTorn,
        ChaosSite::UnitPanic,
        ChaosSite::UnitTransient,
        ChaosSite::ClientReset,
        ChaosSite::ClientGarble,
        ChaosSite::ClientDelay,
        ChaosSite::ServerAccept,
        ChaosSite::ServerRead,
        ChaosSite::ServerWrite,
        ChaosSite::CkptWriteTorn,
        ChaosSite::CkptReadError,
    ];

    /// Stable index of this site (counter slot and hash domain).
    pub fn index(self) -> usize {
        match self {
            ChaosSite::CacheReadError => 0,
            ChaosSite::CacheCorrupt => 1,
            ChaosSite::CacheTruncate => 2,
            ChaosSite::CacheWriteTorn => 3,
            ChaosSite::JournalTorn => 4,
            ChaosSite::UnitPanic => 5,
            ChaosSite::UnitTransient => 6,
            ChaosSite::ClientReset => 7,
            ChaosSite::ClientGarble => 8,
            ChaosSite::ClientDelay => 9,
            ChaosSite::ServerAccept => 10,
            ChaosSite::ServerRead => 11,
            ChaosSite::ServerWrite => 12,
            ChaosSite::CkptWriteTorn => 13,
            ChaosSite::CkptReadError => 14,
        }
    }

    /// Human-readable site name, for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            ChaosSite::CacheReadError => "cache-read-error",
            ChaosSite::CacheCorrupt => "cache-corrupt",
            ChaosSite::CacheTruncate => "cache-truncate",
            ChaosSite::CacheWriteTorn => "cache-write-torn",
            ChaosSite::JournalTorn => "journal-torn",
            ChaosSite::UnitPanic => "unit-panic",
            ChaosSite::UnitTransient => "unit-transient",
            ChaosSite::ClientReset => "client-reset",
            ChaosSite::ClientGarble => "client-garble",
            ChaosSite::ClientDelay => "client-delay",
            ChaosSite::ServerAccept => "server-accept",
            ChaosSite::ServerRead => "server-read",
            ChaosSite::ServerWrite => "server-write",
            ChaosSite::CkptWriteTorn => "ckpt-write-torn",
            ChaosSite::CkptReadError => "ckpt-read-error",
        }
    }
}

/// Threads a [`ChaosPlan`] through the infrastructure's I/O edges.
///
/// The injector is shared (`Arc`) between the campaign cache, journal,
/// engine, and the service client; each edge asks [`ChaosInjector::fire`]
/// at its decision points and applies the corresponding mutator. Per-site
/// fired counters let tests and CI assert the faults actually happened.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    seq: [AtomicU64; SITE_COUNT],
    fired: [AtomicU64; SITE_COUNT],
}

impl ChaosInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosInjector {
            plan,
            seq: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// An injector that never fires (quiet plan, seed 0).
    pub fn disarmed() -> Self {
        ChaosInjector::new(ChaosPlan::quiet(0))
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    fn rate(&self, site: ChaosSite) -> u32 {
        match site {
            ChaosSite::CacheReadError => self.plan.cache_read_error_permille,
            ChaosSite::CacheCorrupt => self.plan.cache_corrupt_permille,
            ChaosSite::CacheTruncate => self.plan.cache_truncate_permille,
            ChaosSite::CacheWriteTorn => self.plan.cache_write_torn_permille,
            ChaosSite::JournalTorn => self.plan.journal_torn_permille,
            ChaosSite::UnitPanic => self.plan.unit_panic_permille,
            ChaosSite::UnitTransient => self.plan.unit_transient_permille,
            ChaosSite::ClientReset => self.plan.client_reset_permille,
            ChaosSite::ClientGarble => self.plan.client_garble_permille,
            ChaosSite::ClientDelay => self.plan.client_delay_permille,
            ChaosSite::ServerAccept => self.plan.server_accept_permille,
            ChaosSite::ServerRead => self.plan.server_read_permille,
            ChaosSite::ServerWrite => self.plan.server_write_permille,
            ChaosSite::CkptWriteTorn => self.plan.ckpt_write_torn_permille,
            ChaosSite::CkptReadError => self.plan.ckpt_read_error_permille,
        }
    }

    /// One injection decision at `site`, keyed by the caller's context
    /// (unit hash, object hash, request path, …).
    ///
    /// Deterministic: the decision is a pure function of `(plan seed,
    /// site, this site's decision index, key)`. Returns `true` when the
    /// fault fires (and counts it against the per-site budget).
    pub fn fire(&self, site: ChaosSite, key: &str) -> bool {
        let rate = self.rate(site);
        let idx = site.index();
        let seq = self.seq[idx].fetch_add(1, Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        if self.plan.max_faults_per_site != 0
            && self.fired[idx].load(Ordering::Relaxed) >= self.plan.max_faults_per_site
        {
            return false;
        }
        let mut h = Fnv1a::new();
        h.update_u64(self.plan.seed);
        h.update_u64(idx as u64);
        h.update_u64(seq);
        h.update(key.as_bytes());
        let fires = h.finish() % 1000 < rate as u64;
        if fires {
            self.fired[idx].fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// How many faults have fired at `site`.
    pub fn fired(&self, site: ChaosSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across every site.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// One-line per-site fired summary (only armed-or-fired sites), for
    /// end-of-campaign reporting.
    pub fn fired_summary(&self) -> String {
        let mut parts = Vec::new();
        for site in ChaosSite::ALL {
            let n = self.fired(site);
            if n > 0 {
                parts.push(format!("{}={n}", site.label()));
            }
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }

    /// Flips one deterministically chosen bit of `bytes` (no-op when
    /// empty) — the read-side corruption mutator.
    pub fn corrupt(&self, key: &str, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let mut h = Fnv1a::new();
        h.update_u64(self.plan.seed);
        h.update(b"corrupt");
        h.update(key.as_bytes());
        let bit = h.finish() as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }

    /// Truncates `bytes` to a deterministically chosen proper prefix
    /// (no-op when empty) — the read-side truncation mutator.
    pub fn truncate(&self, key: &str, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let mut h = Fnv1a::new();
        h.update_u64(self.plan.seed);
        h.update(b"truncate");
        h.update(key.as_bytes());
        let keep = h.finish() as usize % bytes.len();
        bytes.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(injector: &ChaosInjector, site: ChaosSite, n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| injector.fire(site, &format!("k{i}")))
            .collect()
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = ChaosInjector::new(ChaosPlan::aggressive(7));
        let b = ChaosInjector::new(ChaosPlan::aggressive(7));
        let c = ChaosInjector::new(ChaosPlan::aggressive(8));
        let da = decisions(&a, ChaosSite::UnitPanic, 200);
        let db = decisions(&b, ChaosSite::UnitPanic, 200);
        let dc = decisions(&c, ChaosSite::UnitPanic, 200);
        assert_eq!(da, db, "same seed, same decisions");
        assert_ne!(da, dc, "different seed, different decisions");
        assert!(da.iter().any(|&f| f), "an armed site must fire sometimes");
        assert!(
            !da.iter().all(|&f| f),
            "rate < 1000 must also pass sometimes"
        );
    }

    #[test]
    fn quiet_plan_never_fires_and_full_rate_always_fires() {
        let quiet = ChaosInjector::disarmed();
        assert!(!decisions(&quiet, ChaosSite::CacheCorrupt, 100)
            .iter()
            .any(|&f| f));
        assert_eq!(quiet.total_fired(), 0);

        let mut plan = ChaosPlan::quiet(1);
        plan.journal_torn_permille = 1000;
        let always = ChaosInjector::new(plan);
        assert!(decisions(&always, ChaosSite::JournalTorn, 50)
            .iter()
            .all(|&f| f));
        assert_eq!(always.fired(ChaosSite::JournalTorn), 50);
    }

    #[test]
    fn budget_caps_fired_faults_per_site() {
        let mut plan = ChaosPlan::quiet(3);
        plan.unit_transient_permille = 1000;
        plan.max_faults_per_site = 2;
        let injector = ChaosInjector::new(plan);
        let fired = decisions(&injector, ChaosSite::UnitTransient, 20)
            .iter()
            .filter(|&&f| f)
            .count();
        assert_eq!(fired, 2);
        assert_eq!(injector.fired(ChaosSite::UnitTransient), 2);
    }

    #[test]
    fn mutators_are_deterministic_and_bounded() {
        let injector = ChaosInjector::new(ChaosPlan::aggressive(11));
        let original = b"the quick brown fox jumps over the lazy dog".to_vec();

        let mut a = original.clone();
        let mut b = original.clone();
        injector.corrupt("obj", &mut a);
        injector.corrupt("obj", &mut b);
        assert_eq!(a, b, "corruption is deterministic per key");
        assert_ne!(a, original, "corruption changes the bytes");
        assert_eq!(
            a.iter().zip(&original).filter(|(x, y)| x != y).count(),
            1,
            "exactly one byte differs (single bit flip)"
        );

        let mut t = original.clone();
        injector.truncate("obj", &mut t);
        assert!(
            t.len() < original.len(),
            "truncation drops at least one byte"
        );
        assert_eq!(&original[..t.len()], &t[..], "truncation keeps a prefix");

        let mut empty: Vec<u8> = Vec::new();
        injector.corrupt("obj", &mut empty);
        injector.truncate("obj", &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn fired_summary_names_only_fired_sites() {
        let injector = ChaosInjector::disarmed();
        assert_eq!(injector.fired_summary(), "none");
        let mut plan = ChaosPlan::quiet(2);
        plan.cache_corrupt_permille = 1000;
        let armed = ChaosInjector::new(plan);
        armed.fire(ChaosSite::CacheCorrupt, "x");
        assert_eq!(armed.fired_summary(), "cache-corrupt=1");
    }
}
