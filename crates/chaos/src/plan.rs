//! Canonical chaos plans: which infrastructure faults to inject, how
//! often, and from which seed.
//!
//! A [`ChaosPlan`] is the infrastructure mirror of
//! `rsls_faults::FaultSchedule`: a small, canonically serialized value
//! that fully determines every injection decision. Rates are integer
//! **permille** (0–1000), not floats, so the canonical JSON — and hence
//! [`ChaosPlan::content_hash`] — is byte-exact across platforms.

use serde::{Deserialize, Serialize};

/// A seeded, deterministic infrastructure fault-injection plan.
///
/// Each `*_permille` field is the firing rate of one [`crate::ChaosSite`]
/// in events per thousand decisions (0 = site disabled, 1000 = fires on
/// every decision until the budget runs out). The plan is the *complete*
/// source of injection randomness: two processes holding the same plan
/// make identical decisions at identical decision indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed folded into every injection decision.
    pub seed: u64,
    /// Transient `Interrupted`-style errors on cache object reads.
    pub cache_read_error_permille: u32,
    /// Bit-corruption of cache object bytes as they are read.
    pub cache_corrupt_permille: u32,
    /// Truncation of cache object bytes as they are read.
    pub cache_truncate_permille: u32,
    /// Torn (partial, failing) cache object writes.
    pub cache_write_torn_permille: u32,
    /// Torn trailing journal appends (partial line, no newline).
    pub journal_torn_permille: u32,
    /// Injected worker panics at unit execution.
    pub unit_panic_permille: u32,
    /// Injected transient unit failures (recoverable by retry).
    pub unit_transient_permille: u32,
    /// Connection reset before the client reads the response.
    pub client_reset_permille: u32,
    /// Garbled HTTP status line on the client connection.
    pub client_garble_permille: u32,
    /// Artificial delay on the client connection.
    pub client_delay_permille: u32,
    /// Dropped connection right after the server accepts it.
    pub server_accept_permille: u32,
    /// Server-side connection teardown while reading a request.
    pub server_read_permille: u32,
    /// Torn server response (connection closed mid-write).
    pub server_write_permille: u32,
    /// Torn checkpoint-file writes inside the solver driver.
    pub ckpt_write_torn_permille: u32,
    /// Transient errors reading a checkpoint file back at recovery.
    pub ckpt_read_error_permille: u32,
    /// Per-site cap on fired faults (0 = unlimited).
    pub max_faults_per_site: u64,
}

impl ChaosPlan {
    /// A plan that never fires — the fault-free baseline.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            cache_read_error_permille: 0,
            cache_corrupt_permille: 0,
            cache_truncate_permille: 0,
            cache_write_torn_permille: 0,
            journal_torn_permille: 0,
            unit_panic_permille: 0,
            unit_transient_permille: 0,
            client_reset_permille: 0,
            client_garble_permille: 0,
            client_delay_permille: 0,
            server_accept_permille: 0,
            server_read_permille: 0,
            server_write_permille: 0,
            ckpt_write_torn_permille: 0,
            ckpt_read_error_permille: 0,
            max_faults_per_site: 0,
        }
    }

    /// The aggressive soak plan: every site armed at rates high enough
    /// that a small campaign provably hits faults, but low enough that
    /// bounded retries always recover (the chaos-soak CI job asserts
    /// byte-identical reports under this plan).
    pub fn aggressive(seed: u64) -> Self {
        ChaosPlan {
            seed,
            cache_read_error_permille: 300,
            cache_corrupt_permille: 350,
            cache_truncate_permille: 200,
            cache_write_torn_permille: 250,
            journal_torn_permille: 300,
            unit_panic_permille: 150,
            unit_transient_permille: 300,
            client_reset_permille: 300,
            client_garble_permille: 250,
            client_delay_permille: 200,
            // Server-side connection faults stay moderate: every firing
            // costs the client a reconnect-and-retry, and the soak must
            // still finish with a fully populated store.
            server_accept_permille: 60,
            server_read_permille: 80,
            server_write_permille: 80,
            // Checkpoint-file faults fire inside the solver driver's
            // hardened store, which absorbs them with bounded retries;
            // reports must come out byte-identical regardless.
            ckpt_write_torn_permille: 150,
            ckpt_read_error_permille: 150,
            max_faults_per_site: 0,
        }
    }

    /// Canonical JSON serialization (field order is declaration order,
    /// integers only — byte-stable across runs and platforms).
    pub fn canonical_json(&self) -> String {
        // rsls-lint: allow(no-unwrap) -- serializing a plain integer struct cannot fail
        serde_json::to_string(self).expect("ChaosPlan serialization cannot fail")
    }

    /// Stable content address of this plan: SHA-256 of its canonical
    /// JSON, as lowercase hex (mirrors `UnitSpec::content_hash`).
    pub fn content_hash(&self) -> String {
        rsls_core::sha256_hex(self.canonical_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_round_trips() {
        let plan = ChaosPlan::aggressive(42);
        let json = plan.canonical_json();
        let back: ChaosPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.canonical_json(), json, "re-serialization is stable");
    }

    #[test]
    fn content_hash_sees_every_field() {
        let base = ChaosPlan::aggressive(1).content_hash();
        assert_eq!(base.len(), 64);
        let mut p = ChaosPlan::aggressive(1);
        p.seed = 2;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.unit_panic_permille += 1;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.max_faults_per_site = 7;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.server_accept_permille += 1;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.server_read_permille += 1;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.server_write_permille += 1;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.ckpt_write_torn_permille += 1;
        assert_ne!(p.content_hash(), base);
        let mut p = ChaosPlan::aggressive(1);
        p.ckpt_read_error_permille += 1;
        assert_ne!(p.content_hash(), base);
    }

    #[test]
    fn quiet_plan_is_all_zero_rates() {
        let p = ChaosPlan::quiet(9);
        assert_eq!(p.cache_read_error_permille, 0);
        assert_eq!(p.unit_panic_permille, 0);
        assert_eq!(p.client_reset_permille, 0);
        assert_eq!(p.seed, 9);
    }
}
