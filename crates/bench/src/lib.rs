#![warn(missing_docs)]
//! Shared workloads for the criterion benches.
//!
//! The benches regenerate every table and figure of the paper at a
//! smoke scale (criterion needs many repetitions, so each measured body
//! is a scaled-down — but structurally identical — version of the full
//! experiment run by `rsls-run`).

use rsls_sparse::generators::{banded_spd, stencil_2d, BandedConfig};
use rsls_sparse::CsrMatrix;

/// A small regular SPD system exercising the differentiating recovery
/// regime (thin band, delocalized spectrum).
pub fn small_regular() -> (CsrMatrix, Vec<f64>) {
    let a = banded_spd(&BandedConfig::regular(1200, 7, 5e-4, 99).with_band_decay(0.3));
    let b = rhs(&a);
    (a, b)
}

/// A small irregular SPD system (long-range couplings).
pub fn small_irregular() -> (CsrMatrix, Vec<f64>) {
    let a =
        banded_spd(&BandedConfig::irregular(1200, 13, 1e-4, 0.35, 99).with_scaling_decades(1.0));
    let b = rhs(&a);
    (a, b)
}

/// A small 5-point stencil system.
pub fn small_stencil() -> (CsrMatrix, Vec<f64>) {
    let a = stencil_2d(40, 40);
    let b = rhs(&a);
    (a, b)
}

/// Right-hand side with the all-ones solution.
pub fn rhs(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_well_formed() {
        for (a, b) in [small_regular(), small_irregular(), small_stencil()] {
            assert_eq!(a.nrows(), b.len());
            assert!(a.is_symmetric(1e-9));
        }
    }
}
