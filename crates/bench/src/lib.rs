#![warn(missing_docs)]
//! Shared workloads for the criterion benches and the `rsls-bench`
//! regression gate.
//!
//! The benches regenerate every table and figure of the paper at a
//! smoke scale (criterion needs many repetitions, so each measured body
//! is a scaled-down — but structurally identical — version of the full
//! experiment run by `rsls-run`).
//!
//! The `rsls-bench` binary (see `src/bin/rsls-bench.rs`) measures the
//! hot-path counters — the threads × format SpMV matrix (CSR and
//! SELL-C-σ, serial and chunk-parallel, under 1/2/4-thread pools),
//! kernel speedups, solver allocation counts, artifact-cache hit
//! rates — into a canonical JSON report (`BENCH_PR10.json`), and
//! [`gate`] compares such a report against the committed baseline:
//! deterministic counters must stay within 20% of the baseline,
//! timing-derived counters are additionally capped by conservative
//! machine-portable floors so a slow CI runner cannot flake the job.
//! Parallel cells are never silently skipped — a cell the baseline
//! measured must be present and non-degraded in the current report.

use rsls_sparse::generators::{banded_spd, stencil_2d, BandedConfig};
use rsls_sparse::CsrMatrix;

/// A small regular SPD system exercising the differentiating recovery
/// regime (thin band, delocalized spectrum).
pub fn small_regular() -> (CsrMatrix, Vec<f64>) {
    let a = banded_spd(&BandedConfig::regular(1200, 7, 5e-4, 99).with_band_decay(0.3));
    let b = rhs(&a);
    (a, b)
}

/// A small irregular SPD system (long-range couplings).
pub fn small_irregular() -> (CsrMatrix, Vec<f64>) {
    let a =
        banded_spd(&BandedConfig::irregular(1200, 13, 1e-4, 0.35, 99).with_scaling_decades(1.0));
    let b = rhs(&a);
    (a, b)
}

/// A small 5-point stencil system.
pub fn small_stencil() -> (CsrMatrix, Vec<f64>) {
    let a = stencil_2d(40, 40);
    let b = rhs(&a);
    (a, b)
}

/// Right-hand side with the all-ones solution.
pub fn rhs(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    b
}

/// A large SPD stencil system whose nnz clears the parallel-SpMV
/// threshold — the kernel-bench operand.
pub fn large_stencil() -> (CsrMatrix, Vec<f64>) {
    let a = stencil_2d(320, 320);
    let b = rhs(&a);
    (a, b)
}

/// Best-of-`reps` wall time of `f`, in seconds.
///
/// Minimum (not mean) over repetitions: the minimum is the run least
/// disturbed by the machine, which is the stable statistic for a
/// regression gate.
pub fn time_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // rsls-lint: allow(wall-clock) -- benchmark timing is the one legitimate wall-clock consumer; results are reported, never fed back into experiment outputs
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One cell of the threads × format SpMV matrix: one kernel (a storage
/// format, serial or parallel) timed under one requested thread budget.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelCell {
    /// Storage format the kernel ran on (`"csr"` or `"sell"`).
    pub format: String,
    /// Whether the chunk-parallel kernel was measured (serial otherwise).
    pub parallel: bool,
    /// Worker threads requested from the pool (1 for serial cells).
    pub threads: usize,
    /// Threads the machine could actually supply
    /// (`rayon::effective_num_threads()` inside the pool): when this is
    /// below `threads`, the parallel kernel delegated to the serial one
    /// and the cell measures a degraded configuration.
    pub effective_threads: usize,
    /// Throughput (flops-per-second proxy), in Mflop/s.
    pub mflops: f64,
    /// Time of the serial CSR reference divided by this cell's time.
    pub speedup_vs_serial_csr: f64,
}

impl KernelCell {
    /// Whether the machine supplied fewer threads than requested (the
    /// parallel kernel then serial-delegated, so the cell is measured
    /// but does not exercise real parallelism).
    pub fn degraded(&self) -> bool {
        self.parallel && self.effective_threads < self.threads
    }

    /// Stable gate/display label, e.g. `csr.par4` or `sell.ser1`.
    pub fn label(&self) -> String {
        let kind = if self.parallel { "par" } else { "ser" };
        format!("{}.{kind}{}", self.format, self.threads)
    }
}

/// Kernel-level measurements.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct KernelBench {
    /// Worker threads the ambient pool reported (`RAYON_NUM_THREADS`
    /// pins this to 4 in CI regardless of runner size).
    pub threads: usize,
    /// Threads the machine could actually supply for the parallel
    /// measurements (`min(threads, available cores)`).
    pub effective_threads: usize,
    /// Serial SpMV throughput (flops-per-second proxy), in Mflop/s.
    pub spmv_serial_mflops: f64,
    /// Chunked parallel SpMV throughput, in Mflop/s.
    pub par_spmv_mflops: f64,
    /// `par_spmv_mflops / spmv_serial_mflops`.
    pub par_spmv_speedup: f64,
    /// Fused `axpy_dot` time relative to separate `axpy` + `dot`
    /// (&gt; 1 means the fused kernel is faster).
    pub axpy_dot_speedup: f64,
    /// The threads × format SpMV matrix (v2 reports; empty in v1).
    pub matrix: Vec<KernelCell>,
}

// Hand-written (not derived) so v1 baselines stay loadable: the
// vendored serde's derive errors on any missing field, and v1 reports
// predate `effective_threads` and the cell matrix.
impl serde::Deserialize for KernelBench {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let threads: usize = serde::helpers::field(v, "threads")?;
        Ok(KernelBench {
            threads,
            effective_threads: match v.get("effective_threads") {
                Some(e) => <usize as serde::Deserialize>::from_value(e)?,
                None => threads,
            },
            spmv_serial_mflops: serde::helpers::field(v, "spmv_serial_mflops")?,
            par_spmv_mflops: serde::helpers::field(v, "par_spmv_mflops")?,
            par_spmv_speedup: serde::helpers::field(v, "par_spmv_speedup")?,
            axpy_dot_speedup: serde::helpers::field(v, "axpy_dot_speedup")?,
            matrix: match v.get("matrix") {
                Some(m) => <Vec<KernelCell> as serde::Deserialize>::from_value(m)?,
                None => Vec::new(),
            },
        })
    }
}

impl KernelBench {
    /// The matrix cell for `(format, parallel, threads)`, if measured.
    pub fn cell(&self, format: &str, parallel: bool, threads: usize) -> Option<&KernelCell> {
        self.matrix
            .iter()
            .find(|c| c.format == format && c.parallel == parallel && c.threads == threads)
    }
}

/// Allocation counters over fixed solver workloads (counted by the
/// `rsls-bench` binary's instrumented global allocator — exact, not
/// timed, so gated tightly).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct AllocBench {
    /// Heap allocations across 100 `Cg::step` calls (post-setup).
    pub cg_steps_allocs: u64,
    /// Allocations of one warm-cache `li_with` reconstruction.
    pub li_warm_allocs: u64,
    /// Allocations of one warm-cache `lsi_with` reconstruction.
    pub lsi_warm_allocs: u64,
    /// Allocations across 100 warm `JacobiPcg::step` calls on a
    /// SELL-selected operator (steady state must be allocation-free).
    pub jacobi_warm_allocs: u64,
    /// Allocations across 100 warm `Ic0Pcg::step` calls (factor and
    /// workspace preallocated; steady state must be allocation-free).
    pub ic0_warm_allocs: u64,
}

// Hand-written for the same v1-compatibility reason as [`KernelBench`]:
// the PCG counters default to 0 when a pre-matrix baseline omits them,
// which keeps the zero-alloc requirement intact (the gate then allows
// at most the +2 slack).
impl serde::Deserialize for AllocBench {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let opt = |name: &str| -> Result<u64, serde::DeError> {
            match v.get(name) {
                Some(inner) => <u64 as serde::Deserialize>::from_value(inner),
                None => Ok(0),
            }
        };
        Ok(AllocBench {
            cg_steps_allocs: serde::helpers::field(v, "cg_steps_allocs")?,
            li_warm_allocs: serde::helpers::field(v, "li_warm_allocs")?,
            lsi_warm_allocs: serde::helpers::field(v, "lsi_warm_allocs")?,
            jacobi_warm_allocs: opt("jacobi_warm_allocs")?,
            ic0_warm_allocs: opt("ic0_warm_allocs")?,
        })
    }
}

/// Artifact-cache effectiveness over a deterministic mini-campaign.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheBench {
    /// Sparse artifact-cache hit rate across repeated reconstructions.
    pub artifact_hit_rate: f64,
    /// Workload-interner hit rate across a suite sweep.
    pub workload_hit_rate: f64,
    /// Cold/warm wall-clock ratio of acquiring the suite workloads
    /// (the `rsls-run --all` set), second pass served by the interner.
    pub suite_warm_speedup: f64,
}

/// End-to-end driver measurements.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct E2eBench {
    /// Wall seconds of the faulty multi-scheme pass with cold caches.
    pub campaign_cold_s: f64,
    /// Wall seconds of the identical pass with warm caches.
    pub campaign_warm_s: f64,
    /// `campaign_cold_s / campaign_warm_s`.
    pub campaign_warm_speedup: f64,
}

/// The full `rsls-bench` report (`BENCH_PR10.json`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Report schema version.
    pub version: u32,
    /// Kernel measurements.
    pub kernel: KernelBench,
    /// Allocation counters.
    pub alloc: AllocBench,
    /// Cache effectiveness.
    pub cache: CacheBench,
    /// End-to-end measurements.
    pub e2e: E2eBench,
}

/// One gate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// Counter name.
    pub name: String,
    /// Measured value.
    pub current: f64,
    /// Value required to pass (already direction- and floor-adjusted).
    pub required: f64,
    /// Whether the counter passed (or was skipped).
    pub ok: bool,
    /// Why the gate was skipped, when it was.
    pub skipped: Option<&'static str>,
}

/// Regression tolerance: a counter may degrade 20% vs the baseline.
pub const GATE_TOLERANCE: f64 = 0.20;

/// Speedup floor for parallel matrix cells: below this, even a
/// serial-delegating parallel kernel has regressed (it should time
/// within noise of the serial reference).
pub const PAR_CELL_FLOOR: f64 = 0.9;

/// Speedup floor for the serial SELL cell: the format must actually be
/// faster than serial CSR on the suite model matrix, machine-portably.
pub const SELL_SERIAL_FLOOR: f64 = 1.05;

/// Compares `current` against the committed `baseline`.
///
/// Deterministic counters (allocations, hit rates) gate at ±20% of the
/// baseline. Timing-derived speedups gate at `min(0.8 × baseline,
/// floor)` — the floor keeps the requirement machine-portable, the
/// baseline term catches real regressions on comparable machines.
///
/// Parallel-kernel gates are never silently skipped: a current report
/// measured below 4 worker threads **fails** the aggregate
/// `kernel.par_spmv_speedup` gate unless the baseline was also measured
/// below 4 threads, and a threads × format matrix cell that the
/// baseline measured fails when the current report dropped it or
/// degraded it (serial-delegated under a thread budget the baseline
/// machine could actually supply).
pub fn gate(current: &BenchReport, baseline: &BenchReport) -> Vec<GateResult> {
    let slack = 1.0 - GATE_TOLERANCE;
    let mut out = Vec::new();

    // Lower-is-better exact counters: allow 20% growth (never fewer
    // than 2 extra allocations, so a tiny baseline isn't a hair trigger).
    let mut alloc_gate = |name: &'static str, cur: u64, base: u64| {
        let required = (base as f64 * (1.0 + GATE_TOLERANCE)).max(base as f64 + 2.0);
        out.push(GateResult {
            name: name.to_string(),
            current: cur as f64,
            required,
            ok: (cur as f64) <= required,
            skipped: None,
        });
    };
    alloc_gate(
        "alloc.cg_steps_allocs",
        current.alloc.cg_steps_allocs,
        baseline.alloc.cg_steps_allocs,
    );
    alloc_gate(
        "alloc.li_warm_allocs",
        current.alloc.li_warm_allocs,
        baseline.alloc.li_warm_allocs,
    );
    alloc_gate(
        "alloc.lsi_warm_allocs",
        current.alloc.lsi_warm_allocs,
        baseline.alloc.lsi_warm_allocs,
    );
    alloc_gate(
        "alloc.jacobi_warm_allocs",
        current.alloc.jacobi_warm_allocs,
        baseline.alloc.jacobi_warm_allocs,
    );
    alloc_gate(
        "alloc.ic0_warm_allocs",
        current.alloc.ic0_warm_allocs,
        baseline.alloc.ic0_warm_allocs,
    );

    // Higher-is-better counters. `floor` caps the requirement so slow CI
    // hardware cannot flake the gate; `None` gates purely vs baseline.
    fn higher_gate_into(
        out: &mut Vec<GateResult>,
        name: &'static str,
        cur: f64,
        base: f64,
        floor: Option<f64>,
        skip: Option<&'static str>,
    ) {
        let mut required = base * (1.0 - GATE_TOLERANCE);
        if let Some(f) = floor {
            required = required.min(f);
        }
        out.push(GateResult {
            name: name.to_string(),
            current: cur,
            required,
            ok: skip.is_some() || cur >= required,
            skipped: skip,
        });
    }
    higher_gate_into(
        &mut out,
        "cache.artifact_hit_rate",
        current.cache.artifact_hit_rate,
        baseline.cache.artifact_hit_rate,
        None,
        None,
    );
    higher_gate_into(
        &mut out,
        "cache.workload_hit_rate",
        current.cache.workload_hit_rate,
        baseline.cache.workload_hit_rate,
        None,
        None,
    );
    higher_gate_into(
        &mut out,
        "cache.suite_warm_speedup",
        current.cache.suite_warm_speedup,
        baseline.cache.suite_warm_speedup,
        Some(2.0),
        None,
    );
    // Aggregate parallel-SpMV gate. Under 4 worker threads the
    // measurement is not comparable — but that is a FAILURE (a CI
    // misconfiguration, e.g. a dropped RAYON_NUM_THREADS pin) unless the
    // baseline itself was measured under 4 threads.
    let few_threads = current.kernel.threads < 4;
    let baseline_few = baseline.kernel.threads < 4;
    if few_threads && !baseline_few {
        out.push(GateResult {
            name: "kernel.par_spmv_speedup".to_string(),
            current: current.kernel.par_spmv_speedup,
            required: baseline.kernel.par_spmv_speedup * slack,
            ok: false,
            skipped: None,
        });
    } else {
        higher_gate_into(
            &mut out,
            "kernel.par_spmv_speedup",
            current.kernel.par_spmv_speedup,
            baseline.kernel.par_spmv_speedup,
            Some(1.2),
            (few_threads && baseline_few).then_some("baseline also under 4 worker threads"),
        );
    }
    higher_gate_into(
        &mut out,
        "kernel.axpy_dot_speedup",
        current.kernel.axpy_dot_speedup,
        baseline.kernel.axpy_dot_speedup,
        Some(0.95),
        None,
    );
    higher_gate_into(
        &mut out,
        "e2e.campaign_warm_speedup",
        current.e2e.campaign_warm_speedup,
        baseline.e2e.campaign_warm_speedup,
        Some(1.0),
        None,
    );

    // Per-cell gates over the threads × format matrix: every cell the
    // baseline measured must be present, non-degraded (unless the
    // baseline's machine could not supply the threads either), and
    // within tolerance of the baseline speedup. A missing or
    // newly-degraded cell is a hard failure, never a skip.
    for b in &baseline.kernel.matrix {
        let name = format!("kernel.cell[{}]", b.label());
        let floor = match (b.parallel, b.format.as_str()) {
            (true, _) => PAR_CELL_FLOOR,
            (false, "sell") => SELL_SERIAL_FLOOR,
            (false, _) => PAR_CELL_FLOOR,
        };
        let required = (b.speedup_vs_serial_csr * slack).min(floor);
        let Some(c) = current.kernel.cell(&b.format, b.parallel, b.threads) else {
            out.push(GateResult {
                name,
                current: 0.0,
                required,
                ok: false,
                skipped: None,
            });
            continue;
        };
        let newly_degraded = c.degraded() && !b.degraded();
        out.push(GateResult {
            name,
            current: c.speedup_vs_serial_csr,
            required,
            ok: !newly_degraded && c.speedup_vs_serial_csr >= required,
            skipped: None,
        });
    }
    out
}

/// Latency quantiles from one `rsls-load` soak, in microseconds
/// (log-bucket upper bounds, so values are deterministic for a given
/// set of observations).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeLatency {
    /// Median request latency, µs.
    pub p50_us: u64,
    /// 99th-percentile request latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile request latency, µs.
    pub p999_us: u64,
    /// Worst observed request latency, µs.
    pub max_us: u64,
    /// Mean request latency, µs.
    pub mean_us: u64,
}

/// The `rsls-load` soak report (`BENCH_SERVE.json`): one sustained
/// keep-alive campaign against the event-loop server.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeBenchReport {
    /// Report schema version.
    pub version: u32,
    /// Worker threads available to the soak harness.
    pub threads: usize,
    /// Requests completed.
    pub requests: u64,
    /// Persistent connections driven.
    pub connections: usize,
    /// Framing/transport violations observed — gated at exactly zero.
    pub protocol_errors: u64,
    /// Sustained throughput, requests per second.
    pub throughput_rps: f64,
    /// Request-latency quantiles.
    pub latency: ServeLatency,
}

/// Compares a soak report against the committed `BENCH_SERVE.json`.
///
/// `protocol_errors` gates at exactly zero — a torn response or framing
/// violation is a correctness bug, not a performance regression, so it
/// is never skipped and has no tolerance. Throughput gates like the
/// other timing counters (±20% with a machine-portable floor).
/// Latencies are lower-is-better: the requirement is
/// `max(1.2 × baseline, floor)` — the floor keeps a fast baseline from
/// turning scheduler jitter on a loaded CI runner into a failure.
/// Everything timing-derived is skipped below 4 worker threads;
/// `protocol_errors` still gates.
pub fn serve_gate(current: &ServeBenchReport, baseline: &ServeBenchReport) -> Vec<GateResult> {
    let mut out = Vec::new();
    out.push(GateResult {
        name: "serve.protocol_errors".to_string(),
        current: current.protocol_errors as f64,
        required: 0.0,
        ok: current.protocol_errors == 0,
        skipped: None,
    });
    let few_threads = current.threads < 4;
    let skip = few_threads.then_some("fewer than 4 worker threads");
    let throughput_required = (baseline.throughput_rps * (1.0 - GATE_TOLERANCE)).min(200.0);
    out.push(GateResult {
        name: "serve.throughput_rps".to_string(),
        current: current.throughput_rps,
        required: throughput_required,
        ok: skip.is_some() || current.throughput_rps >= throughput_required,
        skipped: skip,
    });
    // Lower-is-better latency gates with absolute floors (µs): below
    // the floor, differences are scheduler noise, not regressions.
    let mut latency_gate = |name: &'static str, cur: u64, base: u64, floor: u64| {
        let required = (base as f64 * (1.0 + GATE_TOLERANCE)).max(floor as f64);
        out.push(GateResult {
            name: name.to_string(),
            current: cur as f64,
            required,
            ok: skip.is_some() || (cur as f64) <= required,
            skipped: skip,
        });
    };
    latency_gate(
        "serve.latency.p50_us",
        current.latency.p50_us,
        baseline.latency.p50_us,
        5_000,
    );
    latency_gate(
        "serve.latency.p99_us",
        current.latency.p99_us,
        baseline.latency.p99_us,
        50_000,
    );
    latency_gate(
        "serve.latency.p999_us",
        current.latency.p999_us,
        baseline.latency.p999_us,
        200_000,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_well_formed() {
        for (a, b) in [small_regular(), small_irregular(), small_stencil()] {
            assert_eq!(a.nrows(), b.len());
            assert!(a.is_symmetric(1e-9));
        }
    }

    #[test]
    fn large_stencil_clears_the_parallel_threshold() {
        let (a, _) = large_stencil();
        assert!(a.nnz() >= rsls_sparse::csr::PAR_SPMV_NNZ_DEFAULT);
    }

    fn cell(format: &str, parallel: bool, threads: usize, speedup: f64) -> KernelCell {
        KernelCell {
            format: format.to_string(),
            parallel,
            threads,
            effective_threads: threads,
            mflops: 2000.0 * speedup,
            speedup_vs_serial_csr: speedup,
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            version: 2,
            kernel: KernelBench {
                threads: 8,
                effective_threads: 8,
                spmv_serial_mflops: 2000.0,
                par_spmv_mflops: 6000.0,
                par_spmv_speedup: 3.0,
                axpy_dot_speedup: 1.1,
                matrix: vec![
                    cell("csr", false, 1, 1.0),
                    cell("sell", false, 1, 1.5),
                    cell("csr", true, 4, 3.0),
                    cell("sell", true, 4, 3.5),
                ],
            },
            alloc: AllocBench {
                cg_steps_allocs: 0,
                li_warm_allocs: 8,
                lsi_warm_allocs: 20,
                jacobi_warm_allocs: 0,
                ic0_warm_allocs: 0,
            },
            cache: CacheBench {
                artifact_hit_rate: 0.9,
                workload_hit_rate: 0.85,
                suite_warm_speedup: 50.0,
            },
            e2e: E2eBench {
                campaign_cold_s: 2.0,
                campaign_warm_s: 1.0,
                campaign_warm_speedup: 2.0,
            },
        }
    }

    #[test]
    fn identical_reports_pass_every_gate() {
        let r = report();
        assert!(gate(&r, &r).iter().all(|g| g.ok), "{:?}", gate(&r, &r));
    }

    #[test]
    fn alloc_regressions_beyond_tolerance_fail() {
        let base = report();
        let mut cur = base.clone();
        cur.alloc.lsi_warm_allocs = 40; // 2x the baseline's 20
        let gates = gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "alloc.lsi_warm_allocs")
            .unwrap();
        assert!(!g.ok);
    }

    #[test]
    fn hit_rate_collapse_fails_and_floors_cap_timing_gates() {
        let base = report();
        let mut cur = base.clone();
        cur.cache.artifact_hit_rate = 0.5; // down from 0.9: > 20% regression
        cur.cache.suite_warm_speedup = 3.0; // way below baseline 50, above floor 2.0
        let gates = gate(&cur, &base);
        assert!(
            !gates
                .iter()
                .find(|g| g.name == "cache.artifact_hit_rate")
                .unwrap()
                .ok
        );
        assert!(
            gates
                .iter()
                .find(|g| g.name == "cache.suite_warm_speedup")
                .unwrap()
                .ok
        );
    }

    #[test]
    fn under_threaded_parallel_gate_fails_unless_baseline_also_skipped() {
        // Baseline measured at 4+ threads, current at 2: that is a CI
        // misconfiguration (lost RAYON_NUM_THREADS pin), not a skip.
        let base = report();
        let mut cur = base.clone();
        cur.kernel.threads = 2;
        cur.kernel.par_spmv_speedup = 0.7;
        let gates = gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.par_spmv_speedup")
            .unwrap();
        assert!(!g.ok && g.skipped.is_none());

        // Both under 4 threads: the measurements agree in kind, skip.
        let mut small_base = base.clone();
        small_base.kernel.threads = 2;
        let gates = gate(&cur, &small_base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.par_spmv_speedup")
            .unwrap();
        assert!(g.ok && g.skipped.is_some());
    }

    #[test]
    fn missing_matrix_cell_fails_when_baseline_measured_it() {
        let base = report();
        let mut cur = base.clone();
        cur.kernel
            .matrix
            .retain(|c| !(c.format == "sell" && c.parallel));
        let gates = gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.cell[sell.par4]")
            .unwrap();
        assert!(!g.ok && g.skipped.is_none());
    }

    #[test]
    fn newly_degraded_cell_fails_but_matching_degradation_passes() {
        let base = report();
        // Current machine could only supply 1 thread for the 4-thread
        // cell: degraded, while the baseline measured real parallelism.
        let mut cur = base.clone();
        let i = cur
            .kernel
            .matrix
            .iter()
            .position(|c| c.format == "csr" && c.parallel)
            .unwrap();
        cur.kernel.matrix[i].effective_threads = 1;
        cur.kernel.matrix[i].speedup_vs_serial_csr = 1.0;
        let gates = gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.cell[csr.par4]")
            .unwrap();
        assert!(!g.ok, "degrading a cell the baseline measured must fail");

        // When the baseline cell was degraded too (both measured on a
        // small machine), a near-1.0 serial-delegated ratio passes.
        let mut small_base = base.clone();
        let j = small_base
            .kernel
            .matrix
            .iter()
            .position(|c| c.format == "csr" && c.parallel)
            .unwrap();
        small_base.kernel.matrix[j].effective_threads = 1;
        small_base.kernel.matrix[j].speedup_vs_serial_csr = 1.0;
        let gates = gate(&cur, &small_base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.cell[csr.par4]")
            .unwrap();
        assert!(g.ok, "matching degradation gates on the relaxed floor");
    }

    #[test]
    fn sell_serial_cell_gates_against_its_floor() {
        let base = report();
        let mut cur = base.clone();
        let i = cur
            .kernel
            .matrix
            .iter()
            .position(|c| c.format == "sell" && !c.parallel)
            .unwrap();
        cur.kernel.matrix[i].speedup_vs_serial_csr = 0.95; // slower than CSR
        let gates = gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "kernel.cell[sell.ser1]")
            .unwrap();
        assert!(!g.ok, "SELL losing to serial CSR must fail the gate");
        assert!((g.required - SELL_SERIAL_FLOOR).abs() < 1e-12);
    }

    #[test]
    fn v1_reports_without_matrix_or_pcg_counters_still_load() {
        // The committed BENCH_PR5.json predates the threads × format
        // matrix and the PCG alloc counters; it must stay comparable.
        let v1 = r#"{
            "version": 1,
            "kernel": {
                "threads": 1,
                "spmv_serial_mflops": 500.0,
                "par_spmv_mflops": 420.0,
                "par_spmv_speedup": 0.84,
                "axpy_dot_speedup": 1.05
            },
            "alloc": {"cg_steps_allocs": 0, "li_warm_allocs": 8, "lsi_warm_allocs": 20},
            "cache": {"artifact_hit_rate": 0.9, "workload_hit_rate": 0.85, "suite_warm_speedup": 50.0},
            "e2e": {"campaign_cold_s": 2.0, "campaign_warm_s": 1.0, "campaign_warm_speedup": 2.0}
        }"#;
        let base: BenchReport = serde_json::from_str(v1).unwrap();
        assert_eq!(base.kernel.matrix, Vec::new());
        assert_eq!(base.kernel.effective_threads, base.kernel.threads);
        assert_eq!(base.alloc.jacobi_warm_allocs, 0);
        assert_eq!(base.alloc.ic0_warm_allocs, 0);
        // A v2 report gates cleanly against it: the v1 baseline has no
        // matrix cells to demand, and its sub-4-thread parallel
        // measurement licenses a skip on equally small machines only.
        let mut cur = report();
        cur.kernel.threads = 1;
        let gates = gate(&cur, &base);
        assert!(gates.iter().all(|g| g.ok), "{gates:?}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    fn serve_report() -> ServeBenchReport {
        ServeBenchReport {
            version: 1,
            threads: 8,
            requests: 100_000,
            connections: 32,
            protocol_errors: 0,
            throughput_rps: 5_000.0,
            latency: ServeLatency {
                p50_us: 800,
                p99_us: 9_000,
                p999_us: 40_000,
                max_us: 120_000,
                mean_us: 1_500,
            },
        }
    }

    #[test]
    fn identical_serve_reports_pass_every_gate() {
        let r = serve_report();
        let gates = serve_gate(&r, &r);
        assert!(gates.iter().all(|g| g.ok), "{gates:?}");
    }

    #[test]
    fn protocol_errors_fail_hard_even_on_small_machines() {
        let base = serve_report();
        let mut cur = base;
        cur.threads = 2; // timing gates skip...
        cur.protocol_errors = 1; // ...but correctness never does
        let gates = serve_gate(&cur, &base);
        let g = gates
            .iter()
            .find(|g| g.name == "serve.protocol_errors")
            .unwrap();
        assert!(!g.ok && g.skipped.is_none());
        assert!(
            gates
                .iter()
                .filter(|g| g.name != "serve.protocol_errors")
                .all(|g| g.ok && g.skipped.is_some()),
            "timing gates skip under 4 threads"
        );
    }

    #[test]
    fn latency_floors_absorb_fast_baselines_but_catch_regressions() {
        let base = serve_report();
        let mut cur = base;
        // Baseline p50 is 800µs; 4ms is under the 5ms floor → still ok.
        cur.latency.p50_us = 4_000;
        // Baseline p999 is 40ms; 400ms blows past the 200ms floor.
        cur.latency.p999_us = 400_000;
        let gates = serve_gate(&cur, &base);
        assert!(
            gates
                .iter()
                .find(|g| g.name == "serve.latency.p50_us")
                .unwrap()
                .ok
        );
        assert!(
            !gates
                .iter()
                .find(|g| g.name == "serve.latency.p999_us")
                .unwrap()
                .ok
        );
    }

    #[test]
    fn throughput_collapse_fails_the_serve_gate() {
        let base = serve_report();
        let mut cur = base;
        cur.throughput_rps = 100.0; // below both 0.8×baseline and the floor
        let gates = serve_gate(&cur, &base);
        assert!(
            !gates
                .iter()
                .find(|g| g.name == "serve.throughput_rps")
                .unwrap()
                .ok
        );
    }

    #[test]
    fn serve_report_roundtrips_through_json() {
        let r = serve_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
