//! `rsls-bench` — deterministic hot-path measurement and regression gate.
//!
//! Two modes:
//!
//! ```text
//! rsls-bench run [--out PATH]                # measure, write a BenchReport JSON
//! rsls-bench compare CURRENT BASELINE       # gate CURRENT against BASELINE
//! rsls-bench compare-serve CURRENT BASELINE # gate rsls-load soak reports
//! ```
//!
//! `run` measures the PR's hot paths with fixed workloads and iteration
//! counts: the threads × format SpMV matrix (serial and chunk-parallel
//! CSR and SELL-C-σ under 1/2/4-thread pools), the fused `axpy_dot`
//! kernel, solver allocation counts via an instrumented global
//! allocator, artifact-cache hit rates, and a cold-vs-warm faulty
//! mini-campaign. `compare` applies [`rsls_bench::gate`] and exits
//! nonzero when any counter regresses beyond tolerance, printing one
//! line per gate so CI logs show exactly which counter moved.
//!
//! Allocation counters are exact and machine-independent; timings use
//! best-of-N wall clock and are gated against conservative floors, never
//! raw seconds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rsls_bench::{
    gate, large_stencil, rhs, serve_gate, small_regular, time_seconds, AllocBench, BenchReport,
    CacheBench, E2eBench, GateResult, KernelBench, KernelCell, ServeBenchReport,
};
use rsls_core::construction::{li_with, lsi_with, ConstructionMethod, Workspace};
use rsls_core::Scheme;
use rsls_experiments::runners::{evenly_spaced_faults, workload, SchemeRun};
use rsls_experiments::{Scale, SUITE};
use rsls_solvers::{Cg, Ic0Pcg, JacobiPcg};
use rsls_sparse::artifacts::MatrixKey;
use rsls_sparse::csr::PAR_SPMV_CHUNK_ROWS;
use rsls_sparse::generators::stencil_2d;
use rsls_sparse::sell::{SELL_DEFAULT_C, SELL_DEFAULT_SIGMA};
use rsls_sparse::vector::{axpy, axpy_dot, dot};
use rsls_sparse::{CsrMatrix, Format, Partition, SellMatrix};

/// Schema version of the emitted report. Version 2 adds the
/// threads × format SpMV matrix and the PCG warm-allocation counters;
/// v1 baselines still load (missing sections default to empty/zero).
const REPORT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// Counting allocator: exact, deterministic allocation counters for the
// zero-alloc hot-path claims. Lives in the binary (the library crates
// deny unsafe code); counted sections run single-threaded.
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed while running `f`.
fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

// ---------------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------------

fn measure_alloc() -> AllocBench {
    // 100 CG steps after a 2-step warm-up: every buffer is sized by then,
    // so the steady state should be allocation-free.
    let (a, b) = small_regular();
    let mut cg = Cg::new(&a, &b, vec![0.0; a.nrows()]);
    cg.step();
    cg.step();
    let cg_steps_allocs = allocations(|| {
        for _ in 0..100 {
            cg.step();
        }
    });

    // Warm-cache reconstructions: the first call populates the artifact
    // cache and grows the workspace; the second is the recovery hot path.
    let part = Partition::balanced(a.nrows(), 8);
    let key = Some(MatrixKey::of(&a));
    let x = vec![0.0; a.nrows()];
    let mut ws = Workspace::new();
    li_with(
        &mut ws,
        key,
        &a,
        &part,
        3,
        &x,
        &b,
        ConstructionMethod::Exact,
        1e-6,
    );
    let li_warm_allocs = allocations(|| {
        li_with(
            &mut ws,
            key,
            &a,
            &part,
            3,
            &x,
            &b,
            ConstructionMethod::Exact,
            1e-6,
        );
    });
    lsi_with(
        &mut ws,
        key,
        &a,
        &part,
        3,
        &x,
        &b,
        ConstructionMethod::Exact,
        1e-6,
    );
    let lsi_warm_allocs = allocations(|| {
        lsi_with(
            &mut ws,
            key,
            &a,
            &part,
            3,
            &x,
            &b,
            ConstructionMethod::Exact,
            1e-6,
        );
    });
    // Warm PCG steady states on a SELL-selected operator: stencil_2d(64,
    // 64) clears SELL_MIN_NNZ (so the format heuristic binds the solvers
    // to the SELL kernel) while staying under the parallel-SpMV
    // threshold, keeping the counted section single-threaded. Both
    // solvers preallocate every buffer in `new`, so 100 warm steps must
    // be allocation-free.
    let sp = stencil_2d(64, 64);
    let sb = rhs(&sp);
    let mut pcg = JacobiPcg::new(&sp, &sb);
    assert_eq!(pcg.format(), Format::Sell, "stencil must select SELL");
    pcg.step();
    pcg.step();
    let jacobi_warm_allocs = allocations(|| {
        for _ in 0..100 {
            pcg.step();
        }
    });
    let mut ic = Ic0Pcg::new(&sp, &sb).expect("stencil is SPD");
    ic.step();
    ic.step();
    let ic0_warm_allocs = allocations(|| {
        for _ in 0..100 {
            ic.step();
        }
    });

    AllocBench {
        cg_steps_allocs,
        li_warm_allocs,
        lsi_warm_allocs,
        jacobi_warm_allocs,
        ic0_warm_allocs,
    }
}

fn measure_cache() -> CacheBench {
    // Sparse artifact cache: reconstruct every rank of a partitioned
    // system four times — passes 2..4 (and the repeated blocks within a
    // pass) must be cache hits.
    let (a, b) = small_regular();
    let part = Partition::balanced(a.nrows(), 8);
    let key = Some(MatrixKey::of(&a));
    let x = vec![0.0; a.nrows()];
    let mut ws = Workspace::new();
    let s0 = rsls_sparse::artifacts::global().stats();
    for _pass in 0..4 {
        for rank in 0..part.num_ranks() {
            for method in [
                ConstructionMethod::Exact,
                ConstructionMethod::local_cg_default(),
            ] {
                li_with(&mut ws, key, &a, &part, rank, &x, &b, method, 1e-6);
                lsi_with(&mut ws, key, &a, &part, rank, &x, &b, method, 1e-6);
            }
        }
    }
    let s1 = rsls_sparse::artifacts::global().stats();
    let (hits, misses) = (s1.hits - s0.hits, s1.misses - s0.misses);
    let artifact_hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // Workload interner: acquiring the full `rsls-run --all` quick suite
    // cold (generated) vs warm (interned).
    let names: Vec<&str> = SUITE.iter().map(|m| m.name).collect();
    let w0 = rsls_experiments::artifacts::stats();
    let suite_cold_s = time_seconds(1, || {
        for name in &names {
            std::hint::black_box(workload(name, Scale::Quick));
        }
    });
    let suite_warm_s = time_seconds(3, || {
        for name in &names {
            std::hint::black_box(workload(name, Scale::Quick));
        }
    });
    let w1 = rsls_experiments::artifacts::stats();
    let (whits, wmisses) = (w1.hits - w0.hits, w1.misses - w0.misses);
    CacheBench {
        artifact_hit_rate,
        workload_hit_rate: whits as f64 / (whits + wmisses).max(1) as f64,
        suite_warm_speedup: suite_cold_s / suite_warm_s.max(1e-9),
    }
}

/// One faulty multi-scheme pass over two suite matrices — the shape of a
/// small `rsls-run --all` slice. `acquire` supplies each workload.
fn faulty_pass(acquire: impl Fn(&str) -> (Arc<CsrMatrix>, Arc<Vec<f64>>)) {
    for name in ["bcsstk06", "ex10hs"] {
        let (a, b) = acquire(name);
        for scheme in [
            Scheme::li_exact(),
            Scheme::li_local_cg(),
            Scheme::lsi_local_cg(),
        ] {
            let faults = evenly_spaced_faults(2, 400, 4, name);
            let report = SchemeRun::new(&a, &b, 4, scheme)
                .faults(faults)
                .tag(name)
                .execute();
            std::hint::black_box(report);
        }
    }
}

fn measure_e2e() -> E2eBench {
    let campaign_cold_s = time_seconds(1, || {
        faulty_pass(|name| {
            let (a, b) = rsls_experiments::artifacts::workload_uncached(name, Scale::Quick);
            (Arc::new(a), Arc::new(b))
        });
    });
    let campaign_warm_s = time_seconds(2, || {
        faulty_pass(|name| workload(name, Scale::Quick));
    });
    E2eBench {
        campaign_cold_s,
        campaign_warm_s,
        campaign_warm_speedup: campaign_cold_s / campaign_warm_s.max(1e-9),
    }
}

/// Thread budgets of the parallel columns of the SpMV matrix.
const MATRIX_THREADS: [usize; 3] = [1, 2, 4];

fn measure_kernel() -> KernelBench {
    let (a, _) = large_stencil();
    let sell = SellMatrix::from_csr_with(&a, SELL_DEFAULT_C, SELL_DEFAULT_SIGMA);
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 / 17.0).collect();
    let mut y = vec![0.0; n];
    const SPMV_ITERS: usize = 20;
    let flops = SPMV_ITERS as f64 * a.spmv_flops() as f64;

    // Pools are built once per thread budget so the matrix is measured
    // identically whether the ambient pool was pinned
    // (RAYON_NUM_THREADS=4 in CI) or not. `effective` records what the
    // machine actually supplied — on a small box the kernels
    // serial-delegate and the cell documents that honestly.
    let pools: Vec<(usize, rayon::ThreadPool, usize)> = MATRIX_THREADS
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let effective = pool.install(rayon::effective_num_threads);
            (threads, pool, effective)
        })
        .collect();

    // Interleaved passes: one timed rep of *every* cell per pass,
    // best-of across passes. Timing each cell to completion in sequence
    // lets slow drift (thermal throttling, a container CPU quota
    // burning down) penalize whichever cell happens to run last;
    // round-robin exposes every cell to the same conditions, and the
    // min converges on each cell's unthrottled speed. The starting cell
    // rotates each pass: with a fixed order, periodic interference
    // (quota refill windows) can alias onto fixed cell positions and
    // read as a persistent speed difference between identical kernels.
    const PASSES: usize = 12;
    let n_cells = 2 + 2 * MATRIX_THREADS.len();
    let mut best = [f64::INFINITY; 2 + 2 * MATRIX_THREADS.len()];
    for pass in 0..PASSES {
        for slot in 0..n_cells {
            let ci = (slot + pass) % n_cells;
            let t = match ci {
                0 => time_seconds(1, || {
                    for _ in 0..SPMV_ITERS {
                        a.spmv(std::hint::black_box(&x), &mut y);
                    }
                }),
                1 => time_seconds(1, || {
                    for _ in 0..SPMV_ITERS {
                        sell.spmv(std::hint::black_box(&x), &mut y);
                    }
                }),
                _ => {
                    let (_, pool, _) = &pools[(ci - 2) / 2];
                    if ci.is_multiple_of(2) {
                        pool.install(|| {
                            time_seconds(1, || {
                                for _ in 0..SPMV_ITERS {
                                    a.par_spmv_chunked(
                                        std::hint::black_box(&x),
                                        &mut y,
                                        PAR_SPMV_CHUNK_ROWS,
                                    );
                                }
                            })
                        })
                    } else {
                        pool.install(|| {
                            time_seconds(1, || {
                                for _ in 0..SPMV_ITERS {
                                    sell.par_spmv(std::hint::black_box(&x), &mut y);
                                }
                            })
                        })
                    }
                }
            };
            best[ci] = best[ci].min(t);
        }
    }

    let serial_csr_s = best[0];
    let serial_sell_s = best[1];
    let cell = |format: &str, parallel: bool, threads, effective_threads, secs: f64| KernelCell {
        format: format.to_string(),
        parallel,
        threads,
        effective_threads,
        mflops: flops / secs.max(1e-9) / 1e6,
        speedup_vs_serial_csr: serial_csr_s / secs.max(1e-9),
    };
    let mut matrix = vec![
        cell("csr", false, 1, 1, serial_csr_s),
        cell("sell", false, 1, 1, serial_sell_s),
    ];
    let mut par4_csr_s = serial_csr_s;
    for (pi, &(threads, _, effective)) in pools.iter().enumerate() {
        matrix.push(cell("csr", true, threads, effective, best[2 + 2 * pi]));
        matrix.push(cell("sell", true, threads, effective, best[3 + 2 * pi]));
        if threads == 4 {
            par4_csr_s = best[2 + 2 * pi];
        }
    }

    // Fused axpy_dot vs the separate axpy-then-dot it replaces in the CG
    // update (one pass over the vectors instead of two).
    let m = 1 << 20;
    let xs: Vec<f64> = (0..m)
        .map(|i| ((i * 31 + 7) % 101) as f64 / 101.0)
        .collect();
    let mut ys = vec![1.0; m];
    let mut acc = 0.0;
    let sep_s = time_seconds(9, || {
        axpy(5e-4, &xs, &mut ys);
        acc += dot(&ys, &ys);
    });
    let fused_s = time_seconds(9, || {
        acc += axpy_dot(5e-4, &xs, &mut ys);
    });
    std::hint::black_box(acc);

    // Legacy aggregate scalars (v1 schema) derive from the 4-thread
    // parallel-CSR column so old and new baselines describe the same
    // measurement.
    KernelBench {
        threads: rayon::current_num_threads(),
        effective_threads: rayon::effective_num_threads(),
        spmv_serial_mflops: flops / serial_csr_s.max(1e-9) / 1e6,
        par_spmv_mflops: flops / par4_csr_s.max(1e-9) / 1e6,
        par_spmv_speedup: serial_csr_s / par4_csr_s.max(1e-9),
        axpy_dot_speedup: sep_s / fused_s.max(1e-9),
        matrix,
    }
}

fn measure() -> BenchReport {
    // Allocation counters run first (single-threaded, before any worker
    // threads exist to perturb the counts); kernels last so their thread
    // spawns don't interleave with the counted sections.
    eprintln!("rsls-bench: measuring allocation counters");
    let alloc = measure_alloc();
    eprintln!("rsls-bench: measuring cache effectiveness");
    let cache = measure_cache();
    eprintln!("rsls-bench: measuring cold/warm campaign pass");
    let e2e = measure_e2e();
    eprintln!("rsls-bench: measuring kernels");
    let kernel = measure_kernel();
    BenchReport {
        version: REPORT_VERSION,
        kernel,
        alloc,
        cache,
        e2e,
    }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

fn load<T: serde::Deserialize>(path: &str) -> T {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

/// Prints gate lines and exits nonzero on any failure.
fn report_gates(results: &[GateResult]) {
    let mut failed = false;
    for g in results {
        let status = match (g.ok, g.skipped) {
            (_, Some(why)) => format!("SKIP ({why})"),
            (true, None) => "ok".to_string(),
            (false, None) => {
                failed = true;
                "FAIL".to_string()
            }
        };
        println!(
            "{:28} current {:>12.4}  required {:>12.4}  {status}",
            g.name, g.current, g.required
        );
    }
    if failed {
        eprintln!("rsls-bench: regression gate FAILED");
        std::process::exit(1);
    }
    eprintln!("rsls-bench: regression gate passed");
}

fn die(msg: &str) -> ! {
    eprintln!("rsls-bench: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    die(
        "usage: rsls-bench run [--out PATH] | rsls-bench compare CURRENT BASELINE \
         | rsls-bench compare-serve CURRENT BASELINE",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let out = match args.get(1).map(String::as_str) {
                Some("--out") => Some(args.get(2).cloned().unwrap_or_else(|| usage())),
                Some(_) => usage(),
                None => None,
            };
            let report = measure();
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            match out {
                Some(path) => {
                    std::fs::write(&path, json + "\n")
                        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                    eprintln!("rsls-bench: wrote {path}");
                }
                None => println!("{json}"),
            }
        }
        Some("compare") => {
            let (cur, base): (BenchReport, BenchReport) = match (args.get(1), args.get(2)) {
                (Some(c), Some(b)) => (load(c), load(b)),
                _ => usage(),
            };
            report_gates(&gate(&cur, &base));
        }
        Some("compare-serve") => {
            let (cur, base): (ServeBenchReport, ServeBenchReport) = match (args.get(1), args.get(2))
            {
                (Some(c), Some(b)) => (load(c), load(b)),
                _ => usage(),
            };
            report_gates(&serve_gate(&cur, &base));
        }
        _ => usage(),
    }
}
