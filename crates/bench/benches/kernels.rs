//! Microbenchmarks of the numerical kernels underlying every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rsls_bench::rhs;
use rsls_solvers::{Cg, CgConfig};
use rsls_sparse::dense::{Cholesky, Lu, Qr};
use rsls_sparse::generators::{banded_spd, stencil_2d, BandedConfig};
use rsls_sparse::vector::{axpy, dot};
use rsls_sparse::DenseMatrix;

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    for side in [50usize, 100, 200] {
        let a = stencil_2d(side, side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::new("serial", side * side), &a, |bch, a| {
            bch.iter(|| a.spmv(black_box(&x), black_box(&mut y)));
        });
        g.bench_with_input(BenchmarkId::new("rayon", side * side), &a, |bch, a| {
            bch.iter(|| a.par_spmv(black_box(&x), black_box(&mut y)));
        });
    }
    g.finish();
}

fn bench_blas1(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas1");
    let n = 100_000;
    let x = vec![1.5; n];
    let mut y = vec![0.5; n];
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dot", |b| {
        b.iter(|| dot(black_box(&x), black_box(&y)));
    });
    g.bench_function("axpy", |b| {
        b.iter(|| axpy(black_box(0.1), black_box(&x), black_box(&mut y)));
    });
    g.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense-factor");
    for m in [50usize, 100, 200] {
        // An SPD dense block like the LI diagonal blocks.
        let sp = banded_spd(&BandedConfig::regular(m, 9, 0.2, 3));
        let dense = sp.to_dense();
        g.bench_with_input(BenchmarkId::new("lu", m), &dense, |b, d| {
            b.iter(|| Lu::factor(black_box(d)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("cholesky", m), &dense, |b, d| {
            b.iter(|| Cholesky::factor(black_box(d)).unwrap());
        });
        // Tall matrix for QR (the LSI panel shape).
        let mut tall = DenseMatrix::zeros(2 * m, m);
        for i in 0..2 * m {
            for j in 0..m {
                if (i + j) % 3 == 0 {
                    tall[(i, j)] = 1.0 + ((i * 7 + j) % 10) as f64;
                }
            }
            tall[(i, i.min(m - 1))] += 10.0;
        }
        g.bench_with_input(BenchmarkId::new("qr", m), &tall, |b, d| {
            b.iter(|| Qr::factor(black_box(d)).unwrap());
        });
    }
    g.finish();
}

fn bench_cg_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("cg");
    let a = stencil_2d(60, 60);
    let b = rhs(&a);
    g.bench_function("step-3600", |bch| {
        let mut cg = Cg::from_zero(&a, &b);
        bch.iter(|| {
            black_box(cg.step());
        });
    });
    g.bench_function("solve-stencil-40x40", |bch| {
        let a = stencil_2d(40, 40);
        let b = rhs(&a);
        bch.iter(|| {
            let mut cg = Cg::from_zero(&a, &b);
            cg.solve(&CgConfig {
                tolerance: 1e-8,
                max_iterations: 10_000,
            })
        });
    });
    g.finish();
}

fn bench_distributed_cg(c: &mut Criterion) {
    use rsls_solvers::DistCg;
    use rsls_sparse::Partition;
    let mut g = c.benchmark_group("dist-cg");
    let a = stencil_2d(60, 60);
    let b = rhs(&a);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("step", p), &p, |bch, &p| {
            let mut dist = DistCg::new(&a, &b, Partition::balanced(a.nrows(), p));
            bch.iter(|| black_box(dist.step()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_blas1,
    bench_factorizations,
    bench_cg_iteration,
    bench_distributed_cg
);
criterion_main!(benches);
