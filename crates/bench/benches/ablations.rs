//! Ablation benches for the design choices called out in DESIGN.md §5:
//! construction algorithm, DVFS sensitivity exponent γ, and checkpoint
//! interval around the Young/Daly optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rsls_bench::{rhs, small_regular};
use rsls_core::construction::{li, lsi, ConstructionMethod};
use rsls_core::driver::{run, RunConfig};
use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_power::PowerModelConfig;
use rsls_solvers::{Cg, CgConfig, Ic0Pcg, JacobiPcg};
use rsls_sparse::generators::stencil_2d;
use rsls_sparse::generators::{banded_spd, BandedConfig};
use rsls_sparse::Partition;

const RANKS: usize = 8;

/// Construction-algorithm ablation: LU vs normal-equations vs local CG,
/// across diagonal-block sizes.
fn ablation_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_construction");
    for n in [400usize, 1200, 2400] {
        let a = banded_spd(&BandedConfig::regular(n, 9, 1e-3, 11).with_band_decay(0.3));
        let b = rhs(&a);
        let part = Partition::balanced(n, RANKS);
        let x = vec![0.9; n]; // a mid-solve-like iterate
        g.bench_with_input(BenchmarkId::new("li_lu", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(li(&a, &part, 3, &x, &b, ConstructionMethod::Exact, 1e-6).local_flops)
            });
        });
        g.bench_with_input(BenchmarkId::new("li_cg", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(
                    li(
                        &a,
                        &part,
                        3,
                        &x,
                        &b,
                        ConstructionMethod::local_cg_fixed(1e-6, 2000),
                        1e-6,
                    )
                    .local_flops,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("lsi_ne", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(lsi(&a, &part, 3, &x, &b, ConstructionMethod::Exact, 1e-6).local_flops)
            });
        });
        g.bench_with_input(BenchmarkId::new("lsi_cgls", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(
                    lsi(
                        &a,
                        &part,
                        3,
                        &x,
                        &b,
                        ConstructionMethod::local_cg_fixed(1e-6, 2000),
                        1e-6,
                    )
                    .local_flops,
                )
            });
        });
    }
    g.finish();
}

/// DVFS-saving sensitivity to the frequency exponent γ (how memory-bound
/// the workload is assumed to be).
fn ablation_gamma(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let mut g = c.benchmark_group("ablation_gamma");
    for gamma in [0.0f64, 0.5, 1.0] {
        g.bench_function(format!("gamma_{gamma}"), |bch| {
            bch.iter(|| {
                let mut cfg = RunConfig::new(Scheme::li_local_cg(), RANKS)
                    .with_faults(FaultSchedule::evenly_spaced(
                        3,
                        ff.iterations,
                        RANKS,
                        FaultClass::Snf,
                        5,
                    ))
                    .with_dvfs(DvfsPolicy::ThrottleWaiters);
                cfg.power = PowerModelConfig {
                    time_freq_exponent: gamma,
                    ..PowerModelConfig::default()
                };
                black_box(run(&a, &b, &cfg).energy_j)
            });
        });
    }
    g.finish();
}

/// Checkpoint-interval ablation around the Young optimum (Eq. 10/11).
fn ablation_interval(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let mut g = c.benchmark_group("ablation_interval");
    for interval in [10usize, 50, 200] {
        g.bench_function(format!("every_{interval}"), |bch| {
            bch.iter(|| {
                let mut cfg = RunConfig::new(
                    Scheme::Checkpoint {
                        storage: CheckpointStorage::Memory,
                        interval: CheckpointInterval::EveryIterations(interval),
                    },
                    RANKS,
                )
                .with_faults(FaultSchedule::evenly_spaced(
                    3,
                    ff.iterations,
                    RANKS,
                    FaultClass::Snf,
                    5,
                ));
                cfg.run_tag = format!("bench-abl-{interval}");
                black_box(run(&a, &b, &cfg).energy_j)
            });
        });
    }
    g.finish();
}

/// Preconditioner ablation: plain CG vs Jacobi-PCG vs IC(0)-PCG on the
/// suite model matrices, solved to a fixed tolerance. The measured body
/// is the whole solve, so the bench shows the iteration-count lever
/// directly (IC(0) trades two triangular solves per step for far fewer
/// steps); each solver's iteration count prints once per operand so the
/// reduction is visible in the bench log.
fn ablation_preconditioner(c: &mut Criterion) {
    let cfg = CgConfig {
        tolerance: 1e-8,
        max_iterations: 20_000,
    };
    let mut g = c.benchmark_group("ablation_preconditioner");
    let operands: [(&str, rsls_sparse::CsrMatrix); 2] = [
        ("stencil_48", stencil_2d(48, 48)),
        ("regular_1200", small_regular().0),
    ];
    for (name, a) in &operands {
        let b = rhs(a);
        let cg_iters = Cg::from_zero(a, &b).solve(&cfg).0;
        let jacobi_iters = JacobiPcg::new(a, &b).solve(&cfg).0;
        let ic0_iters = Ic0Pcg::new(a, &b).expect("SPD operand").solve(&cfg).0;
        println!(
            "ablation_preconditioner/{name}: cg {cg_iters} iters, \
             jacobi {jacobi_iters} iters, ic0 {ic0_iters} iters"
        );
        g.bench_with_input(BenchmarkId::new("cg", name), name, |bch, _| {
            bch.iter(|| black_box(Cg::from_zero(a, &b).solve(&cfg).0));
        });
        g.bench_with_input(BenchmarkId::new("jacobi_pcg", name), name, |bch, _| {
            bch.iter(|| black_box(JacobiPcg::new(a, &b).solve(&cfg).0));
        });
        g.bench_with_input(BenchmarkId::new("ic0_pcg", name), name, |bch, _| {
            bch.iter(|| black_box(Ic0Pcg::new(a, &b).expect("SPD operand").solve(&cfg).0));
        });
    }
    g.finish();
}

/// Extension schemes vs the paper's: TMR and multilevel checkpointing.
fn ablation_extensions(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let faults = FaultSchedule::evenly_spaced(3, ff.iterations, RANKS, FaultClass::Snf, 5);
    let mut g = c.benchmark_group("ablation_extensions");
    for (name, scheme) in [
        ("tmr", Scheme::Tmr),
        ("cr_ml", Scheme::cr_multilevel()),
        ("cr_m", Scheme::cr_memory()),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let mut cfg = RunConfig::new(scheme, RANKS).with_faults(faults.clone());
                cfg.mtbf_s = Some(ff.time_s / 3.0);
                cfg.run_tag = format!("bench-ext-{name}");
                black_box(run(&a, &b, &cfg).energy_j)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_construction, ablation_gamma, ablation_interval,
        ablation_preconditioner, ablation_extensions
}
criterion_main!(benches);
