//! One bench per paper *figure*: each measured body is a smoke-scale
//! version of the corresponding experiment (the full-size reproductions
//! are produced by `rsls-run --experiment figN`), so regressions in any
//! figure's code path show up as criterion deltas.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rsls_bench::{small_irregular, small_regular, small_stencil};
use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, ForwardKind, Scheme};
use rsls_faults::{FaultClass, FaultSchedule, MtbfEstimator, SystemScale};
use rsls_models::{project_scheme, ProjectionConfig, ProjectionScheme};

const RANKS: usize = 8;

fn schedule(k: usize, ff_iters: usize) -> FaultSchedule {
    FaultSchedule::evenly_spaced(k, ff_iters, RANKS, FaultClass::Snf, 5)
}

fn ff_of(a: &rsls_sparse::CsrMatrix, b: &[f64]) -> rsls_core::RunReport {
    run(a, b, &RunConfig::new(Scheme::FaultFree, RANKS))
}

/// Figure 1 — MTBF projection.
fn fig1_mtbf(c: &mut Criterion) {
    c.bench_function("fig1_mtbf", |bch| {
        bch.iter(|| {
            let est = MtbfEstimator::default();
            black_box(est.combined_system_mtbf_h(SystemScale::exascale()))
        });
    });
}

/// Figure 3 — scheme cost comparison under a fault rate.
fn fig3_overhead(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = ff_of(&a, &b);
    c.bench_function("fig3_overhead", |bch| {
        bch.iter(|| {
            let cfg = RunConfig::new(Scheme::li_local_cg(), RANKS)
                .with_faults(schedule(3, ff.iterations))
                .with_dvfs(DvfsPolicy::ThrottleWaiters);
            black_box(run(&a, &b, &cfg).energy_j)
        });
    });
}

/// Figure 4 — CG-based vs exact construction.
fn fig4_construction(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = ff_of(&a, &b);
    let mut g = c.benchmark_group("fig4_construction");
    for (name, scheme) in [
        ("li_exact", Scheme::li_exact()),
        ("li_cg", Scheme::li_local_cg()),
        ("lsi_exact", Scheme::lsi_exact()),
        ("lsi_cg", Scheme::lsi_local_cg()),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let cfg = RunConfig::new(scheme, RANKS).with_faults(schedule(3, ff.iterations));
                black_box(run(&a, &b, &cfg).time_s)
            });
        });
    }
    g.finish();
}

/// Figure 5 — iterations per scheme (one matrix per structure class).
fn fig5_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_iterations");
    for (name, (a, b)) in [
        ("regular", small_regular()),
        ("irregular", small_irregular()),
    ] {
        let ff = ff_of(&a, &b);
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let cfg = RunConfig::new(Scheme::Forward(ForwardKind::Zero), RANKS)
                    .with_faults(schedule(5, ff.iterations));
                black_box(run(&a, &b, &cfg).iterations)
            });
        });
    }
    g.finish();
}

/// Figure 6 — residual-history recording.
fn fig6_residual(c: &mut Criterion) {
    let (a, b) = small_stencil();
    let ff = ff_of(&a, &b);
    c.bench_function("fig6_residual", |bch| {
        bch.iter(|| {
            let mut cfg = RunConfig::new(Scheme::li_local_cg(), RANKS)
                .with_faults(schedule(3, ff.iterations));
            cfg.record_history = true;
            black_box(run(&a, &b, &cfg).history.len())
        });
    });
}

/// Figure 7 — DVFS power optimization.
fn fig7_dvfs(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = ff_of(&a, &b);
    let mut g = c.benchmark_group("fig7_dvfs");
    for (name, dvfs) in [
        ("os_default", DvfsPolicy::OsDefault),
        ("throttle", DvfsPolicy::ThrottleWaiters),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let cfg = RunConfig::new(Scheme::li_local_cg(), RANKS)
                    .with_faults(schedule(3, ff.iterations))
                    .with_dvfs(dvfs);
                black_box(run(&a, &b, &cfg).avg_power_w)
            });
        });
    }
    g.finish();
}

/// Figure 8 — full scheme line-up on one workload.
fn fig8_tradeoff(c: &mut Criterion) {
    let (a, b) = small_irregular();
    let ff = ff_of(&a, &b);
    c.bench_function("fig8_tradeoff", |bch| {
        bch.iter(|| {
            let mut total = 0.0;
            for scheme in [Scheme::Dmr, Scheme::li_local_cg(), Scheme::cr_memory()] {
                let cfg = RunConfig::new(scheme, RANKS).with_faults(schedule(2, ff.iterations));
                total += run(&a, &b, &cfg).energy_j;
            }
            black_box(total)
        });
    });
}

/// Figure 9 — weak-scaling projection.
fn fig9_projection(c: &mut Criterion) {
    c.bench_function("fig9_projection", |bch| {
        let cfg = ProjectionConfig::default();
        bch.iter(|| {
            let mut acc = 0.0;
            for n in [1_000usize, 32_000, 1_000_000] {
                for s in ProjectionScheme::ALL {
                    let p = project_scheme(s, &cfg, n);
                    if p.t_res_norm.is_finite() {
                        acc += p.t_res_norm;
                    }
                }
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1_mtbf, fig3_overhead, fig4_construction, fig5_iterations,
              fig6_residual, fig7_dvfs, fig8_tradeoff, fig9_projection
}
criterion_main!(benches);
