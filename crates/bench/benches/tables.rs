//! One bench per paper *table* (smoke scale; full reproductions via
//! `rsls-run --experiment tableN`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rsls_bench::{rhs, small_regular};
use rsls_core::driver::{run, RunConfig};
use rsls_core::{DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_models::validate;
use rsls_sparse::generators::wathen;

const RANKS: usize = 8;

fn schedule(k: usize, ff_iters: usize) -> FaultSchedule {
    FaultSchedule::evenly_spaced(k, ff_iters, RANKS, FaultClass::Snf, 5)
}

/// Table 3 — suite generation + fault-free characterization.
fn table3_properties(c: &mut Criterion) {
    c.bench_function("table3_properties", |bch| {
        bch.iter(|| {
            let a = wathen(8, 8, 3);
            let b = rhs(&a);
            let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
            black_box((a.nnz_per_row(), ff.iterations))
        });
    });
}

/// Table 4 — iterations vs process count.
fn table4_scaling(c: &mut Criterion) {
    let (a, b) = small_regular();
    let mut g = c.benchmark_group("table4_scaling");
    for p in [4usize, 16, 64] {
        g.bench_function(format!("p{p}"), |bch| {
            let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, p));
            bch.iter(|| {
                let cfg = RunConfig::new(Scheme::li_local_cg(), p).with_faults(
                    FaultSchedule::evenly_spaced(3, ff.iterations, p, FaultClass::Snf, 5),
                );
                black_box(run(&a, &b, &cfg).iterations)
            });
        });
    }
    g.finish();
}

/// Table 5 — time/power/energy per scheme.
fn table5_costs(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let mut g = c.benchmark_group("table5_costs");
    for (name, scheme, dvfs) in [
        ("rd", Scheme::Dmr, DvfsPolicy::OsDefault),
        (
            "li_dvfs",
            Scheme::li_local_cg(),
            DvfsPolicy::ThrottleWaiters,
        ),
        ("cr_m", Scheme::cr_memory(), DvfsPolicy::OsDefault),
        ("cr_d", Scheme::cr_disk(), DvfsPolicy::OsDefault),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let mut cfg = RunConfig::new(scheme, RANKS)
                    .with_faults(schedule(3, ff.iterations))
                    .with_dvfs(dvfs);
                cfg.mtbf_s = Some(ff.time_s / 3.0);
                cfg.run_tag = format!("bench-t5-{name}");
                let r = run(&a, &b, &cfg);
                black_box((r.time_s, r.avg_power_w, r.energy_j))
            });
        });
    }
    g.finish();
}

/// Table 6 — model-vs-experiment validation.
fn table6_validation(c: &mut Criterion) {
    let (a, b) = small_regular();
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let mut cfg = RunConfig::new(Scheme::li_local_cg(), RANKS)
        .with_faults(schedule(3, ff.iterations))
        .with_dvfs(DvfsPolicy::ThrottleWaiters);
    cfg.mtbf_s = Some(ff.time_s / 3.0);
    let li = run(&a, &b, &cfg);
    c.bench_function("table6_validation", |bch| {
        bch.iter(|| black_box(validate(&li, &ff)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table3_properties, table4_scaling, table5_costs, table6_validation
}
criterion_main!(benches);
