//! Matrix Market (`.mtx`) serialization.
//!
//! Supports the `matrix coordinate real {general|symmetric}` flavor used by
//! the SuiteSparse collection the paper draws its matrices from, so locally
//! generated analogs can be exported and real SuiteSparse files imported
//! when available.

use std::io::{BufRead, Write};

use crate::{CooMatrix, CsrMatrix, LinalgError, Result};

/// Reads a Matrix Market coordinate stream into a CSR matrix.
///
/// Symmetric files are expanded to full storage.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix> {
    let mut lines = reader.lines().enumerate();

    let (idx, header) = lines.next().ok_or_else(|| parse_err(1, "empty stream"))?;
    let lineno = idx + 1;
    let header = header.map_err(|e| parse_err(lineno, &e.to_string()))?;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(lineno, "missing %%MatrixMarket matrix header"));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(lineno, "only coordinate format is supported"));
    }
    if fields[3] != "real" && fields[3] != "integer" {
        return Err(parse_err(lineno, "only real/integer fields are supported"));
    }
    let symmetric = match fields.get(4).copied().unwrap_or("general") {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(parse_err(
                lineno,
                &format!("unsupported symmetry kind '{other}'"),
            ))
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    let mut size_lineno = lineno;
    for (i, line) in lines.by_ref() {
        let line = line.map_err(|e| parse_err(i + 1, &e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        size_lineno = i + 1;
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err(size_lineno, "missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| parse_err(size_lineno, &e.to_string()))?;
    if dims.len() != 3 {
        return Err(parse_err(size_lineno, "size line must be 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line.map_err(|e| parse_err(i + 1, &e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let r: usize = toks
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing row"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "bad row index"))?;
        let c: usize = toks
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing col"))?
            .parse()
            .map_err(|_| parse_err(i + 1, "bad col index"))?;
        let v: f64 = toks
            .next()
            .map(|t| t.parse().map_err(|_| parse_err(i + 1, "bad value")))
            .transpose()?
            .unwrap_or(1.0); // pattern entries default to 1
        if r == 0 || c == 0 {
            return Err(parse_err(i + 1, "indices are 1-based"));
        }
        let (r, c) = (r - 1, c - 1);
        if symmetric {
            coo.push_sym(r, c, v)?;
        } else {
            coo.push(r, c, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            size_lineno,
            &format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo.to_csr())
}

/// Writes `a` as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(writer, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

fn parse_err(line: usize, message: &str) -> LinalgError {
    LinalgError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip_preserves_matrix() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push_sym(0, 2, -0.5).unwrap();
        coo.push(1, 1, 1.25).unwrap();
        let a = coo.to_csr();

        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_file_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % a comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn bad_header_is_rejected() {
        let text = "%%NotMM matrix coordinate real general\n1 1 0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn entry_count_mismatch_is_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn zero_based_indices_are_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }
}
