//! Contiguous block-row partitions.
//!
//! The paper distributes `A`, `x` and `b` over MPI processes by block rows
//! (Figure 2). [`Partition`] captures that mapping: rank `i` owns the
//! contiguous row range `ranges[i]`, and a fault on rank `i` corrupts
//! exactly `x[ranges[i]]`.

use serde::{Deserialize, Serialize};

/// A partition of `0..n` into `p` contiguous, balanced, disjoint ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    n: usize,
    /// `bounds[i]..bounds[i+1]` is rank i's range; `bounds.len() == p + 1`.
    bounds: Vec<usize>,
}

impl Partition {
    /// Splits `0..n` into `p` balanced contiguous ranges (the first
    /// `n % p` ranks get one extra row).
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn balanced(n: usize, p: usize) -> Self {
        assert!(p > 0, "partition must have at least one rank");
        let base = n / p;
        let extra = n % p;
        let mut bounds = Vec::with_capacity(p + 1);
        let mut acc = 0;
        bounds.push(0);
        for i in 0..p {
            acc += base + usize::from(i < extra);
            bounds.push(acc);
        }
        Partition { n, bounds }
    }

    /// Builds from explicit range boundaries.
    ///
    /// # Panics
    /// Panics unless `bounds` starts at 0, ends at `n`, and is
    /// non-decreasing.
    pub fn from_bounds(n: usize, bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "partition needs at least one range");
        assert_eq!(bounds[0], 0, "partition must start at row 0");
        assert_eq!(bounds[bounds.len() - 1], n, "partition must end at row n");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "partition bounds must be non-decreasing"
        );
        Partition { n, bounds }
    }

    /// Total number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        self.bounds[rank]..self.bounds[rank + 1]
    }

    /// Number of rows owned by `rank`.
    pub fn len(&self, rank: usize) -> usize {
        self.bounds[rank + 1] - self.bounds[rank]
    }

    /// True when some rank owns zero rows.
    pub fn has_empty_rank(&self) -> bool {
        (0..self.num_ranks()).any(|r| self.len(r) == 0)
    }

    /// The rank owning `row`.
    ///
    /// # Panics
    /// Panics if `row >= n`.
    pub fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row {row} out of range");
        // bounds is sorted; find the last bound <= row.
        match self.bounds.binary_search(&row) {
            Ok(mut i) => {
                // Skip empty ranges that share this boundary.
                while i + 1 < self.bounds.len() - 1 && self.bounds[i + 1] == row {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        }
    }

    /// Iterates over `(rank, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.num_ranks()).map(move |r| (r, self.range(r)))
    }

    /// Maximum rows owned by any rank (load imbalance indicator).
    pub fn max_len(&self) -> usize {
        (0..self.num_ranks())
            .map(|r| self.len(r))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_partition_covers_all_rows_disjointly() {
        let p = Partition::balanced(10, 3);
        assert_eq!(p.num_ranks(), 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        let total: usize = (0..3).map(|r| p.len(r)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let p = Partition::balanced(100, 7);
        for row in 0..100 {
            let o = p.owner(row);
            assert!(p.range(o).contains(&row), "row {row} owner {o}");
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = Partition::balanced(5, 1);
        assert_eq!(p.range(0), 0..5);
        assert_eq!(p.owner(4), 0);
    }

    #[test]
    fn more_ranks_than_rows_yields_empty_ranks() {
        let p = Partition::balanced(2, 4);
        assert!(p.has_empty_rank());
        let total: usize = (0..4).map(|r| p.len(r)).sum();
        assert_eq!(total, 2);
        // Every row still has exactly one owner.
        for row in 0..2 {
            let o = p.owner(row);
            assert!(p.range(o).contains(&row));
        }
    }

    #[test]
    fn from_bounds_validates_shape() {
        let p = Partition::from_bounds(6, vec![0, 2, 6]);
        assert_eq!(p.num_ranks(), 2);
        assert_eq!(p.owner(5), 1);
    }

    #[test]
    #[should_panic]
    fn from_bounds_rejects_wrong_endpoint() {
        Partition::from_bounds(6, vec![0, 2, 5]);
    }

    #[test]
    fn max_len_reports_largest_block() {
        let p = Partition::balanced(10, 3);
        assert_eq!(p.max_len(), 4);
    }
}
