//! SELL-C-σ (sliced ELLPACK) storage and SpMV kernels.
//!
//! CSR's SpMV reduces each row through one serial dependency chain; for
//! the suite's stencil matrices (~5 stored entries per row) the chain is
//! so short that the kernel is latency-bound, not bandwidth-bound. The
//! SELL-C-σ layout (Kreutzer et al.) groups rows into *chunks* of `C`
//! lanes stored column-major, so one pass of the inner loop advances `C`
//! independent accumulators at once — the instruction-level parallelism
//! CSR cannot expose. Rows are sorted by descending length inside
//! windows of `σ` rows, which keeps chunk padding low without destroying
//! locality of `x` accesses.
//!
//! # Determinism
//!
//! Every kernel here is **bit-identical to [`CsrMatrix::spmv`]**:
//!
//! * each lane accumulates its row's entries left to right in CSR order
//!   — the same serial chain, just interleaved across lanes;
//! * padding slots are never read: the inner loop is bounded by the
//!   number of *active* lanes at each column step (lanes are sorted by
//!   descending length, so active lanes are a prefix). Folding padding
//!   into the sum would already break bit-identity, because
//!   `-0.0 + 0.0 == +0.0`;
//! * `σ` is rounded up to a multiple of `C`, so every chunk lies inside
//!   one sorting window and the row permutation is *window-local*. The
//!   parallel kernel hands each window's `y` slice to one worker —
//!   disjoint writes, no scatter pass, no dependence on scheduling.

use std::sync::atomic::Ordering;

use rayon::prelude::*;

use crate::csr::par_spmv_threshold;
use crate::CsrMatrix;

/// Default chunk height: eight f64 lanes fill two AVX2 (or one AVX-512)
/// vector registers, and eight independent accumulator chains are enough
/// to hide FMA latency on current cores.
pub const SELL_DEFAULT_C: usize = 8;

/// Default sorting window. Also the parallel grain: each window of rows
/// is one unit of work, so ~100k-row suite matrices yield enough windows
/// to balance 4 workers while each window still amortizes dispatch.
pub const SELL_DEFAULT_SIGMA: usize = 4096;

/// Upper bound on the chunk height `C` (sizes the stack-resident
/// accumulator block in the kernels).
pub const SELL_MAX_C: usize = 64;

/// Lane sentinel for padding rows appended past `nrows`.
const PAD: usize = usize::MAX;

/// A sparse matrix in SELL-C-σ format, converted from [`CsrMatrix`].
///
/// Construction never fails for a valid CSR matrix; the converted form
/// represents exactly the same operator and its kernels produce results
/// bit-identical to the CSR reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    c: usize,
    sigma: usize,
    /// `perm[lane] = original row` (lanes sorted by descending row
    /// length inside each σ-window; [`PAD`] past `nrows`).
    perm: Vec<usize>,
    /// Stored-entry count of each lane's row (`0` for padding lanes).
    row_len: Vec<usize>,
    /// Start offset of each chunk in `col_idx` / `values`
    /// (`n_chunks + 1` entries; chunk width = span / C).
    chunk_ptr: Vec<usize>,
    /// Column indices, column-major per chunk, padded with `0`. Stored
    /// as `u32`: SpMV is bandwidth-bound, and narrow indices cut a
    /// third of the per-entry index traffic next to CSR's `usize`.
    col_idx: Vec<u32>,
    /// Values, column-major per chunk, padded with `0.0` (never read).
    values: Vec<f64>,
}

impl SellMatrix {
    /// Converts a CSR matrix with the default `C` and `σ`.
    pub fn from_csr(a: &CsrMatrix) -> SellMatrix {
        SellMatrix::from_csr_with(a, SELL_DEFAULT_C, SELL_DEFAULT_SIGMA)
    }

    /// Converts a CSR matrix with chunk height `c` and sorting window
    /// `sigma`. `sigma` is rounded up to a multiple of `c` so chunks
    /// never straddle window boundaries.
    ///
    /// # Panics
    /// Panics if `c == 0`, `c > SELL_MAX_C`, or the matrix has more
    /// columns than the 32-bit index storage can address.
    pub fn from_csr_with(a: &CsrMatrix, c: usize, sigma: usize) -> SellMatrix {
        assert!(c > 0, "SellMatrix: chunk height must be positive");
        assert!(
            c <= SELL_MAX_C,
            "SellMatrix: chunk height above {SELL_MAX_C}"
        );
        assert!(
            a.ncols() <= u32::MAX as usize,
            "SellMatrix: column count exceeds u32 index storage"
        );
        let sigma = sigma.max(c).div_ceil(c) * c;
        let nrows = a.nrows();
        let n_lanes = nrows.div_ceil(c) * c;
        let n_chunks = n_lanes / c;

        // Window-local sort: rows by (length desc, index asc) — fully
        // deterministic, and padding lanes (length 0) sort last.
        let mut perm = Vec::with_capacity(n_lanes);
        let mut window: Vec<(usize, usize)> = Vec::with_capacity(sigma);
        let row_ptr = a.row_ptr();
        let mut w0 = 0;
        while w0 < nrows {
            let w1 = (w0 + sigma).min(nrows);
            window.clear();
            window.extend((w0..w1).map(|r| (row_ptr[r + 1] - row_ptr[r], r)));
            window.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
            perm.extend(window.iter().map(|&(_, r)| r));
            w0 = w1;
        }
        perm.resize(n_lanes, PAD);

        let row_len: Vec<usize> = perm
            .iter()
            .map(|&r| {
                if r == PAD {
                    0
                } else {
                    row_ptr[r + 1] - row_ptr[r]
                }
            })
            .collect();

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        chunk_ptr.push(0usize);
        for ch in 0..n_chunks {
            // Lanes descend in length, so the chunk width is lane 0's.
            let width = row_len[ch * c];
            chunk_ptr.push(chunk_ptr[ch] + width * c);
        }

        let slots = *chunk_ptr.last().unwrap_or(&0);
        let mut col_idx = vec![0u32; slots];
        let mut values = vec![0f64; slots];
        for ch in 0..n_chunks {
            let base = chunk_ptr[ch];
            for lane in 0..c {
                let r = perm[ch * c + lane];
                if r == PAD {
                    continue;
                }
                let cols = a.row_cols(r);
                let vals = a.row_vals(r);
                for (j, (&cj, &vj)) in cols.iter().zip(vals).enumerate() {
                    col_idx[base + j * c + lane] = cj as u32;
                    values[base + j * c + lane] = vj;
                }
            }
        }

        SellMatrix {
            nrows,
            ncols: a.ncols(),
            nnz: a.nnz(),
            c,
            sigma,
            perm,
            row_len,
            chunk_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries of the source matrix (excludes padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The chunk height `C`.
    pub fn chunk_height(&self) -> usize {
        self.c
    }

    /// The effective sorting window `σ` (rounded to a multiple of `C`).
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Allocated value slots including padding.
    pub fn padded_slots(&self) -> usize {
        self.values.len()
    }

    /// `padded_slots / nnz` — the storage (and wasted-lane) overhead of
    /// the layout; `1.0` means no padding at all.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_slots() as f64 / self.nnz as f64
        }
    }

    /// Bytes of one in-memory copy (perm, lengths, pointers, padded arrays).
    pub fn storage_bytes(&self) -> u64 {
        ((self.perm.len() + self.row_len.len() + self.chunk_ptr.len())
            * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Serial SELL-C-σ product `y = A x`, bit-identical to
    /// [`CsrMatrix::spmv`] on the source matrix.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "sell spmv: y length mismatch");
        for (w, out) in y.chunks_mut(self.sigma).enumerate() {
            self.spmv_window(w, x, out);
        }
    }

    /// Window-parallel product `y = A x`, bit-identical to
    /// [`SellMatrix::spmv`] (and therefore to the CSR reference): the
    /// row permutation is window-local, so each σ-window's `y` slice is
    /// written by exactly one worker and scheduling cannot reorder any
    /// accumulation.
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell par_spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "sell par_spmv: y length mismatch");
        let windows = self.nrows.div_ceil(self.sigma.max(1));
        // With one effective worker the parallel dispatch is pure
        // overhead; run the identical serial kernel instead.
        if windows <= 1 || rayon::effective_num_threads() <= 1 {
            for (w, out) in y.chunks_mut(self.sigma).enumerate() {
                self.spmv_window(w, x, out);
            }
            return;
        }
        y.par_chunks_mut(self.sigma)
            .enumerate()
            .for_each(|(w, out)| self.spmv_window(w, x, out));
    }

    /// Size-gated product `y = A x`: window-parallel for matrices with
    /// at least [`par_spmv_threshold`] stored entries when more than one
    /// effective worker is available, serial otherwise. Both kernels are
    /// bit-identical, so the gate is purely a performance decision.
    pub fn spmv_auto(&self, x: &[f64], y: &mut [f64]) {
        if self.nnz >= par_spmv_threshold() && rayon::effective_num_threads() > 1 {
            self.par_spmv(x, y);
        } else {
            self.spmv(x, y);
        }
    }

    /// Computes one σ-window of the product into `out` (the `y` slice
    /// of rows `[w*σ, w*σ + out.len())`).
    fn spmv_window(&self, w: usize, x: &[f64], out: &mut [f64]) {
        // The default chunk height gets a monomorphized kernel whose
        // inner loop has a compile-time lane count; other heights (test
        // configurations, tuning experiments) share a dynamic fallback.
        if self.c == SELL_DEFAULT_C {
            self.spmv_window_fixed::<SELL_DEFAULT_C>(w, x, out);
        } else {
            self.spmv_window_dyn(w, x, out);
        }
    }

    /// `spmv_window` for chunk height known at compile time. Splitting
    /// each chunk at the shortest lane's length gives a *full* region
    /// where all `C` lanes are live — a fixed `C`-wide block over
    /// `[f64; C]` column groups that the compiler unrolls into `C`
    /// independent accumulator chains with no per-lane bounds checks —
    /// and a short tail where the active prefix shrinks per step.
    fn spmv_window_fixed<const C: usize>(&self, w: usize, x: &[f64], out: &mut [f64]) {
        let chunks_per_window = self.sigma / C;
        let ch0 = w * chunks_per_window;
        let ch1 = (ch0 + chunks_per_window).min(self.chunk_ptr.len() - 1);
        let row0 = w * self.sigma;
        for ch in ch0..ch1 {
            let base = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - base) / C;
            let lane0 = ch * C;
            let mut acc = [0.0f64; C];
            let (cols, _) = self.col_idx[base..base + width * C].as_chunks::<C>();
            let (vals, _) = self.values[base..base + width * C].as_chunks::<C>();
            // All lanes are live below the shortest lane's length.
            let full = self.row_len[lane0 + C - 1].min(width);
            for (cs, vs) in cols.iter().zip(vals).take(full) {
                for l in 0..C {
                    acc[l] += vs[l] * x[cs[l] as usize];
                }
            }
            // Tail: lanes are sorted by descending length, so the lanes
            // still active at column step j form a prefix; shrink the
            // bound instead of multiplying padding into the
            // accumulators.
            let mut active = C;
            for j in full..width {
                while active > 0 && self.row_len[lane0 + active - 1] <= j {
                    active -= 1;
                }
                let (cs, vs) = (&cols[j], &vals[j]);
                for (l, a) in acc[..active].iter_mut().enumerate() {
                    *a += vs[l] * x[cs[l] as usize];
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                let r = self.perm[lane0 + l];
                if r != PAD {
                    out[r - row0] = a;
                }
            }
        }
    }

    /// `spmv_window` for arbitrary chunk heights (accumulators sized by
    /// [`SELL_MAX_C`], loop bounds dynamic).
    fn spmv_window_dyn(&self, w: usize, x: &[f64], out: &mut [f64]) {
        let chunks_per_window = self.sigma / self.c;
        let ch0 = w * chunks_per_window;
        let ch1 = (ch0 + chunks_per_window).min(self.chunk_ptr.len() - 1);
        let row0 = w * self.sigma;
        let mut acc = [0.0f64; SELL_MAX_C];
        for ch in ch0..ch1 {
            let base = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - base) / self.c;
            let lane0 = ch * self.c;
            acc[..self.c].fill(0.0);
            // Lanes are sorted by descending length, so the lanes still
            // active at column step j form a prefix; shrink the bound
            // instead of multiplying padding into the accumulators.
            let mut active = self.c;
            while active > 0 && self.row_len[lane0 + active - 1] == 0 {
                active -= 1;
            }
            for j in 0..width {
                while active > 0 && self.row_len[lane0 + active - 1] <= j {
                    active -= 1;
                }
                let col = base + j * self.c;
                for (l, a) in acc[..active].iter_mut().enumerate() {
                    *a += self.values[col + l] * x[self.col_idx[col + l] as usize];
                }
            }
            for (l, &a) in acc[..self.c].iter().enumerate() {
                let r = self.perm[lane0 + l];
                if r != PAD {
                    out[r - row0] = a;
                }
            }
        }
    }
}

/// Storage formats the solver workspaces can run their operator in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Compressed sparse row — the reference layout.
    Csr,
    /// SELL-C-σ with the default `C` and `σ`.
    Sell,
}

impl Format {
    /// Short lowercase name (`"csr"` / `"sell"`), used in bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Format::Csr => "csr",
            Format::Sell => "sell",
        }
    }
}

/// Stored-entry count below which [`select_format`] always answers
/// [`Format::Csr`]: small operators (local-CG diagonal blocks, test
/// matrices) would pay conversion and cache-key hashing without enough
/// SpMV work to ever earn it back.
pub const SELL_MIN_NNZ: usize = 10_000;

/// Padding-ratio ceiling for [`select_format`]: above this, the wasted
/// lanes cost more than the lane parallelism wins.
pub const SELL_MAX_PADDING: f64 = 1.25;

/// Deterministic format choice for an operator, from structure alone.
///
/// Computes the exact padding ratio a default-parameter SELL conversion
/// would have — per σ-window, rows sorted by descending length, each
/// C-chunk padded to its longest row — without materializing the
/// conversion. Matrices whose row lengths vary so much inside a window
/// that padding exceeds [`SELL_MAX_PADDING`] (high row-length variance)
/// stay on CSR. A pure function of the matrix structure, so the same
/// operator always selects the same format on every machine.
pub fn select_format(a: &CsrMatrix) -> Format {
    if a.nnz() < SELL_MIN_NNZ {
        return Format::Csr;
    }
    let (c, sigma) = (SELL_DEFAULT_C, SELL_DEFAULT_SIGMA);
    let row_ptr = a.row_ptr();
    let mut padded = 0usize;
    let mut lens: Vec<usize> = Vec::with_capacity(sigma);
    let mut w0 = 0;
    while w0 < a.nrows() {
        let w1 = (w0 + sigma).min(a.nrows());
        lens.clear();
        lens.extend((w0..w1).map(|r| row_ptr[r + 1] - row_ptr[r]));
        lens.sort_unstable_by(|x, y| y.cmp(x));
        for chunk in lens.chunks(c) {
            padded += chunk[0] * c;
        }
        w0 = w1;
    }
    if padded as f64 <= SELL_MAX_PADDING * a.nnz() as f64 {
        Format::Sell
    } else {
        Format::Csr
    }
}

/// An SpMV operator bound to the format [`select_format`] chose.
///
/// Solver workspaces construct one per operator and call
/// [`SpmvOperator::apply`] where they used to call
/// [`CsrMatrix::spmv_auto`]; every path is bit-identical to the CSR
/// reference, so the selection is invisible in results. The SELL
/// conversion is shared through the global artifact cache, so the many
/// campaign units reusing one operator convert it once.
#[derive(Debug, Clone)]
pub struct SpmvOperator<'a> {
    csr: &'a CsrMatrix,
    sell: Option<std::sync::Arc<SellMatrix>>,
}

impl<'a> SpmvOperator<'a> {
    /// Binds `a` to the format the selection heuristic picks for it.
    pub fn select(a: &'a CsrMatrix) -> SpmvOperator<'a> {
        let sell = match select_format(a) {
            Format::Csr => None,
            Format::Sell => Some(crate::artifacts::global().sell(
                crate::artifacts::MatrixKey::of(a),
                a,
                SELL_DEFAULT_C,
                SELL_DEFAULT_SIGMA,
            )),
        };
        SpmvOperator { csr: a, sell }
    }

    /// Binds `a` to CSR unconditionally (no conversion, no hashing).
    pub fn csr_only(a: &'a CsrMatrix) -> SpmvOperator<'a> {
        SpmvOperator { csr: a, sell: None }
    }

    /// The format this operator runs in.
    pub fn format(&self) -> Format {
        if self.sell.is_some() {
            Format::Sell
        } else {
            Format::Csr
        }
    }

    /// The underlying CSR matrix.
    pub fn csr(&self) -> &'a CsrMatrix {
        self.csr
    }

    /// `y = A x` through the selected format's size-gated kernel;
    /// bit-identical to [`CsrMatrix::spmv`] in every configuration.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        match &self.sell {
            Some(sell) => sell.spmv_auto(x, y),
            None => self.csr.spmv_auto(x, y),
        }
    }
}

/// Process-wide count of SELL conversions actually materialized (cache
/// misses); tests use it to confirm sharing.
pub fn conversions() -> u64 {
    CONVERSIONS.load(Ordering::Relaxed)
}

pub(crate) static CONVERSIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::CooMatrix;

    fn laplace_1d(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn spmv_ref(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        a.spmv(x, &mut y);
        y
    }

    #[test]
    fn sell_spmv_is_bit_identical_to_csr_on_stencil() {
        let a = generators::stencil_2d(13, 9);
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| ((i * 37 + 11) % 97) as f64 - 48.0)
            .collect();
        let want = spmv_ref(&a, &x);
        for (c, sigma) in [(1, 1), (4, 8), (4, 64), (8, 8), (8, 4096), (3, 7)] {
            let sell = SellMatrix::from_csr_with(&a, c, sigma);
            let mut got = vec![f64::NAN; a.nrows()];
            sell.spmv(&x, &mut got);
            assert_eq!(want, got, "C={c} sigma={sigma}");
            let mut par = vec![f64::NAN; a.nrows()];
            sell.par_spmv(&x, &mut par);
            assert_eq!(want, par, "par C={c} sigma={sigma}");
        }
    }

    #[test]
    fn sell_handles_empty_rows_and_ragged_tail() {
        // 10 rows, some empty, nrows not a multiple of C.
        let mut coo = CooMatrix::new(10, 10);
        coo.push(0, 0, 3.0).unwrap();
        coo.push(0, 9, -1.0).unwrap();
        coo.push(3, 2, 5.0).unwrap();
        coo.push(7, 7, 1.0).unwrap();
        coo.push(7, 8, 2.0).unwrap();
        coo.push(7, 9, 4.0).unwrap();
        let a = coo.to_csr();
        let x: Vec<f64> = (0..10).map(|i| i as f64 + 0.5).collect();
        let want = spmv_ref(&a, &x);
        for (c, sigma) in [(4, 4), (8, 16), (2, 6)] {
            let sell = SellMatrix::from_csr_with(&a, c, sigma);
            let mut got = vec![f64::NAN; 10];
            sell.spmv(&x, &mut got);
            assert_eq!(want, got, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn sell_padding_never_reads_x() {
        // Padding slots carry value 0.0 and column 0. If a kernel folded
        // them into the accumulators, `0.0 * x[0]` with a non-finite
        // x[0] would poison every short row's result with NaN. No real
        // entry references column 0 here, so CSR is finite — SELL must
        // match it bit for bit.
        let mut coo = CooMatrix::new(6, 6);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 3, -1.0).unwrap();
        coo.push(0, 5, 4.0).unwrap();
        coo.push(1, 2, 1.5).unwrap();
        coo.push(3, 4, -2.5).unwrap();
        coo.push(5, 5, 1.0).unwrap();
        let a = coo.to_csr();
        let mut x = vec![1.0; 6];
        x[0] = f64::INFINITY;
        let want = spmv_ref(&a, &x);
        assert!(want.iter().all(|v| v.is_finite()));
        for (c, sigma) in [(4, 8), (8, 8), (2, 4)] {
            let sell = SellMatrix::from_csr_with(&a, c, sigma);
            let mut got = vec![f64::NAN; 6];
            sell.spmv(&x, &mut got);
            assert_eq!(want, got, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn padding_ratio_is_one_for_uniform_rows() {
        let a = laplace_1d(64);
        // Interior rows have 3 entries, the two boundary rows 2 — near 1.
        let sell = SellMatrix::from_csr_with(&a, 4, 64);
        assert!(sell.padding_ratio() < 1.05, "{}", sell.padding_ratio());
        assert_eq!(sell.nnz(), a.nnz());
        assert!(sell.storage_bytes() > 0);
    }

    #[test]
    fn sigma_rounds_up_to_chunk_multiple() {
        let a = laplace_1d(32);
        let sell = SellMatrix::from_csr_with(&a, 4, 6);
        assert_eq!(sell.sigma(), 8);
        assert_eq!(sell.chunk_height(), 4);
    }

    #[test]
    fn select_format_keeps_small_matrices_on_csr() {
        let a = laplace_1d(16);
        assert_eq!(select_format(&a), Format::Csr);
    }

    #[test]
    fn select_format_picks_sell_for_stencils() {
        let a = generators::stencil_2d(64, 64);
        assert!(a.nnz() >= SELL_MIN_NNZ);
        assert_eq!(select_format(&a), Format::Sell);
    }

    /// Heavy-tailed row lengths (geometrically decreasing, all
    /// distinct): even after σ-sorting, each leading chunk pads its
    /// seven shorter lanes up to a much longer one, so the padding
    /// ratio blows past the ceiling.
    fn heavy_tail_rows() -> CsrMatrix {
        let n = 12_000;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 0..14usize {
            for j in 1..(6000usize >> i) {
                coo.push(i, (i + j) % n, 0.5).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn select_format_rejects_high_variance_rows() {
        let a = heavy_tail_rows();
        assert!(a.nnz() >= SELL_MIN_NNZ);
        assert!(SellMatrix::from_csr(&a).padding_ratio() > SELL_MAX_PADDING);
        assert_eq!(select_format(&a), Format::Csr);
    }

    #[test]
    fn select_format_matches_materialized_padding() {
        for a in [generators::stencil_2d(64, 64), heavy_tail_rows()] {
            assert!(a.nnz() >= SELL_MIN_NNZ);
            let within = SellMatrix::from_csr(&a).padding_ratio() <= SELL_MAX_PADDING;
            assert_eq!(select_format(&a) == Format::Sell, within);
        }
    }

    #[test]
    fn operator_applies_identically_in_both_formats() {
        let a = generators::stencil_2d(48, 48);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 13) as f64 - 6.0).collect();
        let want = spmv_ref(&a, &x);
        let sel = SpmvOperator::select(&a);
        let mut got = vec![0.0; a.nrows()];
        sel.apply(&x, &mut got);
        assert_eq!(want, got);
        let csr = SpmvOperator::csr_only(&a);
        assert_eq!(csr.format(), Format::Csr);
        let mut got2 = vec![0.0; a.nrows()];
        csr.apply(&x, &mut got2);
        assert_eq!(want, got2);
    }
}
