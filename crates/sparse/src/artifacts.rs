//! Content-keyed in-memory cache for derived matrix artifacts.
//!
//! A campaign run executes hundreds of units against a handful of
//! matrices, and every fault event re-extracts the same diagonal
//! blocks, row panels, and Gram matrices from the same immutable
//! operator. This module memoizes those extractions behind a
//! process-global cache keyed by *content* — a [`MatrixKey`] derived
//! from the matrix's dimensions and stored bytes — plus the block
//! ranges, handing out `Arc`s so callers share one materialization.
//!
//! Determinism: the cache only changes *when* an artifact is computed,
//! never *what* is computed — a hit returns a value bit-identical to
//! what the miss path would have built, because the underlying
//! extractions are pure functions of matrix content, and the key is
//! content-derived. All maps are `BTreeMap`s, so no iteration order
//! anywhere depends on a randomized hasher.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::dense::DenseMatrix;
use crate::sell::SellMatrix;
use crate::CsrMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Entry cap per artifact map; reaching it clears that map (a
/// deterministic, content-independent policy) before inserting.
const MAX_ENTRIES: usize = 4096;

/// Content identity of a matrix: dimensions, stored-entry count, and an
/// FNV-1a hash folded over the CSR arrays (structure and value bits).
///
/// Two matrices with equal content always produce equal keys, so keying
/// a cache by `MatrixKey` is sound regardless of where the matrix lives
/// in memory; the explicit dimension fields disambiguate the unlikely
/// 64-bit hash collision between differently-shaped matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatrixKey {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    hash: u64,
}

impl MatrixKey {
    /// Computes the key for a matrix. `O(nnz)` word-level hashing —
    /// call it once per matrix and reuse the `Copy` key.
    pub fn of(a: &CsrMatrix) -> MatrixKey {
        let mut h = FNV_OFFSET;
        h = fnv_word(h, a.nrows() as u64);
        h = fnv_word(h, a.ncols() as u64);
        for &p in a.row_ptr() {
            h = fnv_word(h, p as u64);
        }
        for &c in a.col_idx() {
            h = fnv_word(h, c as u64);
        }
        for &v in a.values() {
            h = fnv_word(h, v.to_bits());
        }
        MatrixKey {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            hash: h,
        }
    }

    /// The folded 64-bit content hash.
    pub fn raw_hash(self) -> u64 {
        self.hash
    }
}

/// One FNV-1a step absorbing a 64-bit word.
fn fnv_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// `(matrix, rows.start, rows.end, cols.start, cols.end)` — identity of
/// one block extraction.
type BlockKey = (MatrixKey, usize, usize, usize, usize);

/// `(matrix, rows.start, rows.end)` — identity of one row-range artifact.
type RowKey = (MatrixKey, usize, usize);

/// `(matrix, C, σ)` — identity of one SELL-C-σ conversion.
type SellKey = (MatrixKey, usize, usize);

/// Hit/miss/occupancy counters, snapshot via [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the artifact.
    pub misses: u64,
    /// Artifacts currently resident across all maps.
    pub entries: usize,
}

impl ArtifactStats {
    /// Hit fraction in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached support panel: the extracted rows plus their column support.
type SupportPanel = Arc<(CsrMatrix, Vec<usize>)>;

/// Process-global memo for block extractions and derived panels.
///
/// Disabled caches degrade to pass-through builders (every lookup
/// computes fresh and counts nothing), which is how the benchmark
/// measures the uncached baseline.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    sparse_blocks: Mutex<BTreeMap<BlockKey, Arc<CsrMatrix>>>,
    dense_blocks: Mutex<BTreeMap<BlockKey, Arc<DenseMatrix>>>,
    row_panels: Mutex<BTreeMap<RowKey, Arc<CsrMatrix>>>,
    grams: Mutex<BTreeMap<RowKey, Arc<DenseMatrix>>>,
    support_panels: Mutex<BTreeMap<RowKey, SupportPanel>>,
    sells: Mutex<BTreeMap<SellKey, Arc<SellMatrix>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disabled: AtomicBool,
}

impl ArtifactCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Whether lookups consult the memo (true by default).
    pub fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::Relaxed)
    }

    /// Turns the memo on or off. Disabling does not drop resident
    /// entries; pair with [`ArtifactCache::clear`] for a cold baseline.
    pub fn set_enabled(&self, on: bool) {
        self.disabled.store(!on, Ordering::Relaxed);
    }

    /// Drops every resident artifact and zeroes the counters.
    pub fn clear(&self) {
        lock(&self.sparse_blocks).clear();
        lock(&self.dense_blocks).clear();
        lock(&self.row_panels).clear();
        lock(&self.grams).clear();
        lock(&self.support_panels).clear();
        lock(&self.sells).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArtifactStats {
        ArtifactStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock(&self.sparse_blocks).len()
                + lock(&self.dense_blocks).len()
                + lock(&self.row_panels).len()
                + lock(&self.grams).len()
                + lock(&self.support_panels).len()
                + lock(&self.sells).len(),
        }
    }

    /// Memoized [`CsrMatrix::sparse_block`].
    pub fn sparse_block(
        &self,
        key: MatrixKey,
        a: &CsrMatrix,
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Arc<CsrMatrix> {
        let id = (key, rows.start, rows.end, cols.start, cols.end);
        self.memo(&self.sparse_blocks, id, || a.sparse_block(rows, cols))
    }

    /// Memoized [`CsrMatrix::dense_block`].
    pub fn dense_block(
        &self,
        key: MatrixKey,
        a: &CsrMatrix,
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Arc<DenseMatrix> {
        let id = (key, rows.start, rows.end, cols.start, cols.end);
        self.memo(&self.dense_blocks, id, || a.dense_block(rows, cols))
    }

    /// Memoized [`CsrMatrix::row_panel`].
    pub fn row_panel(&self, key: MatrixKey, a: &CsrMatrix, rows: Range<usize>) -> Arc<CsrMatrix> {
        let id = (key, rows.start, rows.end);
        self.memo(&self.row_panels, id, || a.row_panel(rows))
    }

    /// Memoized Gram matrix of the row panel `A[rows, :]`; `build` runs
    /// only on a miss and must be a pure function of `(key, rows)`.
    pub fn gram(
        &self,
        key: MatrixKey,
        rows: Range<usize>,
        build: impl FnOnce() -> DenseMatrix,
    ) -> Arc<DenseMatrix> {
        self.memo(&self.grams, (key, rows.start, rows.end), build)
    }

    /// Memoized compressed tall panel plus its support-row indices;
    /// `build` runs only on a miss and must be a pure function of
    /// `(key, rows)`.
    pub fn support_panel(
        &self,
        key: MatrixKey,
        rows: Range<usize>,
        build: impl FnOnce() -> (CsrMatrix, Vec<usize>),
    ) -> Arc<(CsrMatrix, Vec<usize>)> {
        self.memo(&self.support_panels, (key, rows.start, rows.end), build)
    }

    /// Memoized [`SellMatrix::from_csr_with`] conversion: every solver
    /// workspace and campaign unit reusing one operator shares a single
    /// SELL materialization, like `row_panel` shares panel extractions.
    pub fn sell(&self, key: MatrixKey, a: &CsrMatrix, c: usize, sigma: usize) -> Arc<SellMatrix> {
        self.memo(&self.sells, (key, c, sigma), || {
            crate::sell::CONVERSIONS.fetch_add(1, Ordering::Relaxed);
            SellMatrix::from_csr_with(a, c, sigma)
        })
    }

    /// Shared lookup-or-build path. The builder runs outside the lock,
    /// so a racing miss may build twice; both builds are bit-identical
    /// (pure content-derived artifacts) and the first insert wins.
    fn memo<K: Ord + Copy, V>(
        &self,
        map: &Mutex<BTreeMap<K, Arc<V>>>,
        key: K,
        build: impl FnOnce() -> V,
    ) -> Arc<V> {
        if !self.enabled() {
            return Arc::new(build());
        }
        if let Some(hit) = lock(map).get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let made = Arc::new(build());
        let mut m = lock(map);
        if m.len() >= MAX_ENTRIES {
            m.clear();
        }
        m.entry(key).or_insert(made).clone()
    }
}

/// Recovers the guard from a poisoned lock: every critical section here
/// is a pure map operation, so a panic elsewhere cannot leave the map
/// logically inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-global artifact cache.
pub fn global() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(ArtifactCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0 + i as f64).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(2, 3, -0.5).unwrap();
        coo.to_csr()
    }

    #[test]
    fn key_is_content_derived_not_address_derived() {
        let a = sample();
        let b = sample();
        assert_eq!(MatrixKey::of(&a), MatrixKey::of(&b));
        let c = CsrMatrix::identity(4);
        assert_ne!(MatrixKey::of(&a), MatrixKey::of(&c));
    }

    #[test]
    fn key_distinguishes_value_changes() {
        let a = sample();
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0 + i as f64).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(2, 3, -0.25).unwrap();
        let b = coo.to_csr();
        assert_ne!(MatrixKey::of(&a), MatrixKey::of(&b));
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_one_allocation() {
        let cache = ArtifactCache::new();
        let a = sample();
        let key = MatrixKey::of(&a);
        let first = cache.sparse_block(key, &a, 1..3, 1..3);
        let second = cache.sparse_block(key, &a, 1..3, 1..3);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, a.sparse_block(1..3, 1..3));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_ranges_and_kinds_do_not_collide() {
        let cache = ArtifactCache::new();
        let a = sample();
        let key = MatrixKey::of(&a);
        let b1 = cache.sparse_block(key, &a, 0..2, 0..2);
        let b2 = cache.sparse_block(key, &a, 2..4, 2..4);
        assert_ne!(*b1, *b2);
        let d = cache.dense_block(key, &a, 0..2, 0..2);
        assert_eq!(b1.to_dense(), *d);
        let p = cache.row_panel(key, &a, 0..2);
        assert_eq!(p.ncols(), 4);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn sell_conversions_are_shared_per_parameter_set() {
        let cache = ArtifactCache::new();
        let a = sample();
        let key = MatrixKey::of(&a);
        let first = cache.sell(key, &a, 4, 8);
        let second = cache.sell(key, &a, 4, 8);
        assert!(Arc::ptr_eq(&first, &second));
        let other_c = cache.sell(key, &a, 2, 8);
        assert!(!Arc::ptr_eq(&first, &other_c));
        assert_eq!(first.nnz(), a.nnz());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn disabled_cache_builds_fresh_and_counts_nothing() {
        let cache = ArtifactCache::new();
        cache.set_enabled(false);
        let a = sample();
        let key = MatrixKey::of(&a);
        let first = cache.sparse_block(key, &a, 0..2, 0..2);
        let second = cache.sparse_block(key, &a, 0..2, 0..2);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(*first, *second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let cache = ArtifactCache::new();
        let a = sample();
        let key = MatrixKey::of(&a);
        let _ = cache.row_panel(key, &a, 0..4);
        let _ = cache.row_panel(key, &a, 0..4);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn derived_builders_run_once() {
        let cache = ArtifactCache::new();
        let a = sample();
        let key = MatrixKey::of(&a);
        let mut builds = 0;
        for _ in 0..3 {
            let g = cache.gram(key, 0..2, || {
                builds += 1;
                a.row_panel(0..2).to_dense()
            });
            assert_eq!(g.nrows(), 2);
        }
        assert_eq!(builds, 1);
    }
}
