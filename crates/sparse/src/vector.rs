//! BLAS-1 vector kernels.
//!
//! All kernels are plain slices-in, slices-out so the solver crates can use
//! them on globally stored vectors or on per-rank slices alike. Flop-count
//! helpers feed the cluster performance model.

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Fused `y += alpha * x` returning `yᵀ y`, in one pass over `y`.
///
/// Bit-identical to [`axpy`] followed by `dot(y, y)`: the update and
/// the squared-norm accumulation both walk `y` left to right, and the
/// accumulator folds terms in exactly the order [`dot`]'s `sum()` does.
/// One traversal instead of two halves the memory traffic of the CG
/// residual update.
pub fn axpy_dot(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot: length mismatch");
    let mut acc = 0.0;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
        acc += *yi * *yi;
    }
    acc
}

/// Fused Jacobi application `z = D⁻¹ r` returning `rᵀ z`, in one pass.
///
/// Bit-identical to the two-pass form (elementwise `z[i] = r[i] *
/// inv_diag[i]` followed by [`dot`]`(r, z)`): both walk the vectors left
/// to right and the accumulator folds `r[i] * z[i]` in exactly the order
/// [`dot`]'s `sum()` does. One traversal instead of two halves the
/// memory traffic of the PCG preconditioner step.
pub fn jacobi_dot(inv_diag: &[f64], r: &[f64], z: &mut [f64]) -> f64 {
    assert_eq!(inv_diag.len(), r.len(), "jacobi_dot: length mismatch");
    assert_eq!(r.len(), z.len(), "jacobi_dot: length mismatch");
    let mut acc = 0.0;
    for ((zi, ri), di) in z.iter_mut().zip(r).zip(inv_diag) {
        *zi = ri * di;
        acc += ri * *zi;
    }
    acc
}

/// `y = x + beta * y` (the CG direction update `p = r + beta p`).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Scales `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `||x||₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `||x||∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// `||x - y||₂`.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Flops of a dot product over `n` elements.
pub fn dot_flops(n: usize) -> u64 {
    2 * n as u64
}

/// Flops of an axpy over `n` elements.
pub fn axpy_flops(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_dot_is_bit_identical_to_axpy_then_dot() {
        let x: Vec<f64> = (0..257).map(|i| (i as f64).sin() * 1e3).collect();
        let y0: Vec<f64> = (0..257).map(|i| (i as f64).cos() / 3.0).collect();
        let alpha = -0.731;
        let mut separate = y0.clone();
        axpy(alpha, &x, &mut separate);
        let want = dot(&separate, &separate);
        let mut fused = y0.clone();
        let got = axpy_dot(alpha, &x, &mut fused);
        assert_eq!(separate, fused);
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn jacobi_dot_is_bit_identical_to_apply_then_dot() {
        let n = 193;
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / (2.0 + (i % 9) as f64)).collect();
        let r: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 41.0 - 17.0).collect();
        let mut separate = vec![0.0; n];
        for ((zi, ri), di) in separate.iter_mut().zip(&r).zip(&inv_diag) {
            *zi = ri * di;
        }
        let want = dot(&r, &separate);
        let mut fused = vec![f64::NAN; n];
        let got = jacobi_dot(&inv_diag, &r, &mut fused);
        assert_eq!(separate, fused);
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn xpby_matches_cg_direction_update() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn norms_are_consistent() {
        let x = vec![3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(dist2(&x, &x), 0.0);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }
}
