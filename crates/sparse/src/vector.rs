//! BLAS-1 vector kernels.
//!
//! All kernels are plain slices-in, slices-out so the solver crates can use
//! them on globally stored vectors or on per-rank slices alike. Flop-count
//! helpers feed the cluster performance model.

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the CG direction update `p = r + beta p`).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Scales `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `||x||₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `||x||∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// `||x - y||₂`.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Flops of a dot product over `n` elements.
pub fn dot_flops(n: usize) -> u64 {
    2 * n as u64
}

/// Flops of an axpy over `n` elements.
pub fn axpy_flops(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn xpby_matches_cg_direction_update() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn norms_are_consistent() {
        let x = vec![3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(dist2(&x, &x), 0.0);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }
}
