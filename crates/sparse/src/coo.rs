//! Coordinate-format (triplet) sparse matrices.
//!
//! [`CooMatrix`] is the mutable construction format: entries are appended in
//! any order (duplicates allowed, summed on conversion) and then converted
//! to [`CsrMatrix`] for computation.
//!
//! [`CsrMatrix`]: crate::CsrMatrix

use crate::{CsrMatrix, LinalgError, Result};

/// A sparse matrix in coordinate (triplet) format.
///
/// Primarily a builder for [`CsrMatrix`]. Duplicate coordinates are legal
/// and are summed during conversion, which makes assembly of finite-element
/// style matrices (e.g. the Wathen generator) straightforward.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends the entry `(row, col, val)`.
    ///
    /// Returns an error if the coordinate is out of bounds. Zero values are
    /// kept; use [`CsrMatrix::prune`] after conversion if explicit zeros are
    /// undesirable.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(LinalgError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Appends a symmetric pair of entries `(row, col, val)` and
    /// `(col, row, val)`; the diagonal is pushed once.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        self.push(row, col, val)?;
        if row != col {
            self.push(col, row, val)?;
        }
        Ok(())
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR format, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        // Classic two-pass counting sort on rows, then a per-row column sort
        // with duplicate coalescing.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = row_counts.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let slot = next[r];
            col_idx[slot] = c;
            values[slot] = v;
            next[r] += 1;
        }

        // Sort within each row and coalesce duplicates.
        let mut out_ptr = vec![0usize; self.nrows + 1];
        let mut out_cols = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr[r + 1] = out_cols.len();
        }

        CsrMatrix::from_raw_parts(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
            // rsls-lint: allow(no-unwrap) -- conversion sorts and merges per row; CSR invariants hold by construction
            .expect("COO->CSR conversion produced invalid CSR; this is a bug")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_entries() {
        let coo = CooMatrix::new(3, 3);
        assert_eq!(coo.nnz(), 0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed_in_csr() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn push_sym_mirrors_off_diagonals() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 2.0).unwrap();
        coo.push_sym(2, 2, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn columns_are_sorted_after_conversion() {
        let mut coo = CooMatrix::new(1, 5);
        for c in [4, 0, 2, 3, 1] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        let row: Vec<usize> = csr.row_cols(0).to_vec();
        assert_eq!(row, vec![0, 1, 2, 3, 4]);
    }
}
