//! LU factorization with partial pivoting.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// This is the factorization the paper's baseline LI reconstruction uses to
/// solve `A_{p_i,p_i} x = y` exactly (Eq. 19, following Agullo et al.).
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower L (unit diagonal implied) and upper U.
    factors: DenseMatrix,
    /// Row permutation: row `i` of `PA` is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Number of row swaps (sign of the determinant permutation).
    swaps: usize,
}

impl Lu {
    /// Factors the square matrix `a`.
    ///
    /// Returns [`LinalgError::Singular`] when a pivot column is numerically
    /// zero.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("LU requires square matrix, got {}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        for k in 0..n {
            // Select pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in k + 1..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= m * u;
                }
            }
        }
        Ok(Lu {
            factors: lu,
            perm,
            swaps,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.nrows()
    }

    /// Solves `A x = b`, overwriting and returning `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "LU solve: rhs length mismatch");
        let n = self.dim();
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (0..self.dim()).fold(sign, |acc, i| acc * self.factors[(i, i)])
    }

    /// Flop count of the factorization: `(2/3) n^3` to first order.
    ///
    /// Used by the cluster performance model when charging the cost of the
    /// LU-based LI baseline.
    pub fn factor_flops(n: usize) -> u64 {
        let n = n as u64;
        (2 * n * n * n) / 3
    }

    /// Flop count of one solve: `2 n^2`.
    pub fn solve_flops(n: usize) -> u64 {
        2 * (n as u64) * (n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.matvec(x, &mut ax);
        ax.iter()
            .zip(b)
            .fold(0.0f64, |m, (l, r)| m.max((l - r).abs()))
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let b = vec![1.0, 2.0, 3.0];
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_matrix_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = DenseMatrix::from_row_major(2, 2, vec![3.0, 1.0, 4.0, 2.0]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flop_counts_have_expected_magnitude() {
        assert_eq!(Lu::factor_flops(10), 666);
        assert_eq!(Lu::solve_flops(10), 200);
    }
}
