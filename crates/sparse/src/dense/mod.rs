//! Dense linear algebra used by the exact reconstruction baselines.
//!
//! The paper's exact LI baseline factors the diagonal block `A_{p_i,p_i}`
//! with LU; the exact LSI baseline solves a least-squares system (with
//! sparse QR in the original work — here via Householder QR or
//! normal-equations Cholesky, see DESIGN.md §4.4).

mod cholesky;
mod lu;
mod matrix;
mod qr;

pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::DenseMatrix;
pub use qr::{lstsq, Qr};
