//! Cholesky factorization of symmetric positive-definite matrices.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// Cholesky factorization `A = L Lᵀ` of an SPD matrix.
///
/// Used by the normal-equations formulation of the exact LSI baseline:
/// `(AᵀA) x = Aᵀβ` (Eq. 20) is SPD whenever `A` has full column rank.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is junk and never read).
    l: DenseMatrix,
}

impl Cholesky {
    /// Factors the SPD matrix `a`.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot becomes
    /// non-positive, which also catches asymmetric input in practice.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "Cholesky requires square matrix, got {}x{}",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        let n = a.nrows();
        let mut l = a.clone();
        for j in 0..n {
            let mut d = l[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let d = d.sqrt();
            l[(j, j)] = d;
            for i in j + 1..n {
                let mut v = l[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / d;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "Cholesky solve: rhs length mismatch");
        let n = self.dim();
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        x
    }

    /// Flop count of the factorization: `n^3 / 3` to first order.
    pub fn factor_flops(n: usize) -> u64 {
        let n = n as u64;
        n * n * n / 3
    }

    /// Flop count of one solve: `2 n^2`.
    pub fn solve_flops(n: usize) -> u64 {
        2 * (n as u64) * (n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_spd_system() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(Cholesky::factor(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = DenseMatrix::from_row_major(2, 2, vec![4.0, 2.0, 2.0, 5.0]);
        let chol = Cholesky::factor(&a).unwrap();
        // L = [2 0; 1 2]
        assert!((chol.l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((chol.l[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((chol.l[(1, 1)] - 2.0).abs() < 1e-14);
    }
}
