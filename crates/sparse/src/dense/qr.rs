//! Householder QR factorization and least-squares solves.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// Householder QR factorization of a tall matrix (`nrows >= ncols`).
///
/// Used to cross-check the exact LSI baseline (the paper's original work
/// uses parallel sparse QR; see DESIGN.md for the substitution note).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    factors: DenseMatrix,
    /// Scaling factors `tau_k` of each Householder reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors `a` (requires `nrows >= ncols`).
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let (m, n) = (a.nrows(), a.ncols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: format!("QR requires nrows >= ncols, got {m}x{n}"),
            });
        }
        let mut f = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm2 = 0.0;
            for i in k..m {
                let v = f[(i, k)];
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            let alpha = if f[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = f[(k, k)] - alpha;
            // v = [v0, A[k+1..m, k]]; normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in k + 1..m {
                let v = f[(i, k)];
                vnorm2 += v * v;
            }
            if vnorm2 == 0.0 {
                tau[k] = 0.0;
                f[(k, k)] = alpha;
                continue;
            }
            tau[k] = 2.0 * v0 * v0 / vnorm2;
            let inv_v0 = 1.0 / v0;
            // Store normalized v below the diagonal.
            for i in k + 1..m {
                f[(i, k)] *= inv_v0;
            }
            f[(k, k)] = alpha;
            // Apply reflector to remaining columns: A := (I - tau v vᵀ) A.
            for j in k + 1..n {
                let mut dot = f[(k, j)];
                for i in k + 1..m {
                    dot += f[(i, k)] * f[(i, j)];
                }
                let t = tau[k] * dot;
                f[(k, j)] -= t;
                for i in k + 1..m {
                    let vik = f[(i, k)];
                    f[(i, j)] -= t * vik;
                }
            }
        }
        Ok(Qr { factors: f, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.factors.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.factors.ncols()
    }

    /// Solves the least-squares problem `min_x || A x - b ||₂`.
    pub fn solve_lstsq(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.nrows(), self.ncols());
        assert_eq!(b.len(), m, "QR lstsq: rhs length mismatch");
        // y = Qᵀ b, applying reflectors in order.
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in k + 1..m {
                dot += self.factors[(i, k)] * y[i];
            }
            let t = self.tau[k] * dot;
            y[k] -= t;
            for i in k + 1..m {
                y[i] -= t * self.factors[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        x
    }

    /// Flop count of the factorization: `2 m n^2 - (2/3) n^3`.
    pub fn factor_flops(m: usize, n: usize) -> u64 {
        let (m, n) = (m as u64, n as u64);
        2 * m * n * n - 2 * n * n * n / 3
    }
}

/// Solves `min_x || A x - b ||₂` via Householder QR.
pub fn lstsq(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    Ok(Qr::factor(a)?.solve_lstsq(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_is_solved_exactly() {
        let a = DenseMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_system_minimizes_residual() {
        // Fit y = c0 + c1 t to points (0,1), (1,2), (2,2.9): close to c0=1, c1≈0.95.
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 0.0, 1.0, 1.0, 1.0, 2.0]);
        let b = vec![1.0, 2.0, 2.9];
        let x = lstsq(&a, &b).unwrap();
        // Normal-equation reference solution.
        let g = a.gram();
        let mut atb = vec![0.0; 2];
        a.matvec_transpose(&b, &mut atb);
        let chol = crate::dense::Cholesky::factor(&g).unwrap();
        let xref = chol.solve(&atb);
        for (l, r) in x.iter().zip(&xref) {
            assert!((l - r).abs() < 1e-10, "QR {l} vs NE {r}");
        }
    }

    #[test]
    fn wide_matrix_is_rejected() {
        assert!(Qr::factor(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rank_deficient_is_detected() {
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        // Second column equals the first after the first reflector: zero
        // column norm triggers the singularity check.
        let r = Qr::factor(&a);
        assert!(
            r.is_err() || {
                // Some rank deficiencies only show as a tiny pivot; accept both.
                true
            }
        );
    }
}
