//! Row-major dense matrices.

use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.ncols);
        head[a * self.ncols..(a + 1) * self.ncols].swap_with_slice(&mut tail[..self.ncols]);
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            y[r] = self.row(r).iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Transposed product `y = Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        y.fill(0.0);
        for r in 0..self.nrows {
            let xr = x[r];
            for (out, a) in y.iter_mut().zip(self.row(r)) {
                *out += a * xr;
            }
        }
    }

    /// Dense matrix product `A * B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Gram matrix `Aᵀ A` (symmetric, used for normal equations).
    pub fn gram(&self) -> DenseMatrix {
        let mut g = DenseMatrix::zeros(self.ncols, self.ncols);
        for r in 0..self.nrows {
            let row = self.row(r);
            for i in 0..self.ncols {
                let ai = row[i];
                if ai == 0.0 {
                    continue;
                }
                for j in i..self.ncols {
                    g[(i, j)] += ai * row[j];
                }
            }
        }
        for i in 0..self.ncols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i = DenseMatrix::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        i.matvec(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut m = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_row_major(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 3.0]);
        let g = a.gram();
        assert_eq!(g[(0, 0)], 2.0);
        assert_eq!(g[(0, 1)], -1.0);
        assert_eq!(g[(1, 0)], -1.0);
        assert_eq!(g[(1, 1)], 14.0);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut y = vec![0.0; 2];
        a.matvec_transpose(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }
}
