#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Triangular solves, factorizations, and banded assembly are written with
// explicit index loops that mirror the textbook formulas; iterator
// adapters obscure rather than clarify them here.
#![allow(clippy::needless_range_loop)]
//! Sparse and dense linear-algebra substrate for the RSLS reproduction.
//!
//! This crate provides everything the resilient-solver stack needs from a
//! numerical-kernels library (the role RAPtor plays in the paper):
//!
//! * [`CooMatrix`] / [`CsrMatrix`] — sparse matrix storage with serial and
//!   [rayon]-parallel sparse matrix–vector products,
//! * [`sell`] — SELL-C-σ (sliced ELLPACK) storage with bit-identical
//!   serial and window-parallel SpMV, plus the deterministic
//!   format-selection heuristic solver workspaces use ([`SpmvOperator`]),
//! * [`Partition`] — contiguous block-row partitions used to emulate the
//!   paper's MPI data distribution (Figure 2),
//! * [`generators`] — procedural SPD matrix generators (5-point stencil,
//!   Wathen, banded random SPD with tunable diagonal dominance, irregular
//!   long-range coupling) standing in for the SuiteSparse suite,
//! * [`dense`] — dense LU / Cholesky / Householder-QR factorizations and a
//!   least-squares solver used by the exact LI / LSI reconstruction
//!   baselines (§4.1 of the paper),
//! * [`vector`] — BLAS-1 kernels (dot, axpy, norms) with flop counting,
//! * [`artifacts`] — content-keyed in-memory cache sharing block
//!   extractions (diagonal blocks, row panels, Gram matrices) across the
//!   many campaign units that reuse one operator,
//! * [`io`] — Matrix Market read/write for interoperability.

pub mod artifacts;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod generators;
pub mod io;
pub mod partition;
pub mod sell;
pub mod vector;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use partition::Partition;
pub use sell::{Format, SellMatrix, SpmvOperator};

/// Errors produced by matrix construction and factorization routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A matrix dimension was zero or inconsistent with its data.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An entry coordinate lies outside the matrix.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Pivot index at which the failure was detected.
        pivot: usize,
    },
    /// Parsing a Matrix Market stream failed.
    Parse {
        /// Line number (1-based) where the failure occurred.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
