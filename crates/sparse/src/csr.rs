//! Compressed sparse row matrices and matrix–vector kernels.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// Stored-entry threshold above which [`CsrMatrix::spmv_auto`] switches
/// to the chunked parallel kernel. `0` means "not yet initialized from
/// the environment"; [`par_spmv_threshold`] resolves that lazily.
static PAR_SPMV_NNZ: AtomicUsize = AtomicUsize::new(0);

/// Default for [`par_spmv_threshold`]: high enough that small campaign
/// matrices (which already run many units in parallel) never pay scoped
/// thread-spawn overhead per iteration, low enough that the large
/// scaling-study matrices go parallel.
pub const PAR_SPMV_NNZ_DEFAULT: usize = 400_000;

/// Rows per parallel chunk in [`CsrMatrix::spmv_auto`]. Large enough to
/// amortize dispatch, small enough to load-balance irregular rows.
pub const PAR_SPMV_CHUNK_ROWS: usize = 4096;

/// The active `nnz` threshold for [`CsrMatrix::spmv_auto`].
///
/// Resolved once from the `RSLS_PAR_SPMV_NNZ` environment variable
/// (default [`PAR_SPMV_NNZ_DEFAULT`]); a value of `0` disables the
/// parallel path entirely. The gate only selects *which* bit-identical
/// kernel runs, so it can never affect results — only speed.
pub fn par_spmv_threshold() -> usize {
    match PAR_SPMV_NNZ.load(Ordering::Relaxed) {
        0 => {
            let v = std::env::var("RSLS_PAR_SPMV_NNZ")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .map_or(
                    PAR_SPMV_NNZ_DEFAULT,
                    |n| if n == 0 { usize::MAX } else { n },
                );
            PAR_SPMV_NNZ.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Overrides the [`par_spmv_threshold`] gate for this process.
///
/// `usize::MAX` forces the serial kernel, `1` forces the parallel one.
/// Tests use this instead of environment variables, which race between
/// threads of one test binary.
pub fn set_par_spmv_threshold(nnz: usize) {
    PAR_SPMV_NNZ.store(nnz.max(1), Ordering::Relaxed);
}

/// An immutable sparse matrix in compressed-sparse-row format.
///
/// # Example
///
/// ```
/// use rsls_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0).unwrap();
/// coo.push_sym(0, 1, -1.0).unwrap();
/// coo.push(1, 1, 2.0).unwrap();
/// let a = coo.to_csr();
///
/// let mut y = vec![0.0; 2];
/// a.spmv(&[1.0, 2.0], &mut y);
/// assert_eq!(y, vec![0.0, 3.0]);
/// ```
///
/// The CSR invariants are validated on construction and relied upon
/// everywhere else:
///
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`,
/// * `row_ptr` is non-decreasing,
/// * column indices within each row are strictly increasing and in bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating all invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "row_ptr has length {} but expected {}",
                    row_ptr.len(),
                    nrows + 1
                ),
            });
        }
        if row_ptr[0] != 0 || row_ptr[nrows] != col_idx.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "row_ptr endpoints do not match col_idx length".to_string(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "col_idx and values have different lengths".to_string(),
            });
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(LinalgError::DimensionMismatch {
                    context: format!("row_ptr decreases at row {r}"),
                });
            }
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinalgError::DimensionMismatch {
                        context: format!("columns not strictly increasing in row {r}"),
                    });
                }
            }
            if let Some(&c) = row.last() {
                if c >= ncols {
                    return Err(LinalgError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (explicit) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average number of stored entries per row.
    pub fn nnz_per_row(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// The CSR row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The CSR column-index array (one entry per stored value).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values, row-major (parallel to [`CsrMatrix::col_idx`]).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r` (parallel to [`CsrMatrix::row_cols`]).
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Value at `(r, c)`, `0.0` when the entry is not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&c) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Serial sparse matrix–vector product `y = A x`.
    ///
    /// `inline(never)` keeps exactly one compiled copy of this loop:
    /// the parallel kernels delegate here when only one worker is
    /// effective, and an inlined duplicate inside a delegating caller
    /// can codegen a few percent differently — enough to read as a
    /// phantom "parallel slowdown" in the kernel matrix.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    #[inline(never)]
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for r in 0..self.nrows {
            let mut acc = 0.0;
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Rayon-parallel sparse matrix–vector product `y = A x`.
    ///
    /// Rows are distributed over the rayon thread pool; results are
    /// bit-identical to [`CsrMatrix::spmv`] because each row is reduced
    /// serially.
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "par_spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "par_spmv: y length mismatch");
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let values = &self.values;
        y.par_iter_mut().enumerate().for_each(|(r, out)| {
            let mut acc = 0.0;
            for k in row_ptr[r]..row_ptr[r + 1] {
                acc += values[k] * x[col_idx[k]];
            }
            *out = acc;
        });
    }

    /// Row-chunked parallel product `y = A x`, bit-identical to
    /// [`CsrMatrix::spmv`].
    ///
    /// The output is split into chunks of `chunk_rows` rows; worker
    /// threads claim chunks from a shared cursor, and each row is still
    /// reduced serially, so chunking and scheduling can never change a
    /// single bit of the result. Compared to [`CsrMatrix::par_spmv`]
    /// (one static chunk per thread) the finer chunks load-balance
    /// matrices whose nnz varies across row ranges.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`, `y.len() != nrows`, or
    /// `chunk_rows == 0`.
    pub fn par_spmv_chunked(&self, x: &[f64], y: &mut [f64], chunk_rows: usize) {
        assert_eq!(x.len(), self.ncols, "par_spmv_chunked: x length mismatch");
        assert_eq!(y.len(), self.nrows, "par_spmv_chunked: y length mismatch");
        assert!(chunk_rows > 0, "par_spmv_chunked: chunk_rows must be > 0");
        // One effective worker cannot win anything from the chunked
        // dispatch, but its differently-shaped inner loop can lose to
        // the serial kernel's codegen (BENCH_PR5 recorded exactly that
        // as a 0.84x "parallel speedup" measured on one thread). Run
        // the serial kernel itself instead.
        if rayon::effective_num_threads() <= 1 {
            return self.spmv(x, y);
        }
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let values = &self.values;
        y.par_chunks_mut(chunk_rows)
            .enumerate()
            .for_each(|(ci, out)| {
                let base = ci * chunk_rows;
                for (i, slot) in out.iter_mut().enumerate() {
                    let r = base + i;
                    let mut acc = 0.0;
                    for k in row_ptr[r]..row_ptr[r + 1] {
                        acc += values[k] * x[col_idx[k]];
                    }
                    *slot = acc;
                }
            });
    }

    /// Size-gated product `y = A x`: the chunked parallel kernel for
    /// matrices with at least [`par_spmv_threshold`] stored entries
    /// (when more than one thread is available), the serial kernel
    /// otherwise. Both kernels are bit-identical, so the gate is purely
    /// a performance decision.
    pub fn spmv_auto(&self, x: &[f64], y: &mut [f64]) {
        if self.nnz() >= par_spmv_threshold() && rayon::effective_num_threads() > 1 {
            self.par_spmv_chunked(x, y, PAR_SPMV_CHUNK_ROWS);
        } else {
            self.spmv(x, y);
        }
    }

    /// Transposed product `y = Aᵀ x` (scatter formulation).
    ///
    /// # Panics
    /// Panics if `x.len() != nrows` or `y.len() != ncols`.
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv_transpose: x length mismatch");
        assert_eq!(y.len(), self.ncols, "spmv_transpose: y length mismatch");
        y.fill(0.0);
        for r in 0..self.nrows {
            // Structurally empty rows skip before the value test: no
            // `x[r]` load or float compare for rows with nothing to
            // scatter (common in tall panels from irregular meshes).
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo == hi {
                continue;
            }
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for k in lo..hi {
                y[self.col_idx[k]] += self.values[k] * xr;
            }
        }
    }

    /// Restricted product over a row range: `y = A[rows, :] x`.
    ///
    /// Used by the distributed CG to compute each rank's local rows.
    pub fn spmv_rows(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), rows.len());
        for (out, r) in y.iter_mut().zip(rows) {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Extracts the dense submatrix `A[rows, cols]`.
    ///
    /// The LI reconstruction uses this with `rows == cols` to obtain the
    /// diagonal block `A_{p_i, p_i}` of the failed process (Eq. 19).
    pub fn dense_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> DenseMatrix {
        let mut block = DenseMatrix::zeros(rows.len(), cols.len());
        for (i, r) in rows.clone().enumerate() {
            let rc = self.row_cols(r);
            let rv = self.row_vals(r);
            // Stored columns are sorted; locate the [cols) window.
            let start = rc.partition_point(|&c| c < cols.start);
            let end = rc.partition_point(|&c| c < cols.end);
            for k in start..end {
                block[(i, rc[k] - cols.start)] = rv[k];
            }
        }
        block
    }

    /// Extracts the sparse submatrix `A[rows, cols]` in CSR form.
    ///
    /// The optimized LI reconstruction runs a *local CG* on the sparse
    /// diagonal block `A_{p_i,p_i}` (§4.1), so the block must stay sparse.
    pub fn sparse_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in rows.clone() {
            let rc = self.row_cols(r);
            let rv = self.row_vals(r);
            let start = rc.partition_point(|&c| c < cols.start);
            let end = rc.partition_point(|&c| c < cols.end);
            for k in start..end {
                col_idx.push(rc[k] - cols.start);
                values.push(rv[k]);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: cols.len(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extracts the sparse row panel `A[rows, :]` as its own CSR matrix.
    ///
    /// The LSI reconstruction operates on the failed process's row panel
    /// `A_{p_i,:}` (Eq. 21).
    pub fn row_panel(&self, rows: std::ops::Range<usize>) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let lo = self.row_ptr[rows.start];
        let hi = self.row_ptr[rows.end];
        let col_idx = self.col_idx[lo..hi].to_vec();
        let values = self.values[lo..hi].to_vec();
        for r in rows.clone() {
            row_ptr.push(self.row_ptr[r + 1] - lo);
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored entries in `A[rows, :]` that fall outside
    /// `[cols)` — i.e. the halo/off-block entries a rank must gather.
    pub fn off_block_nnz(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> usize {
        let mut n = 0;
        for r in rows {
            let rc = self.row_cols(r);
            let start = rc.partition_point(|&c| c < cols.start);
            let end = rc.partition_point(|&c| c < cols.end);
            n += rc.len() - (end - start);
        }
        n
    }

    /// Checks structural and numerical symmetry to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
    }

    /// Converts to a dense matrix (tests and small blocks only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Returns a copy with entries of magnitude `<= threshold` removed.
    pub fn prune(&self, threshold: f64) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.values[k].abs() > threshold {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The diagonal of the matrix as a vector (missing entries are `0.0`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Flops of one matrix–vector product (`2 * nnz`), used by the
    /// cluster performance model.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// Bytes of one in-memory copy of the matrix (CSR arrays).
    pub fn storage_bytes(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(1, 2, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn raw_parts_validation_rejects_bad_row_ptr() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
    }

    #[test]
    fn raw_parts_validation_rejects_unsorted_columns() {
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn raw_parts_validation_rejects_out_of_bounds_column() {
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn par_spmv_matches_serial() {
        let a = sample();
        let x = vec![0.5, -1.5, 2.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        a.spmv(&x, &mut y1);
        a.par_spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn par_spmv_chunked_matches_serial_at_every_chunk_size() {
        let a = sample();
        let x = vec![0.5, -1.5, 2.0];
        let mut want = vec![0.0; 3];
        a.spmv(&x, &mut want);
        for chunk_rows in [1, 2, 3, 7] {
            let mut got = vec![0.0; 3];
            a.par_spmv_chunked(&x, &mut got, chunk_rows);
            assert_eq!(want, got, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn spmv_auto_is_bit_identical_across_the_gate() {
        let a = sample();
        let x = vec![1.25, -0.75, 3.5];
        let mut serial = vec![0.0; 3];
        a.spmv(&x, &mut serial);
        // Force each side of the gate in turn; restore the default after.
        for forced in [1usize, usize::MAX] {
            set_par_spmv_threshold(forced);
            let mut got = vec![0.0; 3];
            a.spmv_auto(&x, &mut got);
            assert_eq!(serial, got, "threshold={forced}");
        }
        set_par_spmv_threshold(PAR_SPMV_NNZ_DEFAULT);
    }

    #[test]
    fn spmv_transpose_skips_structurally_empty_rows() {
        // Row 1 is structurally empty but x[1] != 0; row 2 has entries
        // but x[2] == 0. Both must be skipped without affecting y.
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(2, 1, 5.0).unwrap();
        let a = coo.to_csr();
        let x = vec![3.0, 7.0, 0.0];
        let mut y = vec![f64::NAN, f64::NAN];
        a.spmv_transpose(&x, &mut y);
        assert_eq!(y, vec![6.0, 0.0]);
        let at = a.transpose();
        let mut want = vec![0.0; 2];
        at.spmv(&x, &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn transpose_of_symmetric_matrix_is_identical() {
        let a = sample();
        assert_eq!(a.transpose(), a);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn spmv_transpose_matches_transpose_spmv() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let a = coo.to_csr();
        let x = vec![4.0, 5.0];
        let mut y1 = vec![0.0; 3];
        a.spmv_transpose(&x, &mut y1);
        let at = a.transpose();
        let mut y2 = vec![0.0; 3];
        at.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn dense_block_extracts_diagonal_block() {
        let a = sample();
        let block = a.dense_block(1..3, 1..3);
        assert_eq!(block[(0, 0)], 2.0);
        assert_eq!(block[(0, 1)], -1.0);
        assert_eq!(block[(1, 0)], -1.0);
        assert_eq!(block[(1, 1)], 2.0);
    }

    #[test]
    fn sparse_block_matches_dense_block() {
        let a = sample();
        let sb = a.sparse_block(1..3, 1..3);
        let db = a.dense_block(1..3, 1..3);
        assert_eq!(sb.to_dense(), db);
        assert_eq!(sb.nrows(), 2);
        assert_eq!(sb.ncols(), 2);
    }

    #[test]
    fn row_panel_preserves_rows() {
        let a = sample();
        let panel = a.row_panel(1..3);
        assert_eq!(panel.nrows(), 2);
        assert_eq!(panel.ncols(), 3);
        assert_eq!(panel.get(0, 0), -1.0);
        assert_eq!(panel.get(0, 1), 2.0);
        assert_eq!(panel.get(1, 2), 2.0);
    }

    #[test]
    fn off_block_nnz_counts_halo_entries() {
        let a = sample();
        // Rows 1..3, block columns 1..3: row 1 has entry at col 0 outside.
        assert_eq!(a.off_block_nnz(1..3, 1..3), 1);
        assert_eq!(a.off_block_nnz(0..3, 0..3), 0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1e-15).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr().prune(1e-12);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        let mut y = vec![0.0; 4];
        i.spmv(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn spmv_rows_matches_full_spmv() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut full = vec![0.0; 3];
        a.spmv(&x, &mut full);
        let mut part = vec![0.0; 2];
        a.spmv_rows(1..3, &x, &mut part);
        assert_eq!(part, full[1..3]);
    }

    #[test]
    fn diagonal_returns_matrix_diagonal() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }
}
