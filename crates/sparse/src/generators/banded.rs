//! Random banded SPD generators with tunable conditioning.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::{put, put_sym};
use crate::{CooMatrix, CsrMatrix};

/// Configuration for the banded / irregular SPD generators.
#[derive(Debug, Clone)]
pub struct BandedConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Half bandwidth: entries are placed at column distance `1..=half_bandwidth`.
    pub half_bandwidth: usize,
    /// Probability that a band position is occupied (controls nnz/row).
    pub fill: f64,
    /// Diagonal-dominance margin δ: the diagonal is set to
    /// `(1 + δ) * Σ|off-diagonal|`. Smaller δ ⇒ larger condition number ⇒
    /// more CG iterations, which is how the experiment suite tunes each
    /// analog's iteration count toward its Table 3 counterpart.
    pub dominance: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of rows that receive an extra long-range (off-band)
    /// symmetric coupling. Zero for regular banded matrices; positive values
    /// model the "irregular structure" matrices on which LI/LSI construct
    /// poorer approximations (paper §5.2).
    pub long_range_fraction: f64,
    /// Geometric row/column scaling: the matrix is replaced by `D A D`
    /// with `d_i = 10^(decades · i / n)`. SPD and sparsity are preserved
    /// while the condition number (and hence the CG iteration count) is
    /// inflated — how small analogs emulate the genuinely ill-conditioned
    /// SuiteSparse matrices of the paper's Table 3. Zero disables it.
    pub scaling_decades: f64,
    /// Distance decay of band weights: the entry at band distance `d` is
    /// multiplied by `band_decay^(d-1)`. Values well below 1 concentrate
    /// the coupling on near neighbors, which lengthens the matrix's
    /// effective 1D diameter — giving the slowly-converging, smooth-mode
    /// spectra of the paper's FE matrices, on which the *quality* of a
    /// forward-recovery reconstruction visibly changes the iteration
    /// count. 1.0 (default) disables decay.
    pub band_decay: f64,
}

impl BandedConfig {
    /// A regular banded matrix of dimension `n` with roughly `nnz_per_row`
    /// stored entries per row and dominance margin `dominance`.
    pub fn regular(n: usize, nnz_per_row: usize, dominance: f64, seed: u64) -> Self {
        // Each side of the band contributes ~ half_bandwidth * fill entries.
        let half = (nnz_per_row.saturating_sub(1) / 2).max(1);
        BandedConfig {
            n,
            half_bandwidth: half,
            fill: 1.0,
            dominance,
            seed,
            long_range_fraction: 0.0,
            scaling_decades: 0.0,
            band_decay: 1.0,
        }
    }

    /// Builder-style geometric scaling (condition-number inflation).
    pub fn with_scaling_decades(mut self, decades: f64) -> Self {
        self.scaling_decades = decades;
        self
    }

    /// Builder-style band-weight decay (effective-diameter inflation).
    pub fn with_band_decay(mut self, decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "band decay must be in (0, 1]");
        self.band_decay = decay;
        self
    }

    /// Like [`BandedConfig::regular`] but with a fraction of rows coupled to
    /// far-away rows, destroying block-diagonal dominance.
    pub fn irregular(
        n: usize,
        nnz_per_row: usize,
        dominance: f64,
        long_range_fraction: f64,
        seed: u64,
    ) -> Self {
        let mut cfg = Self::regular(n, nnz_per_row, dominance, seed);
        cfg.long_range_fraction = long_range_fraction;
        cfg
    }
}

/// Generates a random banded SPD matrix (strict diagonal dominance).
///
/// Off-diagonal entries are `-u` with `u ~ U(0.5, 1.0)`, mirrored for
/// symmetry; the diagonal is `(1 + δ) Σ|off|`, making the matrix strictly
/// diagonally dominant with positive diagonal — hence SPD.
pub fn banded_spd(cfg: &BandedConfig) -> CsrMatrix {
    build(cfg)
}

/// Generates an "irregular" SPD matrix: banded base plus long-range
/// symmetric couplings on a fraction of rows.
pub fn irregular_spd(cfg: &BandedConfig) -> CsrMatrix {
    assert!(
        cfg.long_range_fraction > 0.0,
        "irregular_spd requires long_range_fraction > 0; use banded_spd otherwise"
    );
    build(cfg)
}

/// Generates the SPD tridiagonal Toeplitz matrix `tridiag(-1, d, -1)`.
///
/// With `d >= 2` the matrix is SPD; `d = 2` is the 1D Laplacian whose
/// condition number grows as `O(n²)` — useful for slow-convergence tests.
pub fn tridiagonal(n: usize, d: f64) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        put(&mut coo, i, i, d);
        if i + 1 < n {
            put_sym(&mut coo, i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

fn build(cfg: &BandedConfig) -> CsrMatrix {
    assert!(cfg.n > 0, "matrix dimension must be positive");
    assert!(cfg.dominance > 0.0, "dominance margin must be positive");
    assert!((0.0..=1.0).contains(&cfg.fill), "fill must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut coo = CooMatrix::with_capacity(n, n, (2 * cfg.half_bandwidth + 2) * n);
    // Off-diagonal magnitudes per row, accumulated for the dominant diagonal.
    let mut offsum = vec![0.0f64; n];

    for i in 0..n {
        for d in 1..=cfg.half_bandwidth {
            let j = i + d;
            if j >= n {
                break;
            }
            if cfg.fill < 1.0 && rng.random::<f64>() >= cfg.fill {
                continue;
            }
            let v = -(0.5 + 0.5 * rng.random::<f64>()) * cfg.band_decay.powi(d as i32 - 1);
            put_sym(&mut coo, i, j, v);
            offsum[i] += v.abs();
            offsum[j] += v.abs();
        }
    }

    if cfg.long_range_fraction > 0.0 && n > 4 * cfg.half_bandwidth + 4 {
        let couplings = ((n as f64) * cfg.long_range_fraction).ceil() as usize;
        for _ in 0..couplings {
            let i = rng.random_range(0..n);
            // Pick a partner well outside the band.
            let min_dist = 2 * cfg.half_bandwidth + 1;
            let j = loop {
                let j = rng.random_range(0..n);
                if j.abs_diff(i) > min_dist {
                    break j;
                }
            };
            let v = -(0.5 + 0.5 * rng.random::<f64>());
            put_sym(&mut coo, i.min(j), i.max(j), v);
            offsum[i] += v.abs();
            offsum[j] += v.abs();
        }
    }

    for i in 0..n {
        // Keep isolated rows well-posed with a unit diagonal.
        let diag = if offsum[i] == 0.0 {
            1.0
        } else {
            (1.0 + cfg.dominance) * offsum[i]
        };
        put(&mut coo, i, i, diag);
    }
    let a = coo.to_csr();
    if cfg.scaling_decades == 0.0 {
        return a;
    }
    // Congruence transform D A D: preserves symmetry and definiteness.
    let mut scaled = CooMatrix::with_capacity(n, n, a.nnz());
    let d = |i: usize| 10f64.powf(cfg.scaling_decades * i as f64 / n as f64);
    for (r, c, v) in a.iter() {
        // Multiply by the *product* of the scales so the (r,c) and (c,r)
        // entries stay bit-identical (f64 multiplication is commutative
        // but not associative).
        put(&mut scaled, r, c, v * (d(r) * d(c)));
    }
    scaled.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;

    #[test]
    fn banded_matrix_is_symmetric_and_spd() {
        let cfg = BandedConfig::regular(60, 7, 0.05, 42);
        let a = banded_spd(&cfg);
        assert_eq!(a.nrows(), 60);
        assert!(a.is_symmetric(1e-14));
        assert!(Cholesky::factor(&a.to_dense()).is_ok());
    }

    #[test]
    fn nnz_per_row_is_near_target() {
        let cfg = BandedConfig::regular(500, 9, 0.1, 1);
        let a = banded_spd(&cfg);
        let got = a.nnz_per_row();
        assert!((7.0..=9.5).contains(&got), "nnz/row = {got}");
    }

    #[test]
    fn irregular_matrix_has_off_band_entries() {
        let cfg = BandedConfig::irregular(400, 7, 0.05, 0.2, 3);
        let a = irregular_spd(&cfg);
        assert!(a.is_symmetric(1e-14));
        let band = cfg.half_bandwidth;
        let far = a
            .iter()
            .filter(|&(r, c, _)| c.abs_diff(r) > 2 * band + 1)
            .count();
        assert!(far > 0, "expected long-range couplings");
        assert!(Cholesky::factor(&a.to_dense()).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = BandedConfig::regular(100, 5, 0.2, 9);
        assert_eq!(banded_spd(&cfg), banded_spd(&cfg));
    }

    #[test]
    fn tridiagonal_is_spd_for_d_at_least_two() {
        let a = tridiagonal(50, 2.0);
        assert!(a.is_symmetric(0.0));
        assert!(Cholesky::factor(&a.to_dense()).is_ok());
        assert_eq!(a.nnz(), 3 * 50 - 2);
    }

    #[test]
    fn scaling_preserves_symmetry_and_definiteness() {
        let cfg = BandedConfig::regular(50, 5, 0.1, 21).with_scaling_decades(3.0);
        let a = banded_spd(&cfg);
        assert!(a.is_symmetric(1e-6));
        assert!(Cholesky::factor(&a.to_dense()).is_ok());
        // Dynamic range of the diagonal spans ~10^6 (2 × 3 decades).
        let d = a.diagonal();
        let ratio = d.last().unwrap() / d.first().unwrap();
        assert!(ratio > 1e5, "diagonal dynamic range {ratio}");
    }

    #[test]
    fn smaller_dominance_worsens_conditioning() {
        // Estimate conditioning through the diagonal/off-diagonal margin:
        // CG on the looser matrix must need at least as many iterations.
        // (A full solver test lives in rsls-solvers; here we just check the
        // margin is respected.)
        for dom in [0.01, 1.0] {
            let cfg = BandedConfig::regular(80, 5, dom, 5);
            let a = banded_spd(&cfg);
            for r in 0..a.nrows() {
                let off: f64 = a
                    .row_cols(r)
                    .iter()
                    .zip(a.row_vals(r))
                    .filter(|(&c, _)| c != r)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(a.get(r, r) >= (1.0 + dom) * off * 0.999999);
            }
        }
    }
}
