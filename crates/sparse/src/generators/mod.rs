//! Procedural SPD matrix generators.
//!
//! The paper evaluates on 14 SuiteSparse matrices (Table 3). Those files
//! are not redistributable here, so the experiment suite generates
//! structural analogs instead:
//!
//! * [`stencil_2d`] — the paper's "5-point stencil" row is generated
//!   *exactly* (it is a procedural matrix in the paper too),
//! * [`wathen`] — `wathen100` is the classic Wathen finite-element matrix,
//!   also generated exactly,
//! * [`banded_spd`] — regular banded analogs with matched size and nnz/row
//!   and conditioning tuned through the diagonal-dominance margin,
//! * [`irregular_spd`] — analogs for the "irregular structure" matrices
//!   (e.g. x104, bcsstk06) where LI/LSI reconstructions are less accurate,
//!   built by scattering long-range couplings outside the band.

mod banded;
mod stencil;
mod wathen;

pub use banded::{banded_spd, irregular_spd, tridiagonal, BandedConfig};
pub use stencil::{stencil_2d, stencil_3d};
pub use wathen::wathen;

use crate::CooMatrix;

/// Inserts an entry whose indices the generator's loops guarantee are
/// in bounds; a rejected push is a generator bug, not a caller error.
pub(crate) fn put(coo: &mut CooMatrix, r: usize, c: usize, v: f64) {
    // rsls-lint: allow(no-unwrap) -- generator loops keep indices in-bounds by construction
    coo.push(r, c, v).expect("index in bounds by construction");
}

/// Symmetric-pair variant of [`put`].
pub(crate) fn put_sym(coo: &mut CooMatrix, r: usize, c: usize, v: f64) {
    // rsls-lint: allow(no-unwrap) -- generator loops keep indices in-bounds by construction
    coo.push_sym(r, c, v).expect("in bounds by construction");
}
