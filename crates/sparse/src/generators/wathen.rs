//! The Wathen finite-element matrix.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::put;
use crate::{CooMatrix, CsrMatrix};

/// Element contribution matrix of the Wathen discretization (scaled by 45).
const E1: [[f64; 4]; 4] = [
    [6.0, -6.0, 2.0, -8.0],
    [-6.0, 32.0, -6.0, 20.0],
    [2.0, -6.0, 6.0, -6.0],
    [-8.0, 20.0, -6.0, 32.0],
];
const E2: [[f64; 4]; 4] = [
    [3.0, -8.0, 2.0, -6.0],
    [-8.0, 16.0, -8.0, 20.0],
    [2.0, -8.0, 3.0, -8.0],
    [-6.0, 20.0, -8.0, 16.0],
];

/// Generates the Wathen matrix on an `nx x ny` element grid.
///
/// This is the classic SPD test matrix of A. J. Wathen (the consistent mass
/// matrix of an `nx x ny` grid of 8-node serendipity elements with random
/// element densities), matching MATLAB's `gallery('wathen', nx, ny)`.
/// The dimension is `3 nx ny + 2 nx + 2 ny + 1`; with `nx = ny = 100` this
/// is 30,401 — the paper's `wathen100` (Table 3).
///
/// `seed` fixes the random element densities for reproducibility.
pub fn wathen(nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    assert!(nx > 0 && ny > 0, "wathen requires a non-empty element grid");
    let n = 3 * nx * ny + 2 * nx + 2 * ny + 1;
    // 8x8 element matrix e = [E1 E2; E2ᵀ E1] / 45.
    let mut e = [[0.0f64; 8]; 8];
    for i in 0..4 {
        for j in 0..4 {
            e[i][j] = E1[i][j] / 45.0;
            e[i][j + 4] = E2[i][j] / 45.0;
            e[i + 4][j] = E2[j][i] / 45.0;
            e[i + 4][j + 4] = E1[i][j] / 45.0;
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 64 * nx * ny);
    let mut nn = [0usize; 8];
    for j in 1..=ny {
        for i in 1..=nx {
            // Global node numbers of the 8 element nodes (1-based as in the
            // reference implementation, converted to 0-based on insertion).
            nn[0] = 3 * j * nx + 2 * i + 2 * j + 1;
            nn[1] = nn[0] - 1;
            nn[2] = nn[1] - 1;
            nn[3] = (3 * j - 1) * nx + 2 * j + i - 1;
            nn[4] = 3 * (j - 1) * nx + 2 * i + 2 * j - 3;
            nn[5] = nn[4] + 1;
            nn[6] = nn[5] + 1;
            nn[7] = nn[3] + 1;
            let rho: f64 = 100.0 * rng.random::<f64>();
            for (kr, &gr) in nn.iter().enumerate() {
                for (kc, &gc) in nn.iter().enumerate() {
                    put(&mut coo, gr - 1, gc - 1, rho * e[kr][kc]);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;

    #[test]
    fn dimension_matches_formula() {
        let a = wathen(3, 4, 1);
        assert_eq!(a.nrows(), 3 * 12 + 2 * 3 + 2 * 4 + 1);
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = wathen(4, 4, 7);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn small_wathen_is_positive_definite() {
        let a = wathen(2, 2, 3);
        let d = a.to_dense();
        assert!(Cholesky::factor(&d).is_ok());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(wathen(3, 3, 11), wathen(3, 3, 11));
        assert_ne!(wathen(3, 3, 11), wathen(3, 3, 12));
    }

    #[test]
    fn wathen100_has_the_papers_row_count() {
        // Table 3: wathen100 has 30,401 rows. Use the formula rather than
        // generating the full matrix in a unit test.
        assert_eq!(3 * 100 * 100 + 2 * 100 + 2 * 100 + 1, 30_401);
    }
}
