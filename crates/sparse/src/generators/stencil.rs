//! Finite-difference Laplacian stencils.

use super::put;
use crate::{CooMatrix, CsrMatrix};

/// 2D 5-point Laplacian on an `nx x ny` grid (Dirichlet boundaries).
///
/// The matrix is SPD with rows `nx * ny` and at most 5 nonzeros per row —
/// the "5-point stencil" workload of the paper's Table 3 (with
/// `nx = ny = 800` giving 640,000 rows).
pub fn stencil_2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |i: usize, j: usize| i * ny + j;
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            put(&mut coo, r, r, 4.0);
            if i > 0 {
                put(&mut coo, r, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                put(&mut coo, r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                put(&mut coo, r, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                put(&mut coo, r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3D 7-point Laplacian on an `nx x ny x nz` grid (Dirichlet boundaries).
pub fn stencil_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                put(&mut coo, r, r, 6.0);
                if i > 0 {
                    put(&mut coo, r, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    put(&mut coo, r, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    put(&mut coo, r, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    put(&mut coo, r, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    put(&mut coo, r, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    put(&mut coo, r, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_2d_shape_and_symmetry() {
        let a = stencil_2d(4, 5);
        assert_eq!(a.nrows(), 20);
        assert!(a.is_symmetric(0.0));
        // Interior rows have 5 entries, corners 3.
        assert_eq!(a.row_cols(0).len(), 3);
        let interior = 5 + 2; // (i=1, j=2)
        assert_eq!(a.row_cols(interior).len(), 5);
    }

    #[test]
    fn stencil_2d_is_diagonally_dominant() {
        let a = stencil_2d(6, 6);
        for r in 0..a.nrows() {
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(&c, _)| c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(r, r) >= off);
        }
    }

    #[test]
    fn stencil_3d_shape() {
        let a = stencil_3d(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        assert!(a.is_symmetric(0.0));
        // Center of the cube has 7 entries.
        assert_eq!(a.row_cols(13).len(), 7);
    }
}
