//! Property-based tests for the sparse substrate.

use proptest::prelude::*;
use rsls_sparse::generators::{banded_spd, BandedConfig};
use rsls_sparse::vector::{axpy, dot, norm2};
use rsls_sparse::{CooMatrix, CsrMatrix, Partition, SellMatrix};

/// Strategy: a random small COO matrix with possibly duplicate entries.
fn coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(nr, nc)| {
        let entry = (0..nr, 0..nc, -10.0f64..10.0);
        proptest::collection::vec(entry, 0..40).prop_map(move |entries| {
            let mut coo = CooMatrix::new(nr, nc);
            for (r, c, v) in entries {
                coo.push(r, c, v).unwrap();
            }
            coo
        })
    })
}

fn dense_matvec(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let d = a.to_dense();
    let mut y = vec![0.0; a.nrows()];
    d.matvec(x, &mut y);
    y
}

proptest! {
    #[test]
    fn csr_matches_dense_reference(coo in coo_strategy(), seed in 0u64..1000) {
        let a = coo.to_csr();
        let mut rng_state = seed;
        let x: Vec<f64> = (0..a.ncols()).map(|_| {
            // Tiny deterministic LCG so the test has no rand dependency on values.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }).collect();
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y);
        let yref = dense_matvec(&a, &x);
        for (l, r) in y.iter().zip(&yref) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn spmv_is_linear(coo in coo_strategy()) {
        let a = coo.to_csr();
        let n = a.ncols();
        let x1: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let x2: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64).collect();
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        let mut ysum = vec![0.0; a.nrows()];
        a.spmv(&x1, &mut y1);
        a.spmv(&x2, &mut y2);
        a.spmv(&sum, &mut ysum);
        for i in 0..a.nrows() {
            prop_assert!((ysum[i] - y1[i] - y2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn partition_covers_rows_exactly_once(n in 1usize..2000, p in 1usize..64) {
        let part = Partition::balanced(n, p);
        let mut covered = vec![0u32; n];
        for (_, range) in part.iter() {
            for r in range {
                covered[r] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        // Balance: lengths differ by at most one.
        let lens: Vec<usize> = (0..p).map(|r| part.len(r)).collect();
        let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn partition_owner_matches_range(n in 1usize..500, p in 1usize..32) {
        let part = Partition::balanced(n, p);
        for row in 0..n {
            let o = part.owner(row);
            prop_assert!(part.range(o).contains(&row));
        }
    }

    #[test]
    fn generated_spd_matrices_are_symmetric(n in 4usize..120, nnzr in 3usize..12, seed in 0u64..100) {
        let cfg = BandedConfig::regular(n, nnzr, 0.1, seed);
        let a = banded_spd(&cfg);
        prop_assert!(a.is_symmetric(1e-12));
        // xᵀ A x > 0 for a couple of deterministic x.
        for k in 1..4u64 {
            let x: Vec<f64> = (0..n).map(|i| (((i as u64 + k) * 2654435761) % 17) as f64 - 8.0).collect();
            if norm2(&x) == 0.0 { continue; }
            let mut ax = vec![0.0; n];
            a.spmv(&x, &mut ax);
            prop_assert!(dot(&x, &ax) > 0.0);
        }
    }

    #[test]
    fn par_spmv_is_bit_identical_to_serial(coo in coo_strategy(), seed in 0u64..1000, chunk in 1usize..9) {
        let a = coo.to_csr();
        let mut rng_state = seed.wrapping_add(17);
        let x: Vec<f64> = (0..a.ncols()).map(|_| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }).collect();
        let mut serial = vec![0.0; a.nrows()];
        a.spmv(&x, &mut serial);
        // Bit-identical, not approximately equal: each row is a serial
        // reduction regardless of which worker computes it, so `==` holds.
        let mut par = vec![f64::NAN; a.nrows()];
        a.par_spmv(&x, &mut par);
        prop_assert_eq!(&par, &serial);
        let mut chunked = vec![f64::NAN; a.nrows()];
        a.par_spmv_chunked(&x, &mut chunked, chunk);
        prop_assert_eq!(&chunked, &serial);
    }

    #[test]
    fn sell_spmv_is_bit_identical_to_csr(
        coo in coo_strategy(),
        seed in 0u64..1000,
        c_pick in 0usize..2,
        sigma in 1usize..24,
    ) {
        let a = coo.to_csr();
        let c = [4usize, 8][c_pick];
        let mut rng_state = seed.wrapping_add(41);
        let x: Vec<f64> = (0..a.ncols()).map(|_| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }).collect();
        let mut serial = vec![0.0; a.nrows()];
        a.spmv(&x, &mut serial);
        let sell = SellMatrix::from_csr_with(&a, c, sigma);
        // Byte-identical across format, thread budget, and kernel: each
        // row is the same left-to-right reduction everywhere, padding is
        // never folded in, and the σ-window permutation is window-local.
        let mut sell_serial = vec![f64::NAN; a.nrows()];
        sell.spmv(&x, &mut sell_serial);
        prop_assert_eq!(&sell_serial, &serial);
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut par = vec![f64::NAN; a.nrows()];
            pool.install(|| sell.par_spmv(&x, &mut par));
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn dot_is_symmetric_and_axpy_linear(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-9);
        let mut y = w.clone();
        axpy(0.0, &v, &mut y);
        prop_assert_eq!(y, w);
    }
}
