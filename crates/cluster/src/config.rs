//! Machine model parameters.

use serde::{Deserialize, Serialize};

/// Performance parameters of the modeled machine.
///
/// Defaults approximate the paper's platform: dual-socket Xeon E5-2670v3
/// nodes (24 cores, 2.3 GHz), DDR4 memory, FDR-class interconnect, and a
/// shared parallel file system. The absolute values matter less than the
/// *ratios* (compute vs network vs memory vs disk), which drive every
/// relative overhead the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Cores per node (the paper's nodes have 2 × 12).
    pub cores_per_node: usize,
    /// Sustained flop rate of one core at nominal frequency, in flop/s.
    /// Sparse kernels sustain a small fraction of peak; 2 Gflop/s is a
    /// realistic SpMV-bound figure for this class of core.
    pub flops_per_sec: f64,
    /// Node-local memory bandwidth available to one rank, bytes/s.
    pub mem_bw_bytes_per_sec: f64,
    /// Aggregate shared parallel-file-system bandwidth, bytes/s.
    pub disk_bw_bytes_per_sec: f64,
    /// Per-operation latency of the shared file system, seconds.
    pub disk_latency_s: f64,
    /// Network point-to-point latency α, seconds.
    pub net_latency_s: f64,
    /// Network bandwidth 1/β, bytes/s.
    pub net_bw_bytes_per_sec: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores_per_node: 24,
            flops_per_sec: 2.0e9,
            mem_bw_bytes_per_sec: 8.0e9,
            disk_bw_bytes_per_sec: 1.0e9,
            disk_latency_s: 5.0e-3,
            net_latency_s: 2.0e-6,
            net_bw_bytes_per_sec: 5.0e9,
        }
    }
}

impl MachineConfig {
    /// Number of nodes needed to host `ranks` ranks (one rank per core).
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Time of one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.net_latency_s + bytes as f64 / self.net_bw_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_are_sane() {
        let c = MachineConfig::default();
        assert!(c.mem_bw_bytes_per_sec > c.disk_bw_bytes_per_sec);
        assert!(c.net_bw_bytes_per_sec > c.disk_bw_bytes_per_sec);
        assert!(c.net_latency_s < c.disk_latency_s);
    }

    #[test]
    fn nodes_for_rounds_up() {
        let c = MachineConfig::default();
        assert_eq!(c.nodes_for(24), 1);
        assert_eq!(c.nodes_for(25), 2);
        assert_eq!(c.nodes_for(192), 8);
    }

    #[test]
    fn p2p_time_includes_latency() {
        let c = MachineConfig::default();
        assert!(c.p2p_time(0) == c.net_latency_s);
        assert!(c.p2p_time(1 << 20) > c.net_latency_s);
    }
}
