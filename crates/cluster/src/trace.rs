//! Optional bounded event tracing for debugging and visualization.

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// `rank` executed `flops` of computation.
    Compute {
        /// Executing rank.
        rank: usize,
        /// Flops charged.
        flops: u64,
    },
    /// Point-to-point message.
    Send {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Payload size.
        bytes: u64,
    },
    /// A collective operation over all ranks.
    Collective {
        /// Operation name (`"allreduce"`, `"barrier"`, ...).
        name: &'static str,
        /// Per-rank payload size.
        bytes: u64,
    },
    /// Storage-tier traffic (checkpointing).
    Storage {
        /// `"memory"` or `"disk"`.
        tier: &'static str,
        /// Bytes written or read.
        bytes: u64,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the operation completed.
    pub time: f64,
    /// Operation description.
    pub kind: TraceKind,
}

/// Bounded event buffer; drops (and counts) events beyond capacity.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace that keeps up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (no-op when disabled or full).
    pub fn push(&mut self, kind: TraceKind, time: f64) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { time, kind });
    }

    /// Recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceKind::Compute { rank: 0, flops: 1 }, 0.0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn full_trace_counts_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(TraceKind::Compute { rank: 0, flops: i }, i as f64);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
