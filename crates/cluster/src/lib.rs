#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Deterministic virtual-cluster performance model.
//!
//! This crate plays the role the MPI cluster plays in the paper: it owns
//! per-rank virtual clocks and charges time for computation and
//! communication through an α–β (latency/bandwidth) model with log₂(p)
//! tree collectives. The actual numerics happen elsewhere (exactly, in
//! ordinary `f64` arithmetic); only *time* is modeled here, which makes
//! every experiment bit-reproducible while preserving the cost structure
//! the paper measures.
//!
//! The three storage tiers the paper's recovery schemes exercise are all
//! modeled: core-local computation ([`Cluster::compute`]), node-local
//! memory ([`Cluster::memory_write`], used by CR-M), and a *shared*
//! parallel file system ([`Cluster::disk_write`], used by CR-D — its cost
//! grows with the total data volume, reproducing the paper's observation
//! that CR-D checkpoint cost scales linearly with system size).

pub mod config;
pub mod ledger;
pub mod topology;
pub mod trace;

pub use config::MachineConfig;
pub use ledger::{ActivityKind, Ledger};
pub use topology::Topology;
pub use trace::{TraceEvent, TraceKind};

/// A deterministic virtual cluster of `p` ranks.
///
/// Every operation advances one or more per-rank clocks. Synchronizing
/// operations (collectives, barriers) align clocks to the slowest
/// participant and account the difference as idle time, which the power
/// model later converts to idle energy.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: MachineConfig,
    clocks: Vec<f64>,
    /// Per-rank execution speed factor (1.0 = nominal frequency). The power
    /// crate maps DVFS frequency to this factor; the cluster itself is
    /// frequency-agnostic.
    speed: Vec<f64>,
    ledger: Ledger,
    trace: trace::Trace,
}

impl Cluster {
    /// Creates a cluster of `num_ranks` ranks with the given machine model.
    ///
    /// # Panics
    /// Panics if `num_ranks == 0`.
    pub fn new(cfg: MachineConfig, num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "cluster needs at least one rank");
        Cluster {
            cfg,
            clocks: vec![0.0; num_ranks],
            speed: vec![1.0; num_ranks],
            ledger: Ledger::new(num_ranks),
            trace: trace::Trace::disabled(),
        }
    }

    /// Enables event tracing with the given capacity (events beyond the
    /// capacity are dropped, counting drops).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = trace::Trace::with_capacity(capacity);
    }

    /// The machine model.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.clocks.len()
    }

    /// Current virtual time of `rank`.
    pub fn clock(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// The latest clock over all ranks — the cluster-wide makespan.
    pub fn max_clock(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-rank and aggregate activity times.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Recorded trace events (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Sets the execution-speed factor of `rank` (time dilation for DVFS:
    /// a factor of 0.5 makes compute take twice as long).
    ///
    /// # Panics
    /// Panics if `factor <= 0`.
    pub fn set_speed_factor(&mut self, rank: usize, factor: f64) {
        assert!(factor > 0.0, "speed factor must be positive");
        self.speed[rank] = factor;
    }

    /// Current speed factor of `rank`.
    pub fn speed_factor(&self, rank: usize) -> f64 {
        self.speed[rank]
    }

    /// Charges `flops` of computation to `rank`.
    pub fn compute(&mut self, rank: usize, flops: u64) {
        let dt = flops as f64 / (self.cfg.flops_per_sec * self.speed[rank]);
        self.advance(rank, dt, ActivityKind::Compute);
        self.trace
            .push(TraceKind::Compute { rank, flops }, self.clocks[rank]);
    }

    /// Charges `flops` of computation to every rank (the per-iteration SpMV
    /// and BLAS-1 work of a perfectly balanced block-row CG step).
    pub fn compute_all(&mut self, flops_per_rank: u64) {
        for rank in 0..self.num_ranks() {
            self.compute(rank, flops_per_rank);
        }
    }

    /// Point-to-point message of `bytes` from `src` to `dst`.
    ///
    /// Both endpoints advance: the transfer starts when both are ready
    /// (rendezvous) and takes `α + β·bytes`.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64) {
        assert_ne!(src, dst, "send requires distinct ranks");
        let start = self.clocks[src].max(self.clocks[dst]);
        let dt = self.cfg.net_latency_s + bytes as f64 / self.cfg.net_bw_bytes_per_sec;
        // Account the wait of the earlier party as idle.
        self.wait_until(src, start);
        self.wait_until(dst, start);
        self.advance(src, dt, ActivityKind::Communicate);
        self.advance(dst, dt, ActivityKind::Communicate);
        self.ledger.add_bytes(bytes);
        self.trace
            .push(TraceKind::Send { src, dst, bytes }, start + dt);
    }

    /// Nearest-neighbor halo exchange: every rank exchanges `bytes` with
    /// each of its `neighbors` (e.g. 2 for a banded partition). No global
    /// synchronization is implied.
    pub fn halo_exchange(&mut self, bytes: u64, neighbors: usize) {
        let dt = neighbors as f64
            * (self.cfg.net_latency_s + bytes as f64 / self.cfg.net_bw_bytes_per_sec);
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.ledger
            .add_bytes(bytes * neighbors as u64 * self.num_ranks() as u64);
        self.trace.push(
            TraceKind::Collective {
                name: "halo",
                bytes,
            },
            self.max_clock(),
        );
    }

    /// Topology-aware halo exchange: with contiguous neighbor ranks, a
    /// rank's partners usually sit on the *same node*, where the exchange
    /// goes through shared memory at a fraction of the network cost. Each
    /// rank pays the intra-node price for same-node partners and the full
    /// network price for the (at most two) node-boundary partners.
    pub fn halo_exchange_on(
        &mut self,
        bytes: u64,
        neighbors: usize,
        topo: &Topology,
        intra_node_factor: f64,
    ) {
        assert!((0.0..=1.0).contains(&intra_node_factor));
        let net = self.cfg.net_latency_s + bytes as f64 / self.cfg.net_bw_bytes_per_sec;
        let intra = net * intra_node_factor;
        let p = self.num_ranks();
        let mut total_bytes = 0u64;
        for rank in 0..p {
            let mut dt = 0.0;
            for d in 1..=neighbors.div_ceil(2) {
                for peer in [rank.checked_sub(d), Some(rank + d)] {
                    let Some(peer) = peer else { continue };
                    if peer >= p || peer == rank {
                        continue;
                    }
                    dt += if rank < topo.num_ranks()
                        && peer < topo.num_ranks()
                        && topo.same_node(rank, peer)
                    {
                        intra
                    } else {
                        net
                    };
                    total_bytes += bytes;
                }
            }
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.ledger.add_bytes(total_bytes);
        self.trace.push(
            TraceKind::Collective {
                name: "halo-topo",
                bytes,
            },
            self.max_clock(),
        );
    }

    /// Allreduce of `bytes` per rank (recursive doubling:
    /// `2·⌈log₂ p⌉` rounds of `α + β·bytes`). Synchronizes all ranks.
    pub fn allreduce(&mut self, bytes: u64) {
        let rounds = 2 * ceil_log2(self.num_ranks());
        let dt =
            rounds as f64 * (self.cfg.net_latency_s + bytes as f64 / self.cfg.net_bw_bytes_per_sec);
        self.sync_to_max();
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.ledger
            .add_bytes(bytes * (rounds as u64) * self.num_ranks() as u64);
        self.trace.push(
            TraceKind::Collective {
                name: "allreduce",
                bytes,
            },
            self.max_clock(),
        );
    }

    /// Broadcast of `bytes` from `root` to all ranks (binomial tree).
    pub fn broadcast(&mut self, _root: usize, bytes: u64) {
        let rounds = ceil_log2(self.num_ranks());
        let dt =
            rounds as f64 * (self.cfg.net_latency_s + bytes as f64 / self.cfg.net_bw_bytes_per_sec);
        self.sync_to_max();
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.ledger.add_bytes(bytes * self.num_ranks() as u64);
        self.trace.push(
            TraceKind::Collective {
                name: "broadcast",
                bytes,
            },
            self.max_clock(),
        );
    }

    /// Gather of `bytes_per_rank` to `root` (binomial tree, bandwidth term
    /// dominated by the root receiving all data).
    pub fn gather(&mut self, _root: usize, bytes_per_rank: u64) {
        let rounds = ceil_log2(self.num_ranks());
        let total = bytes_per_rank * (self.num_ranks() as u64 - 1);
        let dt =
            rounds as f64 * self.cfg.net_latency_s + total as f64 / self.cfg.net_bw_bytes_per_sec;
        self.sync_to_max();
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.ledger.add_bytes(total);
        self.trace.push(
            TraceKind::Collective {
                name: "gather",
                bytes: bytes_per_rank,
            },
            self.max_clock(),
        );
    }

    /// Barrier: aligns all clocks to the slowest rank plus the latency of a
    /// `⌈log₂ p⌉`-round dissemination barrier.
    pub fn barrier(&mut self) {
        self.sync_to_max();
        let dt = ceil_log2(self.num_ranks()) as f64 * self.cfg.net_latency_s;
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Communicate);
        }
        self.trace.push(
            TraceKind::Collective {
                name: "barrier",
                bytes: 0,
            },
            self.max_clock(),
        );
    }

    /// Writes `bytes_per_rank` from every rank to node-local memory
    /// (the CR-M checkpoint path). Per-rank cost, independent of `p`.
    pub fn memory_write(&mut self, bytes_per_rank: u64) {
        let dt = bytes_per_rank as f64 / self.cfg.mem_bw_bytes_per_sec;
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Checkpoint);
        }
        self.trace.push(
            TraceKind::Storage {
                tier: "memory",
                bytes: bytes_per_rank,
            },
            self.max_clock(),
        );
    }

    /// Reads `bytes_per_rank` into every rank from node-local memory.
    pub fn memory_read(&mut self, bytes_per_rank: u64) {
        self.memory_write(bytes_per_rank); // symmetric cost
    }

    /// Writes `bytes_per_rank` from every rank to the *shared* parallel
    /// file system (the CR-D checkpoint path). All ranks block for
    /// `latency + total_bytes / aggregate_bw`; with weak scaling the total
    /// grows with `p`, so the per-checkpoint cost grows linearly with
    /// system size — the paper's measured behaviour for CR-D.
    pub fn disk_write(&mut self, bytes_per_rank: u64) {
        let total = bytes_per_rank * self.num_ranks() as u64;
        let dt = self.cfg.disk_latency_s + total as f64 / self.cfg.disk_bw_bytes_per_sec;
        self.sync_to_max();
        for rank in 0..self.num_ranks() {
            self.advance(rank, dt, ActivityKind::Checkpoint);
        }
        self.trace.push(
            TraceKind::Storage {
                tier: "disk",
                bytes: total,
            },
            self.max_clock(),
        );
    }

    /// Reads `bytes_per_rank` into every rank from the shared file system.
    pub fn disk_read(&mut self, bytes_per_rank: u64) {
        self.disk_write(bytes_per_rank); // symmetric cost
    }

    /// Advances `rank` by reconstruction work while the other ranks fall
    /// behind (their idle time is accounted when they resynchronize).
    pub fn exclusive_compute(&mut self, rank: usize, flops: u64) {
        let dt = flops as f64 / (self.cfg.flops_per_sec * self.speed[rank]);
        self.advance(rank, dt, ActivityKind::Reconstruct);
        self.trace
            .push(TraceKind::Compute { rank, flops }, self.clocks[rank]);
    }

    /// Aligns all clocks to the current maximum, accounting the slack of
    /// each waiting rank as idle time.
    pub fn sync_to_max(&mut self) {
        let target = self.max_clock();
        for rank in 0..self.num_ranks() {
            self.wait_until(rank, target);
        }
    }

    fn wait_until(&mut self, rank: usize, target: f64) {
        let slack = target - self.clocks[rank];
        if slack > 0.0 {
            self.advance(rank, slack, ActivityKind::Idle);
        }
    }

    fn advance(&mut self, rank: usize, dt: f64, kind: ActivityKind) {
        debug_assert!(dt >= 0.0, "time must not run backwards");
        self.clocks[rank] += dt;
        self.ledger.add(rank, kind, dt);
    }
}

/// `⌈log₂ p⌉`, with `ceil_log2(1) == 0`.
pub fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p > 0);
    usize::BITS - (p - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(p: usize) -> Cluster {
        Cluster::new(MachineConfig::default(), p)
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(256), 8);
    }

    #[test]
    fn compute_advances_only_target_rank() {
        let mut c = cluster(4);
        c.compute(2, 1_000_000);
        assert!(c.clock(2) > 0.0);
        assert_eq!(c.clock(0), 0.0);
        assert_eq!(c.max_clock(), c.clock(2));
    }

    #[test]
    fn slower_rank_takes_longer() {
        let mut c = cluster(2);
        c.set_speed_factor(1, 0.5);
        c.compute(0, 1_000_000);
        c.compute(1, 1_000_000);
        assert!((c.clock(1) - 2.0 * c.clock(0)).abs() < 1e-12);
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let mut c = cluster(8);
        c.compute(3, 10_000_000);
        c.allreduce(8);
        let t = c.clock(0);
        assert!((0..8).all(|r| (c.clock(r) - t).abs() < 1e-12));
        // Idle time was charged to the 7 ranks that waited.
        assert!(c.ledger().total(ActivityKind::Idle) > 0.0);
    }

    #[test]
    fn allreduce_cost_grows_logarithmically() {
        let dt_of = |p: usize| {
            let mut c = cluster(p);
            c.allreduce(8);
            c.max_clock()
        };
        let t4 = dt_of(4);
        let t16 = dt_of(16);
        let t256 = dt_of(256);
        assert!((t16 / t4 - 2.0).abs() < 1e-9); // log 4 = 2, log 16 = 4
        assert!((t256 / t4 - 4.0).abs() < 1e-9); // log 256 = 8
    }

    #[test]
    fn send_rendezvous_waits_for_late_party() {
        let mut c = cluster(2);
        c.compute(0, 50_000_000);
        let t0 = c.clock(0);
        c.send(0, 1, 1024);
        assert!(c.clock(1) > t0);
        assert!((c.clock(0) - c.clock(1)).abs() < 1e-12);
    }

    #[test]
    fn disk_write_scales_with_cluster_size() {
        let per_rank = 8 * 1024 * 1024u64;
        let t_of = |p: usize| {
            let mut c = cluster(p);
            c.disk_write(per_rank);
            c.max_clock()
        };
        let (t2, t8) = (t_of(2), t_of(8));
        assert!(
            t8 > 3.0 * t2,
            "shared-disk checkpoint must scale with p: {t2} vs {t8}"
        );
    }

    #[test]
    fn memory_write_is_independent_of_cluster_size() {
        let per_rank = 8 * 1024 * 1024u64;
        let t_of = |p: usize| {
            let mut c = cluster(p);
            c.memory_write(per_rank);
            c.max_clock()
        };
        assert!((t_of(2) - t_of(64)).abs() < 1e-12);
    }

    #[test]
    fn ledger_accounts_all_time() {
        let mut c = cluster(4);
        c.compute_all(1_000_000);
        c.compute(0, 5_000_000);
        c.allreduce(8);
        let total_clock: f64 = (0..4).map(|r| c.clock(r)).sum();
        let total_ledger = c.ledger().grand_total();
        assert!((total_clock - total_ledger).abs() < 1e-9);
    }

    #[test]
    fn trace_records_events_when_enabled() {
        let mut c = cluster(2);
        c.enable_trace(16);
        c.compute(0, 1);
        c.send(0, 1, 64);
        assert_eq!(c.trace().len(), 2);
    }

    #[test]
    fn trace_is_disabled_by_default() {
        let mut c = cluster(2);
        c.compute(0, 1);
        assert!(c.trace().is_empty());
    }

    #[test]
    fn topology_aware_halo_is_cheaper_when_ranks_share_nodes() {
        let bytes = 64 * 1024;
        // All 24 ranks on one node: every exchange is intra-node.
        let mut one_node = cluster(24);
        one_node.halo_exchange_on(bytes, 2, &Topology::new(24, 24), 0.1);
        // One rank per node: every exchange crosses the network.
        let mut spread = cluster(24);
        spread.halo_exchange_on(bytes, 2, &Topology::new(24, 1), 0.1);
        assert!(
            one_node.max_clock() < 0.3 * spread.max_clock(),
            "intra-node halos must be much cheaper: {} vs {}",
            one_node.max_clock(),
            spread.max_clock()
        );
        // And the plain model matches the fully-spread case.
        let mut plain = cluster(24);
        plain.halo_exchange(bytes, 2);
        // Interior ranks pay the same; boundary ranks pay less in the
        // topology-aware version (they have one neighbor, not two).
        assert!(spread.max_clock() <= plain.max_clock() + 1e-12);
    }

    #[test]
    fn exclusive_compute_leaves_other_ranks_behind() {
        let mut c = cluster(3);
        c.exclusive_compute(1, 10_000_000);
        assert_eq!(c.clock(0), 0.0);
        assert!(c.clock(1) > 0.0);
        c.sync_to_max();
        assert!((c.clock(0) - c.clock(1)).abs() < 1e-12);
        assert!(c.ledger().rank_total(0, ActivityKind::Idle) > 0.0);
        assert!(c.ledger().rank_total(1, ActivityKind::Reconstruct) > 0.0);
    }
}
