//! Rank-to-node topology helpers.

use serde::{Deserialize, Serialize};

/// Maps ranks onto nodes (dense fill: ranks `0..cores_per_node` on node 0,
/// the next block on node 1, and so on — the paper's process-core binding).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_ranks: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Creates a topology for `num_ranks` ranks with `cores_per_node`
    /// cores on each node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_ranks: usize, cores_per_node: usize) -> Self {
        assert!(num_ranks > 0 && cores_per_node > 0);
        Topology {
            num_ranks,
            cores_per_node,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Number of (partially or fully) occupied nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_ranks.div_ceil(self.cores_per_node)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.num_ranks);
        rank / self.cores_per_node
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on(&self, node: usize) -> std::ops::Range<usize> {
        let lo = node * self.cores_per_node;
        let hi = ((node + 1) * self.cores_per_node).min(self.num_ranks);
        lo..hi
    }

    /// True when `a` and `b` share a node (intra-node communication).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_is_dense() {
        let t = Topology::new(50, 24);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(23), 0);
        assert_eq!(t.node_of(24), 1);
        assert_eq!(t.node_of(49), 2);
        assert_eq!(t.ranks_on(2), 48..50);
    }

    #[test]
    fn same_node_detects_colocated_ranks() {
        let t = Topology::new(48, 24);
        assert!(t.same_node(0, 23));
        assert!(!t.same_node(23, 24));
    }
}
