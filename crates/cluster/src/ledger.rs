//! Per-rank activity-time accounting.

use serde::{Deserialize, Serialize};

/// What a rank spends virtual time on.
///
/// The power model assigns a different power level to each kind (e.g. a
/// rank that is `Idle` at a synchronization point draws idle power; a rank
/// doing `Reconstruct` work draws full compute power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Floating-point computation (SpMV, BLAS-1, factorization).
    Compute,
    /// Network communication (point-to-point or collective).
    Communicate,
    /// Checkpoint/restart storage traffic.
    Checkpoint,
    /// Forward-recovery reconstruction work.
    Reconstruct,
    /// Waiting at a synchronization point.
    Idle,
}

impl ActivityKind {
    /// All kinds, for iteration/reporting.
    pub const ALL: [ActivityKind; 5] = [
        ActivityKind::Compute,
        ActivityKind::Communicate,
        ActivityKind::Checkpoint,
        ActivityKind::Reconstruct,
        ActivityKind::Idle,
    ];

    fn index(self) -> usize {
        match self {
            ActivityKind::Compute => 0,
            ActivityKind::Communicate => 1,
            ActivityKind::Checkpoint => 2,
            ActivityKind::Reconstruct => 3,
            ActivityKind::Idle => 4,
        }
    }
}

/// Aggregated activity times per rank, plus total communication volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// `times[rank][kind]` in seconds.
    times: Vec<[f64; 5]>,
    bytes_moved: u64,
}

impl Ledger {
    /// A zeroed ledger for `num_ranks` ranks.
    pub fn new(num_ranks: usize) -> Self {
        Ledger {
            times: vec![[0.0; 5]; num_ranks],
            bytes_moved: 0,
        }
    }

    /// Adds `dt` seconds of `kind` to `rank`.
    pub fn add(&mut self, rank: usize, kind: ActivityKind, dt: f64) {
        self.times[rank][kind.index()] += dt;
    }

    /// Records `bytes` of network traffic.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes_moved += bytes;
    }

    /// Seconds `rank` spent on `kind`.
    pub fn rank_total(&self, rank: usize, kind: ActivityKind) -> f64 {
        self.times[rank][kind.index()]
    }

    /// Seconds summed over ranks for `kind`.
    pub fn total(&self, kind: ActivityKind) -> f64 {
        self.times.iter().map(|t| t[kind.index()]).sum()
    }

    /// Total rank-seconds over all kinds.
    pub fn grand_total(&self) -> f64 {
        self.times.iter().flatten().sum()
    }

    /// Total network traffic in bytes.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of ranks tracked.
    pub fn num_ranks(&self) -> usize {
        self.times.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_over_ranks() {
        let mut l = Ledger::new(3);
        l.add(0, ActivityKind::Compute, 1.0);
        l.add(1, ActivityKind::Compute, 2.0);
        l.add(2, ActivityKind::Idle, 0.5);
        assert_eq!(l.total(ActivityKind::Compute), 3.0);
        assert_eq!(l.total(ActivityKind::Idle), 0.5);
        assert_eq!(l.grand_total(), 3.5);
    }

    #[test]
    fn bytes_accumulate() {
        let mut l = Ledger::new(1);
        l.add_bytes(10);
        l.add_bytes(32);
        assert_eq!(l.bytes_moved(), 42);
    }

    #[test]
    fn all_kinds_are_distinct_slots() {
        let mut l = Ledger::new(1);
        for (i, k) in ActivityKind::ALL.iter().enumerate() {
            l.add(0, *k, (i + 1) as f64);
        }
        for (i, k) in ActivityKind::ALL.iter().enumerate() {
            assert_eq!(l.rank_total(0, *k), (i + 1) as f64);
        }
    }
}
