//! Property-based tests of the virtual-cluster time model.

use proptest::prelude::*;
use rsls_cluster::{ActivityKind, Cluster, MachineConfig};

fn cluster(p: usize) -> Cluster {
    Cluster::new(MachineConfig::default(), p)
}

proptest! {
    #[test]
    fn clocks_never_run_backwards(
        p in 1usize..32,
        ops in proptest::collection::vec((0u8..6, 0usize..32, 1u64..1_000_000), 1..50),
    ) {
        let mut c = cluster(p);
        let mut prev_max = 0.0f64;
        for (op, rank, amount) in ops {
            let rank = rank % p;
            match op {
                0 => c.compute(rank, amount),
                1 => c.allreduce(amount % 4096),
                2 => c.halo_exchange(amount % 4096, 2),
                3 => c.memory_write(amount % 65536),
                4 => c.disk_write(amount % 65536),
                _ => c.exclusive_compute(rank, amount),
            }
            let m = c.max_clock();
            prop_assert!(m >= prev_max);
            prop_assert!(m.is_finite());
            prev_max = m;
        }
        // Ledger accounts exactly the sum of all per-rank clocks.
        let clock_sum: f64 = (0..p).map(|r| c.clock(r)).sum();
        prop_assert!((clock_sum - c.ledger().grand_total()).abs() < 1e-6 * clock_sum.max(1.0));
    }

    #[test]
    fn collectives_synchronize_all_ranks(p in 2usize..64, skew in 1u64..100_000_000) {
        let mut c = cluster(p);
        c.compute(0, skew);
        c.allreduce(8);
        let t0 = c.clock(0);
        for r in 1..p {
            prop_assert!((c.clock(r) - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn compute_time_is_linear_in_flops(flops in 1u64..1_000_000_000) {
        let mut c1 = cluster(1);
        let mut c2 = cluster(1);
        c1.compute(0, flops);
        c2.compute(0, 2 * flops);
        prop_assert!((c2.clock(0) / c1.clock(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speed_factor_dilates_time_exactly(flops in 1u64..1_000_000, factor in 0.1f64..1.0) {
        let mut base = cluster(1);
        base.compute(0, flops);
        let mut slow = cluster(1);
        slow.set_speed_factor(0, factor);
        slow.compute(0, flops);
        prop_assert!((slow.clock(0) * factor - base.clock(0)).abs() < 1e-9 * base.clock(0));
    }

    #[test]
    fn disk_scales_with_ranks_memory_does_not(p in 2usize..64, bytes in 1u64..10_000_000) {
        let t_disk = |p: usize| {
            let mut c = cluster(p);
            c.disk_write(bytes);
            c.max_clock()
        };
        let t_mem = |p: usize| {
            let mut c = cluster(p);
            c.memory_write(bytes);
            c.max_clock()
        };
        prop_assert!(t_disk(p) > t_disk(1) || bytes < 16);
        prop_assert!((t_mem(p) - t_mem(1)).abs() < 1e-15);
    }

    #[test]
    fn idle_time_is_only_created_by_waiting(p in 2usize..16, flops in 1u64..10_000_000) {
        let mut c = cluster(p);
        // Balanced work creates no idle time.
        c.compute_all(flops);
        prop_assert_eq!(c.ledger().total(ActivityKind::Idle), 0.0);
        // Imbalance followed by a collective converts the skew to idle.
        c.compute(0, flops);
        c.allreduce(8);
        let idle = c.ledger().total(ActivityKind::Idle);
        let skew = flops as f64 / c.config().flops_per_sec * (p - 1) as f64;
        prop_assert!((idle - skew).abs() < 1e-9 * skew.max(1.0));
    }
}
