//! Property-based tests of the analytical models.

use proptest::prelude::*;
use rsls_core::{daly_interval_s, young_interval_s};
use rsls_models::general::{FaultFreeModel, OverheadModel};
use rsls_models::schemes::{CrModel, FwModel};
use rsls_models::{project_scheme, ProjectionConfig, ProjectionScheme};

proptest! {
    #[test]
    fn young_is_the_minimizer_of_cr_overhead(
        tc in 0.001f64..10.0,
        mtbf in 100.0f64..1_000_000.0,
    ) {
        let lambda = 1.0 / mtbf;
        let opt = young_interval_s(tc, mtbf);
        let frac = |i: f64| CrModel { t_c_s: tc, interval_s: i, p_ckpt_frac: 0.8 }
            .overhead_fraction(lambda);
        // Any perturbation of the interval costs more.
        for mult in [0.5, 0.8, 1.25, 2.0] {
            prop_assert!(frac(opt) <= frac(opt * mult) + 1e-12);
        }
    }

    #[test]
    fn daly_is_at_least_as_good_as_young(
        tc in 0.001f64..10.0,
        mtbf in 100.0f64..1_000_000.0,
    ) {
        let lambda = 1.0 / mtbf;
        let frac = |i: f64| CrModel { t_c_s: tc, interval_s: i, p_ckpt_frac: 0.8 }
            .overhead_fraction(lambda);
        let y = frac(young_interval_s(tc, mtbf));
        let d = frac(daly_interval_s(tc, mtbf));
        // Daly's higher-order estimate never loses more than a hair to
        // Young's in the first-order cost metric.
        prop_assert!(d <= y * 1.01);
    }

    #[test]
    fn cr_overhead_is_monotone_in_fault_rate(
        tc in 0.001f64..1.0,
        i in 1.0f64..1000.0,
        l1 in 1e-7f64..1e-3,
        l2 in 1e-7f64..1e-3,
    ) {
        let m = CrModel { t_c_s: tc, interval_s: i, p_ckpt_frac: 0.8 };
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        match (m.total_time_s(1000.0, lo), m.total_time_s(1000.0, hi)) {
            (Some(a), Some(b)) => prop_assert!(b >= a),
            (None, Some(_)) => return Err(TestCaseError::fail("halt at low rate but not high")),
            _ => {}
        }
    }

    #[test]
    fn fw_energy_and_time_are_consistent(
        tconst in 0.0f64..10.0,
        textra in 0.0f64..10.0,
        lambda in 1e-7f64..1e-4,
    ) {
        let m = FwModel {
            t_const_s: tconst,
            t_extra_per_fault_s: textra,
            active_frac: 1.0 / 24.0,
            p_idle_frac: 0.45,
        };
        if let Some(total) = m.total_time_s(1000.0, lambda) {
            prop_assert!(total >= 1000.0);
            let e = m.e_res_j(1000.0, lambda, 100.0).unwrap();
            // Energy overhead never exceeds full power for the overhead time.
            prop_assert!(e <= (total - 1000.0) * 100.0 + 1e-9);
            prop_assert!(e >= 0.0);
            let p = m.avg_power_frac(1000.0, lambda).unwrap();
            prop_assert!(p <= 1.0 + 1e-12 && p > 0.0);
        }
    }

    #[test]
    fn fault_free_energy_identity(n in 1usize..1_000_000, t in 1.0f64..10_000.0, p1 in 1.0f64..50.0) {
        let m = FaultFreeModel {
            t_solve_s: t,
            p1_w: p1,
            overhead: OverheadModel {
                spmv_comm_s: t * 0.01,
                spmv_growth_per_doubling: 0.05,
                dot_comm_per_level_s: t * 0.001,
                reference_n: 64,
            },
        };
        prop_assert!((m.energy_j(n) - m.power_w(n) * m.time_s(n)).abs() < 1e-6 * m.energy_j(n));
        prop_assert!(m.time_s(n) >= t);
    }

    #[test]
    fn projections_are_monotone_in_system_size(shift in 0usize..8) {
        let cfg = ProjectionConfig::default();
        let n1 = 1000usize << shift;
        let n2 = n1 * 2;
        for s in [ProjectionScheme::Forward, ProjectionScheme::CrDisk] {
            let a = project_scheme(s, &cfg, n1).t_res_norm;
            let b = project_scheme(s, &cfg, n2).t_res_norm;
            if a.is_finite() && b.is_finite() {
                prop_assert!(b >= a, "{s:?}: {a} then {b}");
            }
        }
    }
}
