//! Validates the CR-LC reconvergence model against *measured* extra
//! iterations: the analytical `LcModel` penalty must predict the
//! CR-LC-minus-CR-D iteration gap the driver actually produces.

use rsls_core::driver::{run, RunConfig};
use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_models::LcModel;
use rsls_sparse::generators::{banded_spd, BandedConfig};

const RANKS: usize = 8;

#[test]
fn lc_model_predicts_the_measured_reconvergence_penalty() {
    let a = banded_spd(&BandedConfig::regular(400, 7, 0.02, 17));
    let b = vec![1.0; 400];
    let ff = run(&a, &b, &RunConfig::new(Scheme::FaultFree, RANKS));
    let rho = LcModel::contraction_from_run(ff.final_relative_residual, ff.iterations);

    // One fault strictly between two checkpoints, so both schemes roll
    // back to the same known checkpoint iteration.
    let every = ((ff.iterations / 6).max(2) / 2) * 2;
    let interval = CheckpointInterval::EveryIterations(every);
    let ckpt_iter = 2 * every;
    let fault_iter = ckpt_iter + every / 2;
    assert!(fault_iter < ff.iterations);
    let sched = FaultSchedule::single_at_iteration(fault_iter, 3, FaultClass::Snf);

    let mut d_cfg = RunConfig::new(
        Scheme::Checkpoint {
            storage: CheckpointStorage::Disk,
            interval,
        },
        RANKS,
    )
    .with_faults(sched.clone());
    d_cfg.run_tag = "lcval-crd".into();
    let crd = run(&a, &b, &d_cfg);

    let keep = 8u8;
    let mut lc_cfg = RunConfig::new(
        Scheme::LossyCheckpoint {
            interval,
            keep_mantissa_bits: keep,
        },
        RANKS,
    )
    .with_faults(sched);
    lc_cfg.run_tag = "lcval-lc".into();
    let lc = run(&a, &b, &lc_cfg);

    assert!(crd.converged && lc.converged);
    let measured = lc.iterations as f64 - crd.iterations as f64;
    assert!(
        measured > 0.0,
        "an 8-bit mantissa must cost iterations: CR-LC {} vs CR-D {}",
        lc.iterations,
        crd.iterations
    );

    // Model prediction: the checkpointed iterate had contracted for
    // `ckpt_iter` steps, so its residual is ~rho^ckpt_iter; restoring it
    // with relative error 2^-keep sets the solver back by the log-ratio.
    let model = LcModel {
        keep_mantissa_bits: keep,
        contraction_per_iter: rho,
    };
    let relres_at_ckpt = rho.powi(ckpt_iter as i32);
    let predicted = model.extra_iterations_per_restore(relres_at_ckpt);
    assert!(
        predicted > 0.0,
        "the model must predict a penalty for keep={keep}"
    );
    // CG contraction is only asymptotically linear; demand agreement
    // within a factor of 2.5 (the paper-style model-vs-experiment band).
    let ratio = predicted / measured;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "model {predicted:.1} vs measured {measured:.1} extra iterations (ratio {ratio:.2})"
    );

    // And the stored-bytes side of the trade-off must match the driver's
    // accounting: (12 + keep)/64 of the plain payload. Compare fault-free
    // runs so both schemes take exactly the same number of checkpoints
    // (the faulted CR-LC run iterates — and checkpoints — longer).
    let mut d_ff = RunConfig::new(
        Scheme::Checkpoint {
            storage: CheckpointStorage::Disk,
            interval,
        },
        RANKS,
    );
    d_ff.run_tag = "lcval-crd-ff".into();
    let crd_ff = run(&a, &b, &d_ff);
    let mut lc_ff = RunConfig::new(
        Scheme::LossyCheckpoint {
            interval,
            keep_mantissa_bits: keep,
        },
        RANKS,
    );
    lc_ff.run_tag = "lcval-lc-ff".into();
    let lc_ff = run(&a, &b, &lc_ff);
    assert_eq!(
        lc_ff.iterations, crd_ff.iterations,
        "without rollbacks the quantizer must not touch the trajectory"
    );
    let frac = lc_ff.checkpoint_bytes_written as f64 / crd_ff.checkpoint_bytes_written as f64;
    // Per-save ceil() rounding is the only slack.
    assert!(
        (frac - model.stored_bytes_fraction()).abs() < 0.02,
        "stored-bytes fraction {frac} vs model {}",
        model.stored_bytes_fraction()
    );
}
