//! Scheme recommendation — the paper's research question 4.
//!
//! "Which recovery mechanism is most energy efficient for a given
//! workload? The solution to this question lies in the workload
//! properties and fault situation." (§5.3). The advisor encodes that
//! answer: given the fitted per-scheme unit costs of a workload and a
//! fault rate, it evaluates the §3.2 models for every candidate scheme
//! and ranks them under a chosen objective.

use serde::{Deserialize, Serialize};

use crate::fit::FittedParams;
use crate::schemes::{CrModel, FwModel, RdModel};

/// What to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize time-to-solution (the classical HPC objective).
    Time,
    /// Minimize energy-to-solution (the paper's focus).
    Energy,
    /// Minimize average power draw (for power-capped operation).
    Power,
}

/// Model-predicted normalized costs of one candidate scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeEstimate {
    /// Scheme label ("RD", "CR-M", "CR-D", "FW").
    pub label: String,
    /// Predicted `T / T_FF` (∞ when the scheme cannot make progress).
    pub t_norm: f64,
    /// Predicted average power relative to `N·P_1`.
    pub p_norm: f64,
    /// Predicted `E / E_FF`.
    pub e_norm: f64,
}

impl SchemeEstimate {
    /// The estimate's cost under `objective`.
    pub fn cost(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Time => self.t_norm,
            Objective::Energy => self.e_norm,
            Objective::Power => self.p_norm,
        }
    }
}

/// Workload-and-fault situation the advisor reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Situation {
    /// Fault-free time-to-solution, seconds.
    pub t_ff_s: f64,
    /// Failure rate λ, per second.
    pub lambda_per_s: f64,
    /// Per-checkpoint cost to memory, seconds.
    pub tc_mem_s: f64,
    /// Per-checkpoint cost to disk, seconds.
    pub tc_disk_s: f64,
    /// Per-fault reconstruction cost of the (best) FW scheme, seconds.
    pub t_const_s: f64,
    /// Per-fault extra-iteration time of the FW scheme, seconds.
    pub t_extra_per_fault_s: f64,
    /// Number of cores (for the FW construction power mix).
    pub num_cores: usize,
    /// Whether in-memory state survives the expected fault class (false
    /// for system-wide outages — disqualifies CR-M and plain FW).
    pub memory_survives: bool,
}

impl Situation {
    /// Builds a situation from fitted measurement parameters of an FW run
    /// and a CR-D run against the same fault-free baseline.
    pub fn from_fits(
        t_ff_s: f64,
        lambda_per_s: f64,
        fw: &FittedParams,
        cr_disk: &FittedParams,
        num_cores: usize,
    ) -> Self {
        Situation {
            t_ff_s,
            lambda_per_s,
            tc_mem_s: (cr_disk.t_c_s / 50.0).max(1e-6), // memory ≫ cheaper than shared disk
            tc_disk_s: cr_disk.t_c_s.max(1e-6),
            t_const_s: fw.t_const_s,
            t_extra_per_fault_s: fw.t_extra_per_fault_s,
            num_cores,
            memory_survives: true,
        }
    }
}

/// Evaluates the §3.2 models for every candidate scheme.
pub fn estimate_all(s: &Situation) -> Vec<SchemeEstimate> {
    let mut out = Vec::new();
    let lambda = s.lambda_per_s;

    // RD — Eq. 12. A system-wide outage wipes the replica too, so RD is
    // only a candidate when in-memory state survives the fault class.
    if s.memory_survives {
        let rd = RdModel;
        out.push(SchemeEstimate {
            label: "RD".to_string(),
            t_norm: 1.0,
            p_norm: rd.power_multiplier(),
            e_norm: 1.0 + rd.e_res_j(1.0),
        });
    }

    // CR-M / CR-D — Eqs. 9–11 with Young's interval.
    for (label, tc, p_frac, survives) in [
        ("CR-M", s.tc_mem_s, 0.98, s.memory_survives),
        ("CR-D", s.tc_disk_s, 0.88, true),
    ] {
        if !survives {
            continue;
        }
        let interval = crate::young_interval_for(tc, lambda);
        let m = CrModel {
            t_c_s: tc,
            interval_s: interval,
            p_ckpt_frac: p_frac,
        };
        let (t_norm, e_norm) = match m.total_time_s(s.t_ff_s, lambda) {
            Some(total) => {
                let e_res = m.e_res_j(s.t_ff_s, lambda, 1.0).unwrap_or(0.0);
                (total / s.t_ff_s, 1.0 + e_res / s.t_ff_s)
            }
            None => (f64::INFINITY, f64::INFINITY),
        };
        out.push(SchemeEstimate {
            label: label.to_string(),
            t_norm,
            p_norm: m.avg_power_frac(lambda),
            e_norm,
        });
    }

    // FW — Eqs. 13–16 (only applicable when surviving data exists).
    if s.memory_survives {
        let m = FwModel {
            t_const_s: s.t_const_s,
            t_extra_per_fault_s: s.t_extra_per_fault_s,
            active_frac: 1.0 / s.num_cores.max(1) as f64,
            p_idle_frac: 0.45,
        };
        let (t_norm, e_norm, p_norm) = match m.total_time_s(s.t_ff_s, lambda) {
            Some(total) => {
                let e_res = m.e_res_j(s.t_ff_s, lambda, 1.0).unwrap_or(0.0);
                (
                    total / s.t_ff_s,
                    1.0 + e_res / s.t_ff_s,
                    m.avg_power_frac(s.t_ff_s, lambda).unwrap_or(1.0),
                )
            }
            None => (f64::INFINITY, f64::INFINITY, 1.0),
        };
        out.push(SchemeEstimate {
            label: "FW".to_string(),
            t_norm,
            p_norm,
            e_norm,
        });
    }

    out
}

/// Ranks the candidates under `objective` (best first; ties broken by
/// energy, then time).
///
/// # Example
///
/// ```
/// use rsls_models::{recommend, Objective, Situation};
///
/// let situation = Situation {
///     t_ff_s: 1000.0,
///     lambda_per_s: 1e-3,
///     tc_mem_s: 0.01,
///     tc_disk_s: 2.0,
///     t_const_s: 1.0,
///     t_extra_per_fault_s: 20.0,
///     num_cores: 64,
///     memory_survives: true,
/// };
/// let ranked = recommend(&situation, Objective::Time);
/// // RD is the only scheme with zero time overhead (Eq. 12).
/// assert_eq!(ranked[0].label, "RD");
/// ```
pub fn recommend(s: &Situation, objective: Objective) -> Vec<SchemeEstimate> {
    let mut estimates = estimate_all(s);
    estimates.sort_by(|a, b| {
        a.cost(objective)
            .partial_cmp(&b.cost(objective))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.e_norm
                    .partial_cmp(&b.e_norm)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(
                a.t_norm
                    .partial_cmp(&b.t_norm)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    estimates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn situation() -> Situation {
        Situation {
            t_ff_s: 1000.0,
            lambda_per_s: 1e-3,
            tc_mem_s: 0.01,
            tc_disk_s: 2.0,
            t_const_s: 1.0,
            t_extra_per_fault_s: 20.0,
            num_cores: 64,
            memory_survives: true,
        }
    }

    #[test]
    fn time_objective_prefers_rd() {
        // RD is the only scheme with zero time overhead (Eq. 12).
        let ranked = recommend(&situation(), Objective::Time);
        assert_eq!(ranked[0].label, "RD");
    }

    #[test]
    fn rd_is_never_the_power_winner() {
        let ranked = recommend(&situation(), Objective::Power);
        assert_ne!(ranked[0].label, "RD");
        assert_eq!(ranked.last().unwrap().label, "RD");
    }

    #[test]
    fn energy_objective_depends_on_reconstruction_cost() {
        // Cheap accurate reconstruction: FW wins energy.
        let cheap = Situation {
            t_const_s: 0.1,
            t_extra_per_fault_s: 1.0,
            ..situation()
        };
        let best_cheap = &recommend(&cheap, Objective::Energy)[0];
        assert!(
            best_cheap.label == "FW" || best_cheap.label == "CR-M",
            "cheap recovery should beat RD: {best_cheap:?}"
        );
        assert!(best_cheap.e_norm < 2.0);

        // Expensive inaccurate reconstruction (the nd24k situation): the
        // ranking flips toward RD.
        let expensive = Situation {
            t_const_s: 100.0,
            t_extra_per_fault_s: 800.0,
            tc_mem_s: 300.0,
            tc_disk_s: 600.0,
            ..situation()
        };
        let ranked = recommend(&expensive, Objective::Energy);
        assert_eq!(ranked[0].label, "RD", "{ranked:?}");
    }

    #[test]
    fn swo_situation_disqualifies_memory_based_schemes() {
        let swo = Situation {
            memory_survives: false,
            ..situation()
        };
        let estimates = estimate_all(&swo);
        assert!(estimates
            .iter()
            .all(|e| e.label != "CR-M" && e.label != "FW" && e.label != "RD"));
        assert!(estimates.iter().any(|e| e.label == "CR-D"));
    }

    #[test]
    fn estimates_cover_all_objectives() {
        let s = situation();
        for e in estimate_all(&s) {
            for o in [Objective::Time, Objective::Energy, Objective::Power] {
                assert!(e.cost(o) > 0.0);
            }
        }
    }
}
