//! Generalized time/power/energy models (§3.1, Eqs. 1–8).

use serde::{Deserialize, Serialize};

/// Parallel-overhead model `T_O(N)` for the fixed-time-scaled workload.
///
/// Each CG iteration communicates for the SpMV halo (roughly constant per
/// process under weak scaling with banded structure — the paper uses
/// measured node-aware SpMV data) and for the two inner products
/// (`log₂ N` reduction depth). Totals are per-solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Per-solve SpMV communication at the reference scale, seconds.
    pub spmv_comm_s: f64,
    /// Mild growth of SpMV communication with scale: multiplier per
    /// doubling of N beyond the reference (0 = perfectly scalable).
    pub spmv_growth_per_doubling: f64,
    /// Per-solve inner-product cost per `log₂ N` level, seconds.
    pub dot_comm_per_level_s: f64,
    /// Reference process count at which `spmv_comm_s` was measured.
    pub reference_n: usize,
}

impl OverheadModel {
    /// `T_O(N)` in seconds.
    pub fn overhead_s(&self, n: usize) -> f64 {
        assert!(n >= 1);
        let levels = (n as f64).log2().max(0.0);
        let doublings = (n as f64 / self.reference_n as f64).log2().max(0.0);
        self.spmv_comm_s * (1.0 + self.spmv_growth_per_doubling * doublings)
            + self.dot_comm_per_level_s * levels
    }
}

/// The fault-free workload model (Eqs. 1, 2, 4, 6, 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultFreeModel {
    /// `T_solve`: time to complete the (per-process constant) workload,
    /// seconds. Under fixed-time scaling this does not change with N.
    pub t_solve_s: f64,
    /// Per-core power `P_1(w)`, watts.
    pub p1_w: f64,
    /// Parallel overhead model.
    pub overhead: OverheadModel,
}

impl FaultFreeModel {
    /// Eq. 2: `T_N(w') = T_solve + T_O(N)`.
    pub fn time_s(&self, n: usize) -> f64 {
        self.t_solve_s + self.overhead.overhead_s(n)
    }

    /// Eq. 4: `P_N(w') = N · P_1(w)`.
    pub fn power_w(&self, n: usize) -> f64 {
        n as f64 * self.p1_w
    }

    /// Eq. 7: `E_N(w') = N · P_1 · (T_solve + T_O(N))`.
    pub fn energy_j(&self, n: usize) -> f64 {
        self.power_w(n) * self.time_s(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultFreeModel {
        FaultFreeModel {
            t_solve_s: 100.0,
            p1_w: 8.0,
            overhead: OverheadModel {
                spmv_comm_s: 5.0,
                spmv_growth_per_doubling: 0.05,
                dot_comm_per_level_s: 0.5,
                reference_n: 64,
            },
        }
    }

    #[test]
    fn sequential_case_reduces_to_t_solve_plus_small_overhead() {
        let m = model();
        // N=1: log2(1)=0 levels, no doublings below reference.
        assert!((m.time_s(1) - 105.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_time_scaling_keeps_time_nearly_constant() {
        let m = model();
        let t64 = m.time_s(64);
        let t4096 = m.time_s(4096);
        // Only the (mild) overhead grows.
        assert!(t4096 > t64);
        assert!(t4096 < 1.1 * t64);
    }

    #[test]
    fn power_scales_linearly_with_cores() {
        let m = model();
        assert_eq!(m.power_w(100), 800.0);
        assert_eq!(m.power_w(200), 1600.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = model();
        for n in [1usize, 16, 1024] {
            assert!((m.energy_j(n) - m.power_w(n) * m.time_s(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn overhead_is_monotone_in_n() {
        let m = model();
        let mut prev = 0.0;
        for n in [1usize, 2, 8, 64, 512, 4096] {
            let o = m.overhead.overhead_s(n);
            assert!(o >= prev);
            prev = o;
        }
    }
}
