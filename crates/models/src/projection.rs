//! Weak-scaling cost projection for large systems (§6, Figure 9).
//!
//! The projection keeps 50K nonzeros per process (fixed-time scaling),
//! assumes a constant per-process MTBF (so the system failure rate λ grows
//! linearly with N), and extrapolates the measured per-scheme unit costs:
//! `t_C` of CR-D and `t_const` of FW grow linearly with system size,
//! `t_C` of CR-M stays flat — exactly the trends the paper measured on its
//! 8-node cluster and assumes to continue.

use serde::{Deserialize, Serialize};

use crate::general::OverheadModel;
use crate::schemes::{CrModel, FwModel, RdModel};

/// Which scheme a projection point describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProjectionScheme {
    /// Dual modular redundancy.
    Rd,
    /// Checkpoint to shared disk.
    CrDisk,
    /// Checkpoint to node-local memory.
    CrMemory,
    /// Forward recovery (best case: optimized LI/LSI with DVFS).
    Forward,
}

impl ProjectionScheme {
    /// All projected schemes, in the paper's Figure 9 order.
    pub const ALL: [ProjectionScheme; 4] = [
        ProjectionScheme::Rd,
        ProjectionScheme::CrDisk,
        ProjectionScheme::CrMemory,
        ProjectionScheme::Forward,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ProjectionScheme::Rd => "RD",
            ProjectionScheme::CrDisk => "CR-D",
            ProjectionScheme::CrMemory => "CR-M",
            ProjectionScheme::Forward => "FW",
        }
    }
}

/// Calibration of the §6 projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectionConfig {
    /// Nonzeros per process (the paper scales matrices to keep 50K).
    pub nnz_per_process: u64,
    /// Per-process MTBF, hours (the paper assumes 6K hours, giving a
    /// linearly decreasing system MTBF).
    pub per_process_mtbf_h: f64,
    /// Fault-free solve time of the fixed-time workload, seconds.
    pub t_solve_s: f64,
    /// Parallel overhead model `T_O(N)`.
    pub overhead: OverheadModel,
    /// CR-D per-checkpoint cost at N processes: `base + slope · N`.
    pub tc_disk_base_s: f64,
    /// CR-D per-checkpoint cost slope, seconds per process.
    pub tc_disk_slope_s: f64,
    /// CR-M per-checkpoint cost (constant with N).
    pub tc_mem_s: f64,
    /// FW per-reconstruction cost at N processes: `base + slope · N`.
    pub t_const_base_s: f64,
    /// FW per-reconstruction cost slope, seconds per process.
    pub t_const_slope_s: f64,
    /// FW extra-iteration time per fault as a fraction of the fault-free
    /// time (the paper adopts "an average normalized overhead based on the
    /// fault-free case").
    pub fw_extra_frac_per_fault: f64,
    /// Idle-core power during FW construction relative to `P_1`
    /// (the paper projects with 0.45).
    pub fw_p_idle_frac: f64,
    /// Core power during CR-D checkpointing relative to `P_1`
    /// (the paper projects with 0.40).
    pub crd_p_ckpt_frac: f64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        // Constants in the range fitted from the experiment suite on the
        // modeled 8-node/192-core platform (see EXPERIMENTS.md).
        ProjectionConfig {
            nnz_per_process: 50_000,
            per_process_mtbf_h: 6_000.0,
            t_solve_s: 600.0,
            overhead: OverheadModel {
                spmv_comm_s: 30.0,
                spmv_growth_per_doubling: 0.08,
                dot_comm_per_level_s: 3.0,
                reference_n: 192,
            },
            tc_disk_base_s: 0.05,
            tc_disk_slope_s: 2.0e-4,
            tc_mem_s: 0.01,
            t_const_base_s: 0.5,
            t_const_slope_s: 1.0e-5,
            fw_extra_frac_per_fault: 0.004,
            fw_p_idle_frac: 0.45,
            crd_p_ckpt_frac: 0.40,
        }
    }
}

/// One projected point of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectionPoint {
    /// Scheme.
    pub scheme: ProjectionScheme,
    /// Process count.
    pub n: usize,
    /// System failure rate λ, per second.
    pub lambda_per_s: f64,
    /// `T_res / T_FF` (∞ = no forward progress).
    pub t_res_norm: f64,
    /// `E_res / E_FF`.
    pub e_res_norm: f64,
    /// Average power relative to `N · P_1`.
    pub p_norm: f64,
}

impl ProjectionConfig {
    /// Fault-free time at N processes.
    pub fn t_base_s(&self, n: usize) -> f64 {
        self.t_solve_s + self.overhead.overhead_s(n)
    }

    /// System failure rate at N processes, per second.
    pub fn lambda_per_s(&self, n: usize) -> f64 {
        n as f64 / (self.per_process_mtbf_h * 3600.0)
    }
}

/// Projects one scheme at one system size.
pub fn project_scheme(
    scheme: ProjectionScheme,
    cfg: &ProjectionConfig,
    n: usize,
) -> ProjectionPoint {
    let t_base = cfg.t_base_s(n);
    let lambda = cfg.lambda_per_s(n);
    // Normalized full power is 1 by construction (N · P1 / N · P1).
    let (t_res_norm, e_res_norm, p_norm) = match scheme {
        ProjectionScheme::Rd => {
            let rd = RdModel;
            (rd.t_res_s() / t_base, 1.0, rd.power_multiplier())
        }
        ProjectionScheme::CrDisk | ProjectionScheme::CrMemory => {
            let (t_c, p_frac) = match scheme {
                ProjectionScheme::CrDisk => (
                    cfg.tc_disk_base_s + cfg.tc_disk_slope_s * n as f64,
                    cfg.crd_p_ckpt_frac,
                ),
                _ => (cfg.tc_mem_s, 0.98),
            };
            let interval = rsls_core::young_interval_s(t_c, 1.0 / lambda);
            let m = CrModel {
                t_c_s: t_c,
                interval_s: interval,
                p_ckpt_frac: p_frac,
            };
            match m.total_time_s(t_base, lambda) {
                Some(total) => {
                    let e_res = m.e_res_j(t_base, lambda, 1.0).unwrap_or(0.0);
                    // Energy normalized by E_FF = 1.0 (power) × t_base.
                    (
                        (total - t_base) / t_base,
                        e_res / t_base,
                        m.avg_power_frac(lambda),
                    )
                }
                None => (f64::INFINITY, f64::INFINITY, p_frac),
            }
        }
        ProjectionScheme::Forward => {
            let m = FwModel {
                t_const_s: cfg.t_const_base_s + cfg.t_const_slope_s * n as f64,
                t_extra_per_fault_s: cfg.fw_extra_frac_per_fault * t_base,
                active_frac: 1.0 / n as f64,
                p_idle_frac: cfg.fw_p_idle_frac,
            };
            match m.total_time_s(t_base, lambda) {
                Some(total) => {
                    let e_res = m.e_res_j(t_base, lambda, 1.0).unwrap_or(0.0);
                    (
                        (total - t_base) / t_base,
                        e_res / t_base,
                        m.avg_power_frac(t_base, lambda).unwrap_or(1.0),
                    )
                }
                None => (f64::INFINITY, f64::INFINITY, cfg.fw_p_idle_frac),
            }
        }
    };
    ProjectionPoint {
        scheme,
        n,
        lambda_per_s: lambda,
        t_res_norm,
        e_res_norm,
        p_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: [usize; 6] = [1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000];

    #[test]
    fn rd_is_flat_across_scales() {
        let cfg = ProjectionConfig::default();
        for &n in &SIZES {
            let p = project_scheme(ProjectionScheme::Rd, &cfg, n);
            assert_eq!(p.t_res_norm, 0.0);
            assert_eq!(p.e_res_norm, 1.0);
            assert_eq!(p.p_norm, 2.0);
        }
    }

    #[test]
    fn fw_overhead_grows_roughly_linearly() {
        // Paper: "T_res and E_res of FW increases roughly linearly".
        let cfg = ProjectionConfig::default();
        let t: Vec<f64> = SIZES
            .iter()
            .map(|&n| project_scheme(ProjectionScheme::Forward, &cfg, n).t_res_norm)
            .collect();
        assert!(t.windows(2).all(|w| w[1] > w[0]), "monotone growth: {t:?}");
        // Linearity check: quadrupling N multiplies overhead by ~4 (±50%).
        let ratio = t[2] / t[1];
        assert!((2.0..8.0).contains(&ratio), "growth ratio {ratio}");
    }

    #[test]
    fn cr_disk_grows_faster_than_fw() {
        // Paper: "T_res and E_res of CR-D increases faster".
        let cfg = ProjectionConfig::default();
        let at = |s, n| project_scheme(s, &cfg, n).t_res_norm;
        let n = 1_000_000;
        assert!(
            at(ProjectionScheme::CrDisk, n) > at(ProjectionScheme::Forward, n),
            "CR-D must dominate FW at exascale"
        );
        // And the growth *rate* is steeper.
        let fw_growth =
            at(ProjectionScheme::Forward, 256_000) / at(ProjectionScheme::Forward, 16_000);
        let crd_growth =
            at(ProjectionScheme::CrDisk, 256_000) / at(ProjectionScheme::CrDisk, 16_000);
        assert!(
            crd_growth > fw_growth,
            "CR-D {crd_growth} vs FW {fw_growth}"
        );
    }

    #[test]
    fn cr_memory_overhead_stays_negligible() {
        // Paper: CR-M performs best in the projection (near-zero overhead).
        let cfg = ProjectionConfig::default();
        for &n in &SIZES {
            let p = project_scheme(ProjectionScheme::CrMemory, &cfg, n);
            assert!(
                p.t_res_norm < 0.05,
                "CR-M overhead at {n}: {}",
                p.t_res_norm
            );
        }
    }

    #[test]
    fn power_of_fw_and_cr_disk_drops_at_scale() {
        // Paper: "P of FW and CR-D drops as the time cost in recovery or
        // reconstruction becomes dominant".
        let cfg = ProjectionConfig::default();
        for s in [ProjectionScheme::Forward, ProjectionScheme::CrDisk] {
            let small = project_scheme(s, &cfg, 1_000).p_norm;
            let large = project_scheme(s, &cfg, 1_000_000).p_norm;
            assert!(
                large < small,
                "{}: power must drop ({} -> {})",
                s.label(),
                small,
                large
            );
        }
    }

    #[test]
    fn overheads_eventually_dominate_fault_free_cost() {
        // Paper: "T_res and E_res for FW and CR-D become larger than the
        // time and energy required for the fault-free case".
        let cfg = ProjectionConfig::default();
        let fw = project_scheme(ProjectionScheme::Forward, &cfg, 1_000_000);
        let crd = project_scheme(ProjectionScheme::CrDisk, &cfg, 1_000_000);
        assert!(fw.t_res_norm > 1.0 || crd.t_res_norm > 1.0);
    }

    #[test]
    fn lambda_decreases_system_mtbf_linearly() {
        let cfg = ProjectionConfig::default();
        let l1 = cfg.lambda_per_s(1_000);
        let l2 = cfg.lambda_per_s(2_000);
        assert!((l2 / l1 - 2.0).abs() < 1e-12);
    }
}
