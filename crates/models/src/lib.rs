#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Analytical performance–energy–resilience models (paper §3 and §6).
//!
//! The crate mirrors the paper's modeling structure:
//!
//! * [`general`] — the generalized metrics of §3.1 (Eqs. 1–8):
//!   time/power/energy for original and fixed-time-scaled workloads,
//! * [`schemes`] — the per-scheme refinements of §3.2 (Eqs. 9–16):
//!   checkpoint/restart, redundancy, and forward recovery,
//! * [`fit`] — extraction of model parameters (`t_C`, `t_const`,
//!   `t_extra`, λ, per-iteration time) from measured [`RunReport`]s,
//! * [`validation`] — model-vs-experiment comparison rows (Table 6),
//! * [`projection`] — weak-scaling projection to very large systems with
//!   decreasing MTBF (§6, Figure 9),
//! * [`advisor`] — scheme recommendation from the models (the paper's
//!   research question 4).
//!
//! [`RunReport`]: rsls_core::RunReport

pub mod advisor;
pub mod fit;
pub mod general;
pub mod projection;
pub mod schemes;
pub mod validation;

pub use advisor::{estimate_all, recommend, Objective, SchemeEstimate, Situation};
pub use fit::FittedParams;
pub use general::FaultFreeModel;
pub use projection::{project_scheme, ProjectionConfig, ProjectionPoint, ProjectionScheme};
pub use schemes::{CrModel, FwModel, LcModel, RdModel};
pub use validation::{validate, ValidationRow};

/// Young's interval from a checkpoint cost and a failure *rate*
/// (`MTBF = 1/λ`) — convenience for the advisor and projection.
pub fn young_interval_for(checkpoint_cost_s: f64, lambda_per_s: f64) -> f64 {
    rsls_core::young_interval_s(checkpoint_cost_s, 1.0 / lambda_per_s)
}
