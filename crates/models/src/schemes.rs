//! Per-scheme resilience cost models (§3.2, Eqs. 9–16).

use serde::{Deserialize, Serialize};

/// Checkpoint/restart cost model (Eqs. 9–11).
///
/// The paper's `T_chkpt = t_C · T_N / I_C` and `T_lost ≈ (I_C/2) · λ · T_N`
/// both reference the *total* run time on the right-hand side, so the
/// total is the fixed point
/// `T = T_base / (1 − t_C/I_C − λ·I_C/2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrModel {
    /// Per-checkpoint cost `t_C`, seconds.
    pub t_c_s: f64,
    /// Checkpoint interval `I_C`, seconds.
    pub interval_s: f64,
    /// Power during checkpoint/restore phases relative to `N·P_1`
    /// (< 1: "CPUs are not highly utilized during checkpointing").
    pub p_ckpt_frac: f64,
}

impl CrModel {
    /// The checkpointing + lost-work overhead fraction
    /// `t_C/I_C + λ·I_C/2` of total time.
    pub fn overhead_fraction(&self, lambda_per_s: f64) -> f64 {
        self.t_c_s / self.interval_s + lambda_per_s * self.interval_s / 2.0
    }

    /// Total time including resilience (fixed point of Eqs. 9–11), or
    /// `None` when the overhead fraction reaches 1 (no forward progress —
    /// the §6 "workload progress can possibly halt" regime).
    pub fn total_time_s(&self, t_base_s: f64, lambda_per_s: f64) -> Option<f64> {
        let frac = self.overhead_fraction(lambda_per_s);
        if frac >= 1.0 {
            None
        } else {
            Some(t_base_s / (1.0 - frac))
        }
    }

    /// `T_res` (Eq. 9): total minus base time.
    pub fn t_res_s(&self, t_base_s: f64, lambda_per_s: f64) -> Option<f64> {
        self.total_time_s(t_base_s, lambda_per_s)
            .map(|t| t - t_base_s)
    }

    /// Average power over the run relative to `N·P_1`: checkpoint phases
    /// at `p_ckpt_frac`, everything else at 1. (Lost-work recomputation is
    /// normal execution, hence full power.)
    pub fn avg_power_frac(&self, lambda_per_s: f64) -> f64 {
        let ckpt_share = self.t_c_s / self.interval_s;
        let total_share = 1.0; // normalized
        let frac = self.overhead_fraction(lambda_per_s).min(0.999_999);
        // Share of *total* time spent checkpointing: t_C/I_C of total.
        let ckpt_of_total = ckpt_share / (1.0 - frac) * (1.0 - frac); // = ckpt_share
        (ckpt_of_total * self.p_ckpt_frac + (total_share - ckpt_of_total)) / total_share
    }

    /// Resilience energy overhead `E_res` in joules for a system drawing
    /// `full_power_w` during execution.
    pub fn e_res_j(&self, t_base_s: f64, lambda_per_s: f64, full_power_w: f64) -> Option<f64> {
        let total = self.total_time_s(t_base_s, lambda_per_s)?;
        let ckpt_time = total * self.t_c_s / self.interval_s;
        let lost_time = total - t_base_s - ckpt_time;
        Some(ckpt_time * self.p_ckpt_frac * full_power_w + lost_time.max(0.0) * full_power_w)
    }
}

/// Dual modular redundancy (Eq. 12): no time overhead, double power.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdModel;

impl RdModel {
    /// `T_res = 0`.
    pub fn t_res_s(&self) -> f64 {
        0.0
    }

    /// `P_N,res = N · P_1` (Eq. 12): total power is 2×.
    pub fn power_multiplier(&self) -> f64 {
        2.0
    }

    /// `E_res = E_base` (the replica's energy).
    pub fn e_res_j(&self, e_base_j: f64) -> f64 {
        e_base_j
    }
}

/// Forward-recovery cost model (Eqs. 13–16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FwModel {
    /// Per-reconstruction cost `t_const`, seconds (0 for F0/FI).
    pub t_const_s: f64,
    /// Extra-iteration time per fault, seconds (workload/matrix dependent;
    /// fitted from experiments).
    pub t_extra_per_fault_s: f64,
    /// Fraction of cores active during construction (`Ñ/N`; the §4.1
    /// localized constructions have `Ñ = 1`).
    pub active_frac: f64,
    /// Idle/busy-wait core power during construction relative to `P_1`
    /// (0.45 with DVFS throttling per §6, ~0.74 without).
    pub p_idle_frac: f64,
}

impl FwModel {
    /// Total time fixed point of
    /// `T = T_base + λ·T·(t_const + t_extra)` (Eqs. 13–14), or `None`
    /// when recovery work outpaces progress.
    pub fn total_time_s(&self, t_base_s: f64, lambda_per_s: f64) -> Option<f64> {
        let frac = lambda_per_s * (self.t_const_s + self.t_extra_per_fault_s);
        if frac >= 1.0 {
            None
        } else {
            Some(t_base_s / (1.0 - frac))
        }
    }

    /// `T_res = T_const + T_extra` (Eq. 13).
    pub fn t_res_s(&self, t_base_s: f64, lambda_per_s: f64) -> Option<f64> {
        self.total_time_s(t_base_s, lambda_per_s)
            .map(|t| t - t_base_s)
    }

    /// Power during construction relative to `N·P_1` (Eq. 15):
    /// `(Ñ + (N−Ñ)·P_idle/P_1) / N`.
    pub fn construction_power_frac(&self) -> f64 {
        self.active_frac + (1.0 - self.active_frac) * self.p_idle_frac
    }

    /// Average power over the whole run relative to `N·P_1`.
    pub fn avg_power_frac(&self, t_base_s: f64, lambda_per_s: f64) -> Option<f64> {
        let total = self.total_time_s(t_base_s, lambda_per_s)?;
        let construct_time = total * lambda_per_s * self.t_const_s;
        let other = total - construct_time;
        Some((construct_time * self.construction_power_frac() + other) / total)
    }

    /// `E_res` (Eq. 16): construction at reduced power plus extra
    /// iterations at full power.
    pub fn e_res_j(&self, t_base_s: f64, lambda_per_s: f64, full_power_w: f64) -> Option<f64> {
        let total = self.total_time_s(t_base_s, lambda_per_s)?;
        let construct_time = total * lambda_per_s * self.t_const_s;
        let extra_time = total * lambda_per_s * self.t_extra_per_fault_s;
        Some(
            construct_time * self.construction_power_frac() * full_power_w
                + extra_time * full_power_w,
        )
    }
}

/// CR-LC reconvergence model: the compression-error / extra-iteration
/// trade-off of lossy-compressed checkpointing (Tao et al.,
/// arXiv:1804.11268), specialized to the mantissa-truncation codec.
///
/// A rollback restores an iterate carrying the codec's bounded relative
/// error `ε = 2^-keep`. When `ε` exceeds the solver's residual at the
/// checkpointed iterate, the restored state is *less converged* than the
/// exact rollback CR-D would produce, and CG must iterate the difference
/// away. With an asymptotic per-iteration contraction `ρ` the penalty is
///
/// `Δiters ≈ ln(ε / relres_ckpt) / ln(1/ρ)`,
///
/// clamped at zero once the quantization error is already below the
/// checkpointed residual — the regime where CR-LC is free accuracy-wise
/// and strictly cheaper in stored bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LcModel {
    /// Mantissa bits kept per double (1–52).
    pub keep_mantissa_bits: u8,
    /// Asymptotic CG contraction factor per iteration, `ρ ∈ (0, 1)`:
    /// the relative residual shrinks by `ρ` each step. Fit it from a
    /// fault-free run with [`LcModel::contraction_from_run`].
    pub contraction_per_iter: f64,
}

impl LcModel {
    /// Bound on the restored iterate's relative error: `2^-keep`.
    pub fn relative_error(&self) -> f64 {
        (-f64::from(self.keep_mantissa_bits.clamp(1, 52))).exp2()
    }

    /// Stored bytes relative to an uncompressed checkpoint:
    /// `(12 + keep) / 64` (sign + exponent + kept mantissa, bit-packed).
    pub fn stored_bytes_fraction(&self) -> f64 {
        (12.0 + f64::from(self.keep_mantissa_bits.clamp(1, 52))) / 64.0
    }

    /// Fits the contraction factor from a fault-free run that reduced the
    /// relative residual from 1 to `final_relres` over `iterations` steps:
    /// `ρ = final_relres^(1/iterations)`.
    pub fn contraction_from_run(final_relres: f64, iterations: usize) -> f64 {
        assert!(final_relres > 0.0 && final_relres < 1.0);
        assert!(iterations > 0);
        final_relres.powf(1.0 / iterations as f64)
    }

    /// Extra iterations one rollback costs *beyond* an exact (CR-D)
    /// rollback to the same checkpoint, given the relative residual the
    /// checkpointed iterate had reached.
    pub fn extra_iterations_per_restore(&self, relres_at_checkpoint: f64) -> f64 {
        assert!(relres_at_checkpoint > 0.0);
        let rho = self.contraction_per_iter;
        assert!(rho > 0.0 && rho < 1.0, "contraction must be in (0,1)");
        let eps = self.relative_error();
        if eps <= relres_at_checkpoint {
            return 0.0;
        }
        (eps / relres_at_checkpoint).ln() / (1.0 / rho).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_overhead_has_a_minimum_at_youngs_interval() {
        // d/dI (tc/I + λI/2) = 0 at I = sqrt(2 tc / λ) — Young's formula.
        let tc = 2.0f64;
        let lambda = 1.0f64 / 1000.0;
        let opt = (2.0 * tc / lambda).sqrt();
        let at = |i: f64| {
            CrModel {
                t_c_s: tc,
                interval_s: i,
                p_ckpt_frac: 0.8,
            }
            .overhead_fraction(lambda)
        };
        assert!(at(opt) < at(opt / 2.0));
        assert!(at(opt) < at(opt * 2.0));
    }

    #[test]
    fn cr_total_time_exceeds_base() {
        let m = CrModel {
            t_c_s: 1.0,
            interval_s: 50.0,
            p_ckpt_frac: 0.8,
        };
        let total = m.total_time_s(1000.0, 1e-3).unwrap();
        assert!(total > 1000.0);
        assert!((m.t_res_s(1000.0, 1e-3).unwrap() - (total - 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn cr_halts_when_overhead_reaches_unity() {
        let m = CrModel {
            t_c_s: 30.0,
            interval_s: 50.0,
            p_ckpt_frac: 0.8,
        };
        // tc/I = 0.6; λI/2 = 0.5 → 1.1 ≥ 1: no progress.
        assert!(m.total_time_s(1000.0, 0.02).is_none());
    }

    #[test]
    fn cr_average_power_is_below_full() {
        let m = CrModel {
            t_c_s: 5.0,
            interval_s: 50.0,
            p_ckpt_frac: 0.5,
        };
        let p = m.avg_power_frac(1e-4);
        assert!(p < 1.0 && p > 0.9, "p = {p}");
    }

    #[test]
    fn rd_model_matches_eq_12() {
        let rd = RdModel;
        assert_eq!(rd.t_res_s(), 0.0);
        assert_eq!(rd.power_multiplier(), 2.0);
        assert_eq!(rd.e_res_j(123.0), 123.0);
    }

    #[test]
    fn fw_localized_construction_drops_power() {
        // Ñ = 1 of 24 cores, DVFS-throttled waiters at 0.45·P1.
        let m = FwModel {
            t_const_s: 3.0,
            t_extra_per_fault_s: 10.0,
            active_frac: 1.0 / 24.0,
            p_idle_frac: 0.45,
        };
        let frac = m.construction_power_frac();
        assert!((frac - (1.0 / 24.0 + 23.0 / 24.0 * 0.45)).abs() < 1e-12);
        assert!(frac < 0.5);
    }

    #[test]
    fn fw_time_overhead_grows_with_fault_rate() {
        let m = FwModel {
            t_const_s: 2.0,
            t_extra_per_fault_s: 8.0,
            active_frac: 1.0 / 24.0,
            p_idle_frac: 0.45,
        };
        let lo = m.t_res_s(1000.0, 1e-4).unwrap();
        let hi = m.t_res_s(1000.0, 1e-3).unwrap();
        assert!(hi > 5.0 * lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn fw_average_power_sits_between_construction_and_full() {
        let m = FwModel {
            t_const_s: 5.0,
            t_extra_per_fault_s: 5.0,
            active_frac: 1.0 / 24.0,
            p_idle_frac: 0.45,
        };
        let avg = m.avg_power_frac(100.0, 1e-3).unwrap();
        assert!(avg < 1.0);
        assert!(avg > m.construction_power_frac());
    }

    #[test]
    fn lc_penalty_is_monotone_in_compression_error() {
        let rho = LcModel::contraction_from_run(1e-12, 100);
        let penalty = |keep: u8| {
            LcModel {
                keep_mantissa_bits: keep,
                contraction_per_iter: rho,
            }
            .extra_iterations_per_restore(1e-9)
        };
        // Fewer kept bits → larger error → more reconvergence iterations.
        assert!(penalty(4) > penalty(12));
        assert!(penalty(12) > penalty(20));
        // Once the quantization error drops below the checkpointed
        // residual the rollback is effectively exact.
        assert_eq!(penalty(40), 0.0);
    }

    #[test]
    fn lc_stored_bytes_track_the_bit_packing() {
        let m = LcModel {
            keep_mantissa_bits: 20,
            contraction_per_iter: 0.7,
        };
        assert!((m.stored_bytes_fraction() - 0.5).abs() < 1e-12);
        assert!((m.relative_error() - (2.0f64).powi(-20)).abs() < 1e-18);
    }

    #[test]
    fn fw_energy_overhead_accounts_both_phases() {
        let m = FwModel {
            t_const_s: 4.0,
            t_extra_per_fault_s: 6.0,
            active_frac: 1.0 / 24.0,
            p_idle_frac: 0.45,
        };
        let e = m.e_res_j(1000.0, 1e-3, 100.0).unwrap();
        let total = m.total_time_s(1000.0, 1e-3).unwrap();
        // Upper bound: everything at full power.
        assert!(e < total * 1e-3 * 10.0 * 100.0 + 1e-9);
        assert!(e > 0.0);
    }
}
