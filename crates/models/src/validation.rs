//! Model-vs-experiment validation (Table 6).

use serde::{Deserialize, Serialize};

use rsls_core::RunReport;

use crate::fit::FittedParams;
use crate::schemes::{CrModel, FwModel};

/// One row of the Table 6 comparison: modeled and measured resilience
/// overheads, both normalized to the fault-free baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Scheme label.
    pub scheme: String,
    /// Modeled `T_res / T_FF`.
    pub model_t_res: f64,
    /// Modeled average power relative to FF.
    pub model_p: f64,
    /// Modeled `E_res / E_FF`.
    pub model_e_res: f64,
    /// Measured `T_res / T_FF`.
    pub exp_t_res: f64,
    /// Measured average power relative to FF.
    pub exp_p: f64,
    /// Measured `E_res / E_FF`.
    pub exp_e_res: f64,
}

/// Builds a Table 6 row for a measured scheme run.
///
/// The model parameters (`t_C`, `t_const`, `t_extra`, λ) are fitted from
/// the *measured* run — the paper's §5.3 methodology ("the unit time for
/// reconstruction t_const is measured") — and then plugged back into the
/// §3.2 closed forms. Model and measurement therefore agree on inputs and
/// differ only by the model's structural simplifications, which is exactly
/// what Table 6 quantifies.
pub fn validate(scheme_run: &RunReport, ff: &RunReport) -> ValidationRow {
    let params = FittedParams::from_reports(scheme_run, ff);
    let norm = scheme_run.normalized_vs(ff);
    let label = scheme_run.scheme.clone();

    let (model_t_res, model_p, model_e_res) = if label == "FF" {
        (0.0, 1.0, 0.0)
    } else if label == "RD" {
        // Eq. 12: no time overhead, double power and energy.
        (0.0, 2.0, 1.0)
    } else if label.starts_with("CR") {
        let interval_s = scheme_run
            .checkpoint_interval_iters
            .map(|i| i as f64 * params.t_iter_s)
            .unwrap_or(100.0 * params.t_iter_s);
        // Fold the measured restore cost into the effective per-checkpoint
        // overhead so the model sees all storage traffic.
        let m = CrModel {
            t_c_s: params.t_c_s + params.t_restore_per_fault_s * params.lambda_per_s * interval_s,
            interval_s,
            p_ckpt_frac: 0.8,
        };
        match m.total_time_s(ff.time_s, params.lambda_per_s) {
            Some(total) => {
                let t_res = (total - ff.time_s) / ff.time_s;
                let p = m.avg_power_frac(params.lambda_per_s);
                let e_res = m
                    .e_res_j(ff.time_s, params.lambda_per_s, ff.avg_power_w)
                    .unwrap_or(0.0)
                    / ff.energy_j;
                (t_res, p, e_res)
            }
            None => (f64::INFINITY, 1.0, f64::INFINITY),
        }
    } else {
        // Forward recovery.
        let n = scheme_run.num_ranks as f64;
        let p_idle = if label.contains("DVFS") { 0.45 } else { 0.74 };
        let m = FwModel {
            t_const_s: params.t_const_s + params.t_restore_per_fault_s,
            t_extra_per_fault_s: params.t_extra_per_fault_s,
            active_frac: 1.0 / n,
            p_idle_frac: p_idle,
        };
        match m.total_time_s(ff.time_s, params.lambda_per_s) {
            Some(total) => {
                let t_res = (total - ff.time_s) / ff.time_s;
                let p = m
                    .avg_power_frac(ff.time_s, params.lambda_per_s)
                    .unwrap_or(1.0);
                let e_res = m
                    .e_res_j(ff.time_s, params.lambda_per_s, ff.avg_power_w)
                    .unwrap_or(0.0)
                    / ff.energy_j;
                (t_res, p, e_res)
            }
            None => (f64::INFINITY, 1.0, f64::INFINITY),
        }
    };

    ValidationRow {
        scheme: label,
        model_t_res,
        model_p,
        model_e_res,
        exp_t_res: norm.t_res,
        exp_p: norm.power,
        exp_e_res: norm.e_res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_core::report::PhaseBreakdown;
    use rsls_solvers::ResidualHistory;

    fn report(scheme: &str, iters: usize, time: f64, energy: f64, faults: usize) -> RunReport {
        RunReport {
            scheme: scheme.into(),
            num_ranks: 24,
            iterations: iters,
            converged: true,
            final_relative_residual: 0.0,
            time_s: time,
            energy_j: energy,
            avg_power_w: energy / time,
            faults_injected: faults,
            construction_fallbacks: 0,
            checkpoint_interval_iters: if scheme.starts_with("CR") {
                Some(100)
            } else {
                None
            },
            checkpoint_bytes_written: 0,
            breakdown: PhaseBreakdown {
                solve_s: time * 0.9,
                checkpoint_s: if scheme.starts_with("CR") {
                    time * 0.05
                } else {
                    0.0
                },
                restore_s: 0.0,
                reconstruct_s: if scheme.starts_with("L") {
                    time * 0.1
                } else {
                    0.0
                },
                repair_s: 0.0,
            },
            history: ResidualHistory::new(),
            power_profile: Vec::new(),
        }
    }

    #[test]
    fn rd_row_matches_eq_12_exactly() {
        let ff = report("FF", 1000, 100.0, 1000.0, 0);
        let rd = report("RD", 1000, 100.0, 2000.0, 3);
        let row = validate(&rd, &ff);
        assert_eq!(row.model_t_res, 0.0);
        assert_eq!(row.model_p, 2.0);
        assert_eq!(row.model_e_res, 1.0);
        assert_eq!(row.exp_t_res, 0.0);
        assert!((row.exp_p - 2.0).abs() < 1e-12);
        assert!((row.exp_e_res - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cr_row_has_positive_overheads() {
        let ff = report("FF", 1000, 100.0, 1000.0, 0);
        let cr = report("CR-M", 1400, 150.0, 1450.0, 5);
        let row = validate(&cr, &ff);
        assert!(row.model_t_res > 0.0);
        assert!(row.exp_t_res > 0.0);
        assert!(row.model_p <= 1.0);
    }

    #[test]
    fn fw_dvfs_rows_use_lower_idle_power() {
        let ff = report("FF", 1000, 100.0, 1000.0, 0);
        let li = report("LI (CG)", 1300, 150.0, 1500.0, 5);
        let li_dvfs = report("LI (CG)-DVFS", 1300, 150.0, 1400.0, 5);
        let plain = validate(&li, &ff);
        let dvfs = validate(&li_dvfs, &ff);
        assert!(dvfs.model_p <= plain.model_p);
        assert!(dvfs.model_e_res <= plain.model_e_res);
    }
}
