//! Model-parameter extraction from measured runs.
//!
//! The paper derives model parameters "from experimental data" (§3, §5.3):
//! `t_C` from measured checkpoint phases, `t_const` from measured
//! reconstruction phases, extra-iteration cost from the iteration delta
//! against the fault-free run. [`FittedParams`] performs exactly those
//! extractions from [`RunReport`]s.

use serde::{Deserialize, Serialize};

use rsls_core::RunReport;

/// Parameters fitted from one (scheme, workload) pair of measured runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedParams {
    /// Time of one fault-free CG iteration, seconds.
    pub t_iter_s: f64,
    /// Observed failure rate λ, per second.
    pub lambda_per_s: f64,
    /// Per-checkpoint cost `t_C`, seconds (checkpoint schemes; 0 otherwise).
    pub t_c_s: f64,
    /// Per-fault reconstruction cost `t_const`, seconds (FW; 0 otherwise).
    pub t_const_s: f64,
    /// Per-fault extra-iteration time `t_extra`, seconds.
    pub t_extra_per_fault_s: f64,
    /// Per-fault restore + repair cost, seconds.
    pub t_restore_per_fault_s: f64,
}

impl FittedParams {
    /// Fits parameters from a scheme run and its fault-free reference.
    ///
    /// # Panics
    /// Panics if the fault-free run has zero iterations.
    pub fn from_reports(scheme_run: &RunReport, ff: &RunReport) -> Self {
        assert!(ff.iterations > 0, "fault-free reference has no iterations");
        let t_iter_s = ff.time_s / ff.iterations as f64;
        let faults = scheme_run.faults_injected.max(1) as f64;
        let lambda_per_s = if scheme_run.faults_injected == 0 {
            0.0
        } else {
            scheme_run.faults_injected as f64 / scheme_run.time_s
        };
        let num_checkpoints = scheme_run
            .checkpoint_interval_iters
            .map(|i| (scheme_run.iterations / i.max(1)).max(1))
            .unwrap_or(1);
        let t_c_s = scheme_run.breakdown.checkpoint_s / num_checkpoints as f64;
        let t_const_s = scheme_run.breakdown.reconstruct_s / faults;
        let extra_iters = scheme_run.iterations.saturating_sub(ff.iterations) as f64;
        FittedParams {
            t_iter_s,
            lambda_per_s,
            t_c_s,
            t_const_s,
            t_extra_per_fault_s: extra_iters * t_iter_s / faults,
            t_restore_per_fault_s: (scheme_run.breakdown.restore_s + scheme_run.breakdown.repair_s)
                / faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_core::report::PhaseBreakdown;
    use rsls_solvers::ResidualHistory;

    fn report(iters: usize, time: f64, faults: usize, breakdown: PhaseBreakdown) -> RunReport {
        RunReport {
            scheme: "t".into(),
            num_ranks: 4,
            iterations: iters,
            converged: true,
            final_relative_residual: 0.0,
            time_s: time,
            energy_j: time * 10.0,
            avg_power_w: 10.0,
            faults_injected: faults,
            construction_fallbacks: 0,
            checkpoint_interval_iters: Some(100),
            checkpoint_bytes_written: 0,
            breakdown,
            history: ResidualHistory::new(),
            power_profile: Vec::new(),
        }
    }

    #[test]
    fn iteration_time_comes_from_ff() {
        let ff = report(1000, 100.0, 0, PhaseBreakdown::default());
        let run = report(1500, 170.0, 5, PhaseBreakdown::default());
        let p = FittedParams::from_reports(&run, &ff);
        assert!((p.t_iter_s - 0.1).abs() < 1e-12);
        assert!((p.lambda_per_s - 5.0 / 170.0).abs() < 1e-12);
        // 500 extra iterations over 5 faults at 0.1 s each.
        assert!((p.t_extra_per_fault_s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_cost_is_per_checkpoint() {
        let ff = report(1000, 100.0, 0, PhaseBreakdown::default());
        let bd = PhaseBreakdown {
            checkpoint_s: 30.0,
            ..Default::default()
        };
        let run = report(1500, 170.0, 5, bd);
        let p = FittedParams::from_reports(&run, &ff);
        // 1500 iterations / interval 100 = 15 checkpoints.
        assert!((p.t_c_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_cost_is_per_fault() {
        let ff = report(1000, 100.0, 0, PhaseBreakdown::default());
        let bd = PhaseBreakdown {
            reconstruct_s: 25.0,
            ..Default::default()
        };
        let run = report(1200, 140.0, 5, bd);
        let p = FittedParams::from_reports(&run, &ff);
        assert!((p.t_const_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fault_free_run_fits_zero_rate() {
        let ff = report(1000, 100.0, 0, PhaseBreakdown::default());
        let p = FittedParams::from_reports(&ff, &ff);
        assert_eq!(p.lambda_per_s, 0.0);
        assert_eq!(p.t_extra_per_fault_s, 0.0);
    }
}
