//! Property-based tests of fault scheduling and injection.

use proptest::prelude::*;
use rsls_faults::schedule::Trigger;
use rsls_faults::{inject, FaultClass, FaultEffect, FaultSchedule, MtbfEstimator, SystemScale};

proptest! {
    #[test]
    fn evenly_spaced_events_are_in_bounds_and_ordered(
        k in 0usize..50,
        ff in 1usize..10_000,
        ranks in 1usize..512,
        seed in 0u64..1000,
    ) {
        let s = FaultSchedule::evenly_spaced(k, ff, ranks, FaultClass::Snf, seed);
        prop_assert!(s.len() <= k);
        let mut prev = 0usize;
        for ev in s.events() {
            let Trigger::AtIteration(i) = ev.trigger else {
                return Err(TestCaseError::fail("wrong trigger kind"));
            };
            prop_assert!(i > 0 && i < ff);
            prop_assert!(i >= prev);
            prop_assert!(ev.rank < ranks);
            prev = i;
        }
    }

    #[test]
    fn periodic_time_matches_rate_exactly(
        mtbf in 0.01f64..100.0,
        horizon_mult in 1.0f64..20.0,
        ranks in 1usize..64,
    ) {
        let horizon = mtbf * horizon_mult;
        let s = FaultSchedule::periodic_time(mtbf, horizon, ranks, FaultClass::Snf, 3);
        // One event per MTBF window (first at 0.5·mtbf).
        let expected = ((horizon / mtbf) + 0.5).floor() as usize;
        prop_assert!(s.len().abs_diff(expected) <= 1, "{} vs {expected}", s.len());
    }

    #[test]
    fn due_never_skips_or_duplicates(
        k in 1usize..20,
        ff in 10usize..500,
        seed in 0u64..100,
    ) {
        let s = FaultSchedule::evenly_spaced(k, ff, 8, FaultClass::Snf, seed);
        let mut cursor = 0;
        let mut total = 0;
        for it in 0..ff + 10 {
            total += s.due(&mut cursor, it, 0.0).len();
        }
        prop_assert_eq!(total, s.len());
        prop_assert!(s.due(&mut cursor, ff + 100, 1e12).is_empty());
    }

    #[test]
    fn injection_is_deterministic_and_contained(
        len in 1usize..200,
        seed in 0u64..500,
    ) {
        let mut a = vec![1.5f64; len];
        let mut b = vec![1.5f64; len];
        inject(&mut a, FaultEffect::BitFlip, seed);
        inject(&mut b, FaultEffect::BitFlip, seed);
        prop_assert_eq!(&a, &b);
        let changed = a.iter().filter(|&&v| v != 1.5).count();
        prop_assert!(changed <= 1);
    }

    #[test]
    fn lost_injection_poisons_everything(len in 1usize..200) {
        let mut x = vec![2.0f64; len];
        let n = inject(&mut x, FaultEffect::Lost, 0);
        prop_assert_eq!(n, len);
        prop_assert!(x.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn mtbf_projection_scales_linearly(nodes in 1u64..10_000_000, degr in 1.0f64..10.0) {
        let est = MtbfEstimator::default();
        let scale = SystemScale { nodes, tech_degradation: degr };
        let double = SystemScale { nodes: nodes * 2, tech_degradation: degr };
        for class in FaultClass::ALL {
            let ratio = est.system_mtbf_h(class, scale) / est.system_mtbf_h(class, double);
            prop_assert!((ratio - 2.0).abs() < 1e-9);
        }
        // Combined MTBF is below every individual class MTBF.
        let combined = est.combined_system_mtbf_h(scale);
        for class in FaultClass::ALL {
            prop_assert!(combined <= est.system_mtbf_h(class, scale) + 1e-12);
        }
    }
}
