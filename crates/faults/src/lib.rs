#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Fault taxonomy, MTBF projection, and deterministic fault injection.
//!
//! Covers the paper's fault model (§2.1):
//!
//! * [`FaultClass`] — the six studied classes (soft: DCE, DUE, SDC; hard:
//!   SWO, SNF, LNF),
//! * [`mtbf`] — the Figure 1 estimation of petascale → exascale MTBF from
//!   per-node rates and technology scaling,
//! * [`FaultSchedule`] — deterministic injection plans: the evenly-spaced
//!   K-fault plan of §5.2 and the Poisson/exponential arrivals implied by
//!   an MTBF (§5.3, §6),
//! * [`FaultEvent`] / [`inject()`] — applying a fault to the solver's
//!   dynamic data (corrupting or losing the failed rank's slice of `x`,
//!   Figure 2b).

pub mod inject;
pub mod mtbf;
pub mod schedule;
pub mod taxonomy;

pub use inject::{inject, FaultEffect};
pub use mtbf::{MtbfEstimator, SystemScale};
pub use schedule::{FaultEvent, FaultSchedule};
pub use taxonomy::{FaultCategory, FaultClass};
