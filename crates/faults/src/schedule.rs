//! Deterministic fault schedules.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::FaultClass;

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// At the start of the given solver iteration (the §5.2 methodology:
    /// faults are inserted at iteration granularity).
    AtIteration(usize),
    /// At the given virtual time in seconds (the §5.3/§6 methodology:
    /// exponential arrivals from an MTBF).
    AtTime(f64),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: Trigger,
    /// The rank whose dynamic data is lost/corrupted (Figure 2b).
    pub rank: usize,
    /// Fault class (determines the injected effect).
    pub class: FaultClass,
}

/// An ordered plan of fault injections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// No faults — the fault-free (FF) baseline.
    pub fn fault_free() -> Self {
        FaultSchedule { events: Vec::new() }
    }

    /// The §5.2 plan: `k` faults spread evenly over the iterations of the
    /// fault-free execution (`ff_iterations`), each hitting a
    /// deterministic pseudo-random rank. No fault is scheduled at
    /// iteration 0, and none after `ff_iterations`.
    pub fn evenly_spaced(
        k: usize,
        ff_iterations: usize,
        num_ranks: usize,
        class: FaultClass,
        seed: u64,
    ) -> Self {
        assert!(num_ranks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(k);
        if k == 0 || ff_iterations == 0 {
            return FaultSchedule { events };
        }
        for i in 1..=k {
            let iter = (i * ff_iterations) / (k + 1);
            if iter == 0 || iter >= ff_iterations {
                continue;
            }
            events.push(FaultEvent {
                trigger: Trigger::AtIteration(iter),
                rank: rng.random_range(0..num_ranks),
                class,
            });
        }
        FaultSchedule { events }
    }

    /// A single fault at iteration `iteration` on `rank` (Figure 6a uses
    /// one fault at iteration 200).
    pub fn single_at_iteration(iteration: usize, rank: usize, class: FaultClass) -> Self {
        FaultSchedule {
            events: vec![FaultEvent {
                trigger: Trigger::AtIteration(iteration),
                rank,
                class,
            }],
        }
    }

    /// Simultaneous faults: every rank in `ranks` is hit at the same
    /// iteration (a correlated failure — e.g. one enclosure taking out
    /// several nodes at once). Ranks are kept in the given order so the
    /// schedule round-trips through [`events`](Self::events) unchanged.
    pub fn multiple_at_iteration(iteration: usize, ranks: &[usize], class: FaultClass) -> Self {
        FaultSchedule {
            events: ranks
                .iter()
                .map(|&rank| FaultEvent {
                    trigger: Trigger::AtIteration(iteration),
                    rank,
                    class,
                })
                .collect(),
        }
    }

    /// Deterministic arrivals at the MTBF rate: one fault every `mtbf_s`
    /// seconds (at `0.5·mtbf, 1.5·mtbf, …`) over `[0, horizon_s)`, each
    /// targeting a deterministic pseudo-random rank. This is the §5.2
    /// evenly-spaced methodology applied to time: the *rate* matches an
    /// MTBF exactly, without sampling variance distorting small runs.
    pub fn periodic_time(
        mtbf_s: f64,
        horizon_s: f64,
        num_ranks: usize,
        class: FaultClass,
        seed: u64,
    ) -> Self {
        assert!(mtbf_s > 0.0 && horizon_s >= 0.0 && num_ranks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.5 * mtbf_s;
        while t < horizon_s {
            events.push(FaultEvent {
                trigger: Trigger::AtTime(t),
                rank: rng.random_range(0..num_ranks),
                class,
            });
            t += mtbf_s;
        }
        FaultSchedule { events }
    }

    /// Poisson arrivals with the given MTBF (exponential inter-arrival
    /// times) over `[0, horizon_s)`, each targeting a random rank.
    pub fn poisson(
        mtbf_s: f64,
        horizon_s: f64,
        num_ranks: usize,
        class: FaultClass,
        seed: u64,
    ) -> Self {
        assert!(mtbf_s > 0.0 && horizon_s >= 0.0 && num_ranks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            // Inverse-CDF sampling of Exp(1/mtbf).
            let u: f64 = rng.random();
            t += -mtbf_s * (1.0 - u).ln();
            if t >= horizon_s {
                break;
            }
            events.push(FaultEvent {
                trigger: Trigger::AtTime(t),
                rank: rng.random_range(0..num_ranks),
                class,
            });
        }
        FaultSchedule { events }
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Faults firing at exactly `iteration` that have index `>= cursor`,
    /// advancing `cursor` past them. Time-triggered events fire when
    /// `now_s` has passed their timestamp.
    pub fn due(&self, cursor: &mut usize, iteration: usize, now_s: f64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while *cursor < self.events.len() {
            let ev = self.events[*cursor];
            let fires = match ev.trigger {
                Trigger::AtIteration(it) => it <= iteration,
                Trigger::AtTime(t) => t <= now_s,
            };
            if fires {
                fired.push(ev);
                *cursor += 1;
            } else {
                break;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_spaced_produces_k_interior_events() {
        let s = FaultSchedule::evenly_spaced(10, 1100, 8, FaultClass::Snf, 1);
        assert_eq!(s.len(), 10);
        for ev in s.events() {
            match ev.trigger {
                Trigger::AtIteration(i) => assert!(i > 0 && i < 1100),
                _ => panic!("expected iteration trigger"),
            }
            assert!(ev.rank < 8);
        }
        // Triggers are non-decreasing.
        let iters: Vec<usize> = s
            .events()
            .iter()
            .map(|e| match e.trigger {
                Trigger::AtIteration(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert!(iters.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn evenly_spaced_is_deterministic_per_seed() {
        let a = FaultSchedule::evenly_spaced(5, 500, 16, FaultClass::Sdc, 7);
        let b = FaultSchedule::evenly_spaced(5, 500, 16, FaultClass::Sdc, 7);
        assert_eq!(a, b);
        let c = FaultSchedule::evenly_spaced(5, 500, 16, FaultClass::Sdc, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_faults_yields_empty_schedule() {
        assert!(FaultSchedule::evenly_spaced(0, 100, 4, FaultClass::Snf, 0).is_empty());
        assert!(FaultSchedule::fault_free().is_empty());
    }

    #[test]
    fn poisson_interarrivals_average_near_mtbf() {
        let mtbf = 10.0;
        let s = FaultSchedule::poisson(mtbf, 100_000.0, 4, FaultClass::Snf, 42);
        assert!(s.len() > 5000);
        let times: Vec<f64> = s
            .events()
            .iter()
            .map(|e| match e.trigger {
                Trigger::AtTime(t) => t,
                _ => unreachable!(),
            })
            .collect();
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - mtbf).abs() < 0.5, "mean gap {mean_gap}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn due_fires_events_in_order() {
        let s = FaultSchedule::evenly_spaced(3, 100, 4, FaultClass::Snf, 3);
        let mut cursor = 0;
        let mut fired = 0;
        for it in 0..=100 {
            fired += s.due(&mut cursor, it, 0.0).len();
        }
        assert_eq!(fired, 3);
        assert!(s.due(&mut cursor, 1000, 0.0).is_empty());
    }

    #[test]
    fn multiple_at_iteration_fires_all_ranks_at_once() {
        let s = FaultSchedule::multiple_at_iteration(200, &[1, 3, 4], FaultClass::Snf);
        assert_eq!(s.len(), 3);
        let mut cursor = 0;
        assert!(s.due(&mut cursor, 199, 0.0).is_empty());
        let fired = s.due(&mut cursor, 200, 0.0);
        assert_eq!(
            fired.iter().map(|e| e.rank).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert!(s.due(&mut cursor, 1000, 0.0).is_empty(), "fire once");
    }

    #[test]
    fn multiple_at_iteration_injects_into_every_scheduled_rank() {
        use crate::inject::{inject, FaultEffect};
        // 4 ranks × 8 entries; a correlated fault hits ranks 0 and 2.
        let mut x = vec![1.0f64; 32];
        let s = FaultSchedule::multiple_at_iteration(10, &[0, 2], FaultClass::Snf);
        let mut cursor = 0;
        for ev in s.due(&mut cursor, 10, 0.0) {
            let slice = &mut x[ev.rank * 8..(ev.rank + 1) * 8];
            inject(slice, FaultEffect::for_class(ev.class), 0);
        }
        assert!(x[0..8].iter().all(|v| v.is_nan()), "rank 0 lost");
        assert!(x[8..16].iter().all(|v| *v == 1.0), "rank 1 untouched");
        assert!(x[16..24].iter().all(|v| v.is_nan()), "rank 2 lost");
        assert!(x[24..32].iter().all(|v| *v == 1.0), "rank 3 untouched");
    }

    #[test]
    fn due_honors_time_triggers() {
        let s = FaultSchedule::poisson(5.0, 50.0, 2, FaultClass::Snf, 9);
        let mut cursor = 0;
        let early = s.due(&mut cursor, 0, 0.0).len();
        assert_eq!(early, 0);
        let all = s.due(&mut cursor, 0, 1e9).len();
        assert_eq!(all, s.len());
    }
}
