//! Applying faults to the solver's dynamic data.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{FaultCategory, FaultClass};

/// How a fault manifests in the failed rank's slice of the solution
/// vector `x` (Figure 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// Memory content is gone (hard fault / DUE): the slice is poisoned so
    /// that any read before recovery is visible as NaN.
    Lost,
    /// Silent corruption: a random bit of one entry is flipped.
    BitFlip,
}

impl FaultEffect {
    /// The effect implied by a fault class.
    pub fn for_class(class: FaultClass) -> FaultEffect {
        match (class, class.category()) {
            (FaultClass::Sdc, _) => FaultEffect::BitFlip,
            (_, FaultCategory::Hard) => FaultEffect::Lost,
            // DUE: detected but uncorrected — data unusable, treated as lost.
            _ => FaultEffect::Lost,
        }
    }
}

/// Injects a fault into `slice` (the failed rank's part of `x`).
///
/// Deterministic for a given `seed`. Returns the number of entries
/// affected.
pub fn inject(slice: &mut [f64], effect: FaultEffect, seed: u64) -> usize {
    if slice.is_empty() {
        return 0;
    }
    match effect {
        FaultEffect::Lost => {
            slice.fill(f64::NAN);
            slice.len()
        }
        FaultEffect::BitFlip => {
            let mut rng = StdRng::seed_from_u64(seed);
            let idx = rng.random_range(0..slice.len());
            // Flip one of the high mantissa / low exponent bits so the
            // corruption is material but usually leaves a finite value.
            let bit = rng.random_range(40..62);
            let bits = slice[idx].to_bits() ^ (1u64 << bit);
            slice[idx] = f64::from_bits(bits);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_poisons_whole_slice() {
        let mut x = vec![1.0, 2.0, 3.0];
        let n = inject(&mut x, FaultEffect::Lost, 0);
        assert_eq!(n, 3);
        assert!(x.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn bitflip_changes_exactly_one_entry() {
        let mut x = vec![1.0; 16];
        let n = inject(&mut x, FaultEffect::BitFlip, 5);
        assert_eq!(n, 1);
        let changed = x.iter().filter(|&&v| v != 1.0).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn bitflip_is_deterministic_per_seed() {
        let mut a = vec![1.0; 16];
        let mut b = vec![1.0; 16];
        inject(&mut a, FaultEffect::BitFlip, 5);
        inject(&mut b, FaultEffect::BitFlip, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut x: Vec<f64> = vec![];
        assert_eq!(inject(&mut x, FaultEffect::Lost, 0), 0);
    }

    #[test]
    fn class_mapping_matches_taxonomy() {
        assert_eq!(
            FaultEffect::for_class(FaultClass::Sdc),
            FaultEffect::BitFlip
        );
        assert_eq!(FaultEffect::for_class(FaultClass::Snf), FaultEffect::Lost);
        assert_eq!(FaultEffect::for_class(FaultClass::Due), FaultEffect::Lost);
    }
}
