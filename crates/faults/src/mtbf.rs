//! MTBF estimation and system-size projection (Figure 1).
//!
//! The paper projects exascale MTBF from petascale observations assuming
//! the failure rate scales with the number of nodes and with a node-level
//! technology degradation factor (11 nm, near-threshold operation). The
//! per-node baselines below are engineering estimates in the spirit of the
//! Blue Waters analysis the paper cites (Di Martino et al., DSN'14); the
//! *projection machinery* is what Figure 1 demonstrates.

use serde::{Deserialize, Serialize};

use crate::FaultClass;

/// System size and node technology for an MTBF projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemScale {
    /// Number of compute nodes.
    pub nodes: u64,
    /// Multiplier on every per-node failure *rate* due to feature-size and
    /// voltage scaling (1.0 = today's technology; the paper assumes 11 nm
    /// nodes fail more often).
    pub tech_degradation: f64,
}

impl SystemScale {
    /// The paper's petascale reference: 20K nodes, today's technology.
    pub fn petascale() -> Self {
        SystemScale {
            nodes: 20_000,
            tech_degradation: 1.0,
        }
    }

    /// The paper's exascale projection: 1M nodes at 11 nm (taken here as
    /// a 2× per-node rate degradation).
    pub fn exascale() -> Self {
        SystemScale {
            nodes: 1_000_000,
            tech_degradation: 2.0,
        }
    }
}

/// Projects MTBF per fault class across system scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MtbfEstimator {
    /// Per-node MTBF in hours for each class at today's technology,
    /// indexed in `FaultClass::ALL` order.
    per_node_mtbf_h: [f64; 6],
}

impl Default for MtbfEstimator {
    fn default() -> Self {
        // Engineering estimates per node at today's technology (hours):
        //  - DCE: corrected ECC events are by far the most frequent,
        //  - DUE/SDC: orders of magnitude rarer,
        //  - SNF: one node failure every ~18 years per node reproduces the
        //    observed hours-scale system MTBF of petascale machines,
        //  - LNF/SWO: rarer still.
        MtbfEstimator {
            per_node_mtbf_h: [
                10_000.0,    // DCE
                150_000.0,   // DUE
                500_000.0,   // SDC
                2_000_000.0, // SWO
                160_000.0,   // SNF
                300_000.0,   // LNF
            ],
        }
    }
}

impl MtbfEstimator {
    /// Builds from explicit per-node MTBFs (hours, today's technology),
    /// indexed in [`FaultClass::ALL`] order.
    ///
    /// # Panics
    /// Panics if any MTBF is not positive.
    pub fn new(per_node_mtbf_h: [f64; 6]) -> Self {
        assert!(per_node_mtbf_h.iter().all(|&v| v > 0.0));
        MtbfEstimator { per_node_mtbf_h }
    }

    fn idx(class: FaultClass) -> usize {
        match class {
            FaultClass::Dce => 0,
            FaultClass::Due => 1,
            FaultClass::Sdc => 2,
            FaultClass::Swo => 3,
            FaultClass::Snf => 4,
            FaultClass::Lnf => 5,
        }
    }

    /// MTBF of a *single node* for `class` at the given scale's
    /// technology, hours.
    pub fn node_mtbf_h(&self, class: FaultClass, scale: SystemScale) -> f64 {
        self.per_node_mtbf_h[Self::idx(class)] / scale.tech_degradation
    }

    /// MTBF of the *whole system* for `class`, hours: per-node rate times
    /// node count.
    pub fn system_mtbf_h(&self, class: FaultClass, scale: SystemScale) -> f64 {
        self.node_mtbf_h(class, scale) / scale.nodes as f64
    }

    /// System failure rate for `class`, events per hour.
    pub fn system_rate_per_h(&self, class: FaultClass, scale: SystemScale) -> f64 {
        1.0 / self.system_mtbf_h(class, scale)
    }

    /// Combined system MTBF over all classes (rates add), hours.
    pub fn combined_system_mtbf_h(&self, scale: SystemScale) -> f64 {
        let rate: f64 = FaultClass::ALL
            .iter()
            .map(|&c| self.system_rate_per_h(c, scale))
            .sum();
        1.0 / rate
    }

    /// Combined system MTBF over the classes that need recovery
    /// (everything but DCE), hours.
    pub fn recovery_relevant_mtbf_h(&self, scale: SystemScale) -> f64 {
        let rate: f64 = FaultClass::ALL
            .iter()
            .filter(|c| c.needs_recovery())
            .map(|&c| self.system_rate_per_h(c, scale))
            .sum();
        1.0 / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_mtbf_scales_inversely_with_nodes() {
        let e = MtbfEstimator::default();
        let small = SystemScale {
            nodes: 1_000,
            tech_degradation: 1.0,
        };
        let large = SystemScale {
            nodes: 10_000,
            tech_degradation: 1.0,
        };
        for c in FaultClass::ALL {
            let ratio = e.system_mtbf_h(c, small) / e.system_mtbf_h(c, large);
            assert!((ratio - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tech_degradation_reduces_node_mtbf() {
        let e = MtbfEstimator::default();
        let pet = SystemScale::petascale();
        let exa = SystemScale::exascale();
        for c in FaultClass::ALL {
            assert!(e.node_mtbf_h(c, exa) < e.node_mtbf_h(c, pet));
        }
    }

    #[test]
    fn exascale_mtbf_is_within_an_hour() {
        // The paper's headline claim for Figure 1.
        let e = MtbfEstimator::default();
        let exa = SystemScale::exascale();
        assert!(e.combined_system_mtbf_h(exa) < 1.0);
        // ... while recovery-relevant petascale MTBF is hours-to-days.
        let pet = e.recovery_relevant_mtbf_h(SystemScale::petascale());
        assert!(pet > 1.0 && pet < 24.0 * 7.0, "petascale MTBF {pet} h");
    }

    #[test]
    fn combined_rate_is_sum_of_rates() {
        let e = MtbfEstimator::default();
        let s = SystemScale::petascale();
        let sum: f64 = FaultClass::ALL
            .iter()
            .map(|&c| e.system_rate_per_h(c, s))
            .sum();
        assert!((1.0 / e.combined_system_mtbf_h(s) - sum).abs() < 1e-12);
    }

    #[test]
    fn dce_is_most_frequent_class() {
        let e = MtbfEstimator::default();
        let s = SystemScale::petascale();
        let dce = e.system_mtbf_h(FaultClass::Dce, s);
        for c in FaultClass::ALL.iter().skip(1) {
            assert!(e.system_mtbf_h(*c, s) > dce);
        }
    }
}
