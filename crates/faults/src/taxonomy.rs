//! Fault classification (paper §2.1).

use serde::{Deserialize, Serialize};

/// Soft vs hard faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCategory {
    /// Erroneous deviation without interruption (bit flips, silent errors).
    Soft,
    /// Crash of a process, node, or the system.
    Hard,
}

/// The six fault classes the paper studies (§2.1, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Detected and Corrected Error (soft).
    Dce,
    /// Detected but Uncorrected Error (soft).
    Due,
    /// Silent Data Corruption (soft).
    Sdc,
    /// System-Wide Outage (hard).
    Swo,
    /// Single Node Failure (hard).
    Snf,
    /// Link and Node Failure (hard).
    Lnf,
}

impl FaultClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Dce,
        FaultClass::Due,
        FaultClass::Sdc,
        FaultClass::Swo,
        FaultClass::Snf,
        FaultClass::Lnf,
    ];

    /// Whether the class is soft or hard.
    pub fn category(self) -> FaultCategory {
        match self {
            FaultClass::Dce | FaultClass::Due | FaultClass::Sdc => FaultCategory::Soft,
            FaultClass::Swo | FaultClass::Snf | FaultClass::Lnf => FaultCategory::Hard,
        }
    }

    /// Display abbreviation used in the paper.
    pub fn abbrev(self) -> &'static str {
        match self {
            FaultClass::Dce => "DCE",
            FaultClass::Due => "DUE",
            FaultClass::Sdc => "SDC",
            FaultClass::Swo => "SWO",
            FaultClass::Snf => "SNF",
            FaultClass::Lnf => "LNF",
        }
    }

    /// Whether recovery requires replacing lost *data* (hard faults and
    /// DUE/SDC) as opposed to being transparently corrected (DCE).
    pub fn needs_recovery(self) -> bool {
        !matches!(self, FaultClass::Dce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_split_three_three() {
        let soft = FaultClass::ALL
            .iter()
            .filter(|c| c.category() == FaultCategory::Soft)
            .count();
        assert_eq!(soft, 3);
    }

    #[test]
    fn only_dce_needs_no_recovery() {
        let no_recovery: Vec<_> = FaultClass::ALL
            .iter()
            .filter(|c| !c.needs_recovery())
            .collect();
        assert_eq!(no_recovery, vec![&FaultClass::Dce]);
    }

    #[test]
    fn abbreviations_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in FaultClass::ALL {
            assert!(seen.insert(c.abbrev()));
        }
    }
}
