//! Residual histories and solve outcomes.

use serde::{Deserialize, Serialize};

/// A marker attached to a residual-history sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryMark {
    /// Plain iteration.
    Iteration,
    /// A fault was injected before this iteration.
    Fault,
    /// A recovery action completed before this iteration.
    Recovery,
}

/// Relative-residual history of a solve, with fault/recovery markers —
/// the data behind the paper's Figure 6 plots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResidualHistory {
    samples: Vec<(usize, f64, HistoryMark)>,
}

impl ResidualHistory {
    /// An empty history.
    pub fn new() -> Self {
        ResidualHistory::default()
    }

    /// Records the residual after `iteration`.
    pub fn push(&mut self, iteration: usize, relres: f64) {
        self.samples
            .push((iteration, relres, HistoryMark::Iteration));
    }

    /// Records a fault marker.
    pub fn mark_fault(&mut self, iteration: usize, relres: f64) {
        self.samples.push((iteration, relres, HistoryMark::Fault));
    }

    /// Records a recovery marker.
    pub fn mark_recovery(&mut self, iteration: usize, relres: f64) {
        self.samples
            .push((iteration, relres, HistoryMark::Recovery));
    }

    /// All samples `(iteration, relative residual, mark)`.
    pub fn samples(&self) -> &[(usize, f64, HistoryMark)] {
        &self.samples
    }

    /// Iterations at which faults were injected.
    pub fn fault_iterations(&self) -> Vec<usize> {
        self.samples
            .iter()
            .filter(|(_, _, m)| *m == HistoryMark::Fault)
            .map(|(i, _, _)| *i)
            .collect()
    }

    /// The largest residual *increase* across a fault marker — how much a
    /// fault set convergence back.
    pub fn worst_fault_jump(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for w in self.samples.windows(2) {
            if w[1].2 == HistoryMark::Fault || w[1].2 == HistoryMark::Recovery {
                worst = worst.max(w[1].1 / w[0].1.max(f64::MIN_POSITIVE));
            }
        }
        worst
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Summary of a completed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Final relative residual.
    pub final_relative_residual: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_records_in_order() {
        let mut h = ResidualHistory::new();
        h.push(0, 1.0);
        h.push(1, 0.5);
        h.mark_fault(2, 3.0);
        h.push(2, 3.0);
        assert_eq!(h.len(), 4);
        assert_eq!(h.fault_iterations(), vec![2]);
    }

    #[test]
    fn worst_fault_jump_detects_residual_spike() {
        let mut h = ResidualHistory::new();
        h.push(0, 1e-6);
        h.mark_fault(1, 1e-2);
        assert!((h.worst_fault_jump() - 1e4).abs() / 1e4 < 1e-9);
    }

    #[test]
    fn empty_history_has_zero_jump() {
        let h = ResidualHistory::new();
        assert_eq!(h.worst_fault_jump(), 0.0);
        assert!(h.is_empty());
    }
}
