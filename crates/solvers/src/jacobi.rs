//! Jacobi-preconditioned CG.
//!
//! The paper evaluates plain CG; Jacobi-PCG is included as the natural
//! extension (its related work discusses PCG variants) and is exercised by
//! the ablation benches to show recovery behaviour is not specific to the
//! unpreconditioned method.
//!
//! The workspace runs on the same fast path as [`crate::Cg`]: the
//! operator is bound to the format the deterministic selection heuristic
//! picks (CSR or SELL-C-σ), the residual update uses the fused
//! [`axpy_dot`] kernel (which also keeps `rᵀr` current so
//! [`JacobiPcg::relative_residual`] costs nothing), and the
//! preconditioner application uses the fused [`jacobi_dot`] kernel. All
//! of those are bit-identical to their unfused/CSR counterparts, so the
//! rewrite cannot change a single iterate.

use rsls_sparse::vector::{axpy, axpy_dot, dot, jacobi_dot, xpby};
use rsls_sparse::{CsrMatrix, SpmvOperator};

use crate::cg::CgConfig;

/// Jacobi (diagonal) preconditioned CG on `A x = b`.
#[derive(Debug, Clone)]
pub struct JacobiPcg<'a> {
    op: SpmvOperator<'a>,
    inv_diag: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    rz: f64,
    rr: f64,
    b_norm: f64,
    iteration: usize,
}

impl<'a> JacobiPcg<'a> {
    /// Initializes from the zero guess.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero (Jacobi is undefined then).
    pub fn new(a: &'a CsrMatrix, b: &'a [f64]) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        assert_eq!(b.len(), a.nrows());
        let inv_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .map(|&d| {
                assert!(d != 0.0, "Jacobi preconditioner requires nonzero diagonal");
                1.0 / d
            })
            .collect();
        let n = a.nrows();
        let r = b.to_vec();
        let mut z = vec![0.0; n];
        let rz = jacobi_dot(&inv_diag, &r, &mut z);
        let rr = dot(&r, &r);
        JacobiPcg {
            op: SpmvOperator::select(a),
            inv_diag,
            p: z.clone(),
            z,
            r,
            x: vec![0.0; n],
            ap: vec![0.0; n],
            rz,
            rr,
            b_norm: rsls_sparse::vector::norm2(b).max(f64::MIN_POSITIVE),
            iteration: 0,
        }
    }

    /// One PCG iteration; returns the relative residual.
    ///
    /// Allocation-free: every vector it touches is preallocated by
    /// [`JacobiPcg::new`] (the bench's `jacobi_warm_allocs` gate holds
    /// this at zero).
    pub fn step(&mut self) -> f64 {
        self.op.apply(&self.p, &mut self.ap);
        let pap = dot(&self.p, &self.ap);
        if pap <= 0.0 || !pap.is_finite() {
            self.iteration += 1;
            return self.relative_residual();
        }
        let alpha = self.rz / pap;
        axpy(alpha, &self.p, &mut self.x);
        // Fused residual update + squared norm: bit-identical to axpy
        // followed by dot(r, r), and keeps relative_residual() free.
        self.rr = axpy_dot(-alpha, &self.ap, &mut self.r);
        // Fused preconditioner application + rᵀz, bit-identical to the
        // elementwise z-update followed by dot(r, z).
        let rz_new = jacobi_dot(&self.inv_diag, &self.r, &mut self.z);
        let beta = rz_new / self.rz;
        xpby(&self.z, beta, &mut self.p);
        self.rz = rz_new;
        self.iteration += 1;
        self.relative_residual()
    }

    /// `||r||₂ / ||b||₂` from the tracked `rᵀr` scalar (no vector pass).
    pub fn relative_residual(&self) -> f64 {
        self.rr.sqrt() / self.b_norm
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The storage format the operator was bound to.
    pub fn format(&self) -> rsls_sparse::Format {
        self.op.format()
    }

    /// The current iterate.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Runs to convergence; returns `(iterations, converged)`.
    pub fn solve(&mut self, cfg: &CgConfig) -> (usize, bool) {
        while self.iteration < cfg.max_iterations {
            if self.relative_residual() <= cfg.tolerance {
                return (self.iteration, true);
            }
            self.step();
        }
        (self.iteration, self.relative_residual() <= cfg.tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_sparse::generators::{banded_spd, BandedConfig};

    #[test]
    fn pcg_solves_spd_system() {
        let a = banded_spd(&BandedConfig::regular(120, 5, 0.1, 6));
        let b = vec![1.0; 120];
        let mut pcg = JacobiPcg::new(&a, &b);
        let (_, ok) = pcg.solve(&CgConfig::default());
        assert!(ok);
    }

    #[test]
    fn tracked_residual_matches_recomputed_dot() {
        let a = banded_spd(&BandedConfig::regular(90, 5, 0.3, 4));
        let b: Vec<f64> = (0..90).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut pcg = JacobiPcg::new(&a, &b);
        for _ in 0..25 {
            pcg.step();
            let tracked = pcg.relative_residual();
            let recomputed = dot(&pcg.r, &pcg.r).sqrt() / pcg.b_norm;
            assert_eq!(tracked.to_bits(), recomputed.to_bits());
        }
    }

    #[test]
    fn pcg_is_no_slower_than_cg_on_badly_scaled_diagonal() {
        // Scale rows/cols wildly: Jacobi should shine.
        use rsls_sparse::CooMatrix;
        let n = 150;
        let base = banded_spd(&BandedConfig::regular(n, 5, 0.2, 8));
        let scale: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 5) as i32 - 2)).collect();
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in base.iter() {
            coo.push(r, c, v * scale[r] * scale[c]).unwrap();
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let cfg = CgConfig {
            tolerance: 1e-10,
            max_iterations: 20_000,
        };
        let pcg_iters = {
            let mut s = JacobiPcg::new(&a, &b);
            s.solve(&cfg).0
        };
        let cg_iters = {
            let mut s = crate::Cg::from_zero(&a, &b);
            s.solve(&cfg).0
        };
        assert!(
            pcg_iters <= cg_iters,
            "Jacobi PCG ({pcg_iters}) should beat CG ({cg_iters}) here"
        );
    }
}
