#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Instrumented iterative solvers.
//!
//! * [`Cg`] — a resumable, step-at-a-time Conjugate Gradient state
//!   machine. The resilient driver in `rsls-core` advances it one
//!   iteration at a time, injects faults between iterations, repairs the
//!   state after recovery ([`Cg::restart`], the Langou et al. recovery
//!   pattern), and charges virtual time per step.
//! * [`Cgls`] — CGLS/CGNR for least-squares systems, used by the paper's
//!   optimized LSI reconstruction (§4.1, Eq. 21: solve
//!   `(A_{p_i,:} A_{p_i,:}ᵀ) x = A_{p_i,:} β` locally with CG).
//! * [`jacobi`] — Jacobi-preconditioned CG (an extension beyond the
//!   paper's plain-CG evaluation; used by ablation benches).
//! * [`ic0`] — IC(0) incomplete-Cholesky preconditioned CG with
//!   deterministic sequential triangular solves; the iteration-count
//!   lever on the paper's stencil/banded model problems.
//! * [`dist`] — a distributed-memory (SPMD) CG with explicit halo
//!   exchange plans, the physical counterpart of the driver's logical
//!   distribution model.
//! * [`convergence`] — residual histories and outcome summaries.

pub mod cg;
pub mod cgls;
pub mod convergence;
pub mod dist;
pub mod ic0;
pub mod jacobi;

pub use cg::{Cg, CgConfig, KrylovState};
pub use cgls::{Cgls, CglsConfig};
pub use convergence::{ResidualHistory, SolveOutcome};
pub use dist::{halo_plan_cache_stats, DistCg, HaloPlan};
pub use ic0::{Ic0, Ic0Pcg};
pub use jacobi::JacobiPcg;
