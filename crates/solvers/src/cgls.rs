//! CGLS — conjugate gradient on the normal equations.

use rsls_sparse::vector::{axpy, dot, xpby};
use rsls_sparse::CsrMatrix;

/// CGLS termination parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CglsConfig {
    /// Relative tolerance on `||Aᵀr||` (the least-squares optimality
    /// residual).
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for CglsConfig {
    fn default() -> Self {
        CglsConfig {
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// CGLS on `min_x ||A x − b||₂`.
///
/// Mathematically equivalent to CG on the normal equations
/// `AᵀA x = Aᵀ b` but numerically better behaved. This is the engine of
/// the paper's optimized LSI reconstruction (§4.1): with the SPD system
/// matrix, `A_{:,p_i} = A_{p_i,:}ᵀ`, so the failed process can run CGLS on
/// its local *row panel* without any further communication (Eq. 21).
#[derive(Debug, Clone)]
pub struct Cgls<'a> {
    a: &'a CsrMatrix,
    x: Vec<f64>,
    r: Vec<f64>, // residual b − A x (length nrows)
    s: Vec<f64>, // Aᵀ r (length ncols)
    p: Vec<f64>, // search direction (length ncols)
    q: Vec<f64>, // A p (length nrows)
    gamma: f64,  // ||s||²
    s0_norm: f64,
    iteration: usize,
}

impl<'a> Cgls<'a> {
    /// Initializes CGLS from the zero guess.
    pub fn new(a: &'a CsrMatrix, b: &[f64]) -> Self {
        let n = a.ncols();
        Cgls::with_initial_guess(a, b, vec![0.0; n])
    }

    /// Initializes CGLS from an explicit guess `x0` — used by the LSI
    /// reconstruction to *polish* a cheap LI-style estimate toward the
    /// least-squares minimizer (the residual is monotone non-increasing,
    /// so the result is never worse than the guess).
    pub fn with_initial_guess(a: &'a CsrMatrix, b: &[f64], x0: Vec<f64>) -> Self {
        assert_eq!(b.len(), a.nrows(), "CGLS rhs length mismatch");
        assert_eq!(x0.len(), a.ncols(), "CGLS guess length mismatch");
        let (m, n) = (a.nrows(), a.ncols());
        let mut r = vec![0.0; m];
        a.spmv_auto(&x0, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut s = vec![0.0; n];
        a.spmv_transpose(&r, &mut s);
        let gamma = dot(&s, &s);
        // The convergence reference is ‖Aᵀb‖ — the raw problem's scale —
        // so a good initial guess means *starting closer to done*, not
        // moving the goalposts to "τ× better than the guess".
        let mut s_ref = vec![0.0; n];
        a.spmv_transpose(b, &mut s_ref);
        let s0_norm = dot(&s_ref, &s_ref).sqrt().max(f64::MIN_POSITIVE);
        Cgls {
            a,
            x: x0,
            p: s.clone(),
            q: vec![0.0; m],
            s,
            r,
            gamma,
            s0_norm,
            iteration: 0,
        }
    }

    /// One CGLS iteration; returns the relative optimality residual
    /// `||Aᵀr|| / ||Aᵀr₀||`.
    pub fn step(&mut self) -> f64 {
        self.a.spmv_auto(&self.p, &mut self.q);
        let qq = dot(&self.q, &self.q);
        if qq == 0.0 || !qq.is_finite() {
            self.iteration += 1;
            return self.relative_residual();
        }
        let alpha = self.gamma / qq;
        axpy(alpha, &self.p, &mut self.x);
        axpy(-alpha, &self.q, &mut self.r);
        self.a.spmv_transpose(&self.r, &mut self.s);
        let gamma_new = dot(&self.s, &self.s);
        let beta = gamma_new / self.gamma;
        xpby(&self.s, beta, &mut self.p);
        self.gamma = gamma_new;
        self.iteration += 1;
        self.relative_residual()
    }

    /// `||Aᵀr|| / ||Aᵀr₀||`.
    pub fn relative_residual(&self) -> f64 {
        self.gamma.sqrt() / self.s0_norm
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The current least-squares iterate.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Runs to the configured tolerance; returns `(iterations, converged)`.
    ///
    /// CGLS inherits the *squared* condition number of `A` through the
    /// normal equations, so on ill-conditioned panels it can stall above
    /// the requested tolerance. A stall detector stops the solve once the
    /// optimality residual has made no meaningful progress for 200
    /// iterations — the (monotone-residual) iterate reached by then is the
    /// best this method can deliver.
    pub fn solve(&mut self, cfg: &CglsConfig) -> (usize, bool) {
        let mut best = f64::INFINITY;
        let mut since_improvement = 0usize;
        while self.iteration < cfg.max_iterations {
            let res = self.relative_residual();
            if res <= cfg.tolerance {
                return (self.iteration, true);
            }
            if res < best * (1.0 - 1e-6) {
                best = res;
                since_improvement = 0;
            } else {
                since_improvement += 1;
                // CGLS residuals plateau for long stretches on
                // ill-conditioned problems before dropping again; the
                // window must be generous.
                if since_improvement >= 200 {
                    return (self.iteration, false);
                }
            }
            self.step();
        }
        (self.iteration, self.relative_residual() <= cfg.tolerance)
    }

    /// Flops of one CGLS step: one SpMV, one transposed SpMV, and ~8n+4m
    /// of vector work.
    pub fn step_flops(a: &CsrMatrix) -> u64 {
        2 * a.spmv_flops() + 8 * a.ncols() as u64 + 4 * a.nrows() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_sparse::dense::lstsq;
    use rsls_sparse::generators::tridiagonal;
    use rsls_sparse::vector::dist2;
    use rsls_sparse::CooMatrix;

    #[test]
    fn square_spd_system_is_solved() {
        let a = tridiagonal(50, 3.0);
        let xstar: Vec<f64> = (0..50).map(|i| ((i * 13) % 5) as f64).collect();
        let mut b = vec![0.0; 50];
        a.spmv(&xstar, &mut b);
        let mut solver = Cgls::new(&a, &b);
        let (_, ok) = solver.solve(&CglsConfig::default());
        assert!(ok);
        assert!(dist2(solver.x(), &xstar) < 1e-6);
    }

    #[test]
    fn overdetermined_system_matches_dense_qr() {
        // Tall 6x3 system.
        let mut coo = CooMatrix::new(6, 3);
        let vals = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (2, 2, 1.5),
            (3, 0, 1.0),
            (3, 2, -1.0),
            (4, 1, 0.5),
            (5, 0, -2.0),
            (5, 2, 1.0),
        ];
        for (r, c, v) in vals {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut solver = Cgls::new(&a, &b);
        let (_, ok) = solver.solve(&CglsConfig {
            tolerance: 1e-12,
            max_iterations: 100,
        });
        assert!(ok);
        let xref = lstsq(&a.to_dense(), &b).unwrap();
        assert!(dist2(solver.x(), &xref) < 1e-8);
    }

    #[test]
    fn relative_residual_decreases() {
        let a = tridiagonal(40, 2.5);
        let b = vec![1.0; 40];
        let mut solver = Cgls::new(&a, &b);
        let r0 = solver.relative_residual();
        for _ in 0..10 {
            solver.step();
        }
        assert!(solver.relative_residual() < r0);
    }

    #[test]
    fn partial_solve_gives_partial_accuracy() {
        // The paper's §4.1 insight: a loose CGLS tolerance yields a cheaper,
        // less accurate reconstruction that is still a useful approximation.
        let a = tridiagonal(60, 2.2);
        let xstar = vec![1.0; 60];
        let mut b = vec![0.0; 60];
        a.spmv(&xstar, &mut b);
        let loose = {
            let mut s = Cgls::new(&a, &b);
            s.solve(&CglsConfig {
                tolerance: 1e-2,
                max_iterations: 1000,
            });
            dist2(s.x(), &xstar)
        };
        let tight = {
            let mut s = Cgls::new(&a, &b);
            s.solve(&CglsConfig {
                tolerance: 1e-10,
                max_iterations: 1000,
            });
            dist2(s.x(), &xstar)
        };
        assert!(tight < loose);
        assert!(loose.is_finite());
    }
}
