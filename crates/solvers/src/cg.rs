//! Step-wise Conjugate Gradient.

use rsls_sparse::vector::{axpy, axpy_dot, dot, norm2, xpby};
use rsls_sparse::{CsrMatrix, SpmvOperator};

/// CG termination parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Relative-residual tolerance `||r|| / ||b||` (the paper uses 1e-12).
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            tolerance: 1e-12,
            max_iterations: 500_000,
        }
    }
}

/// A full Krylov-state snapshot: everything [`Cg::step`] reads besides
/// the fixed operator and rhs.
///
/// Restoring it with [`Cg::restore_state`] resumes the *exact* fault-free
/// iteration sequence — no residual recompute, no search-direction reset,
/// no reconvergence penalty — which is what the exact-state ABFT-CR
/// checkpoint scheme stores to disk (`x`, `r`, `p`, and the `rᵀr`
/// scalar, per Pachajoa et al.).
#[derive(Debug, Clone, PartialEq)]
pub struct KrylovState {
    /// Iteration count at capture time (bookkeeping only; restores do not
    /// rewind the monotonic work counter).
    pub iteration: usize,
    /// The iterate.
    pub x: Vec<f64>,
    /// The recurrence residual.
    pub r: Vec<f64>,
    /// The search direction.
    pub p: Vec<f64>,
    /// The cached `rᵀr` scalar.
    pub rr: f64,
}

/// A resumable CG iteration on `A x = b` for SPD `A`.
///
/// The struct owns the full iteration state (`x`, `r`, `p`); the caller
/// advances it with [`Cg::step`] and may mutate `x` between steps (fault
/// injection / recovery) as long as it then calls [`Cg::restart`] to
/// recompute the residual and reset the search direction — the standard
/// recovery pattern for Krylov methods under faults.
///
/// # Example
///
/// ```
/// use rsls_solvers::{Cg, CgConfig};
/// use rsls_sparse::generators::tridiagonal;
///
/// let a = tridiagonal(100, 2.5);
/// let b = vec![1.0; 100];
/// let mut cg = Cg::from_zero(&a, &b);
/// let (iters, converged) = cg.solve(&CgConfig::default());
/// assert!(converged);
/// assert!(iters < 100);
/// assert!(cg.true_relative_residual() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cg<'a> {
    op: SpmvOperator<'a>,
    b: &'a [f64],
    x: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    rr: f64,
    b_norm: f64,
    iteration: usize,
}

impl<'a> Cg<'a> {
    /// Initializes CG from the initial guess `x0`.
    ///
    /// # Panics
    /// Panics on dimension mismatches or a non-square matrix.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], x0: Vec<f64>) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "CG requires a square matrix");
        assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
        assert_eq!(x0.len(), a.nrows(), "initial guess length mismatch");
        let n = a.nrows();
        let b_norm = norm2(b).max(f64::MIN_POSITIVE);
        // Bind the operator to the format the deterministic heuristic
        // selects; every kernel behind `apply` is bit-identical to the
        // CSR reference, so trajectories (including the replayed ABFT
        // ones) do not depend on the choice.
        let mut cg = Cg {
            op: SpmvOperator::select(a),
            b,
            x: x0,
            r: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
            rr: 0.0,
            b_norm,
            iteration: 0,
        };
        cg.recompute_residual();
        cg
    }

    /// Initializes CG from the zero initial guess.
    pub fn from_zero(a: &'a CsrMatrix, b: &'a [f64]) -> Self {
        let n = a.nrows();
        Cg::new(a, b, vec![0.0; n])
    }

    /// Performs one CG iteration, returning the new relative residual.
    pub fn step(&mut self) -> f64 {
        self.op.apply(&self.p, &mut self.ap);
        let pap = dot(&self.p, &self.ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Breakdown (indefinite operator or poisoned state): restart
            // from the current x rather than diverging silently.
            self.recompute_residual();
            self.iteration += 1;
            return self.relative_residual();
        }
        let alpha = self.rr / pap;
        axpy(alpha, &self.p, &mut self.x);
        // Fused residual update + squared norm: one pass over r instead
        // of two, bit-identical to axpy followed by dot(r, r).
        let rr_new = axpy_dot(-alpha, &self.ap, &mut self.r);
        let beta = rr_new / self.rr;
        xpby(&self.r, beta, &mut self.p);
        self.rr = rr_new;
        self.iteration += 1;
        self.relative_residual()
    }

    /// Recomputes `r = b − A x` and resets `p = r` — required after any
    /// external mutation of `x` (fault injection or recovery).
    pub fn restart(&mut self) {
        self.recompute_residual();
    }

    fn recompute_residual(&mut self) {
        self.op.apply(&self.x, &mut self.r);
        for (ri, bi) in self.r.iter_mut().zip(self.b) {
            *ri = bi - *ri;
        }
        self.p.copy_from_slice(&self.r);
        self.rr = dot(&self.r, &self.r);
    }

    /// `||r||₂ / ||b||₂` of the tracked (recurrence) residual.
    pub fn relative_residual(&self) -> f64 {
        self.rr.sqrt() / self.b_norm
    }

    /// The *true* relative residual `||b − A x|| / ||b||` (recomputed; the
    /// recurrence residual can drift after many iterations).
    ///
    /// Allocation-free: reuses the `ap` scratch vector, which every
    /// [`Cg::step`] overwrites before reading, so clobbering it here is
    /// invisible to the iteration.
    pub fn true_relative_residual(&mut self) -> f64 {
        self.op.apply(&self.x, &mut self.ap);
        let mut diff = 0.0;
        for (axi, bi) in self.ap.iter().zip(self.b) {
            diff += (bi - axi) * (bi - axi);
        }
        diff.sqrt() / self.b_norm
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The storage format the operator was bound to.
    pub fn format(&self) -> rsls_sparse::Format {
        self.op.format()
    }

    /// The current iterate.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Mutable access to a slice of the iterate — the fault injector
    /// corrupts the failed rank's range, recovery schemes overwrite it.
    /// Call [`Cg::restart`] afterwards.
    pub fn x_slice_mut(&mut self, range: std::ops::Range<usize>) -> &mut [f64] {
        &mut self.x[range]
    }

    /// Replaces the whole iterate (checkpoint rollback). Call
    /// [`Cg::restart`] afterwards.
    pub fn set_x(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.x.len());
        self.x.copy_from_slice(x);
    }

    /// Snapshots the full Krylov state (`x`, `r`, `p`, `rᵀr`).
    ///
    /// `ap` is excluded: every [`Cg::step`] overwrites it before reading.
    pub fn capture_state(&self) -> KrylovState {
        KrylovState {
            iteration: self.iteration,
            x: self.x.clone(),
            r: self.r.clone(),
            p: self.p.clone(),
            rr: self.rr,
        }
    }

    /// Restores a [`KrylovState`] snapshot taken on this system.
    ///
    /// Unlike [`Cg::set_x`] + [`Cg::restart`], this needs no residual
    /// recompute: subsequent steps replay the captured run bit-for-bit.
    /// The iteration counter is *not* rewound — it keeps counting total
    /// work performed, including the replayed stretch.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn restore_state(&mut self, state: &KrylovState) {
        assert_eq!(state.x.len(), self.x.len(), "state dimension mismatch");
        assert_eq!(state.r.len(), self.r.len(), "state dimension mismatch");
        assert_eq!(state.p.len(), self.p.len(), "state dimension mismatch");
        self.x.copy_from_slice(&state.x);
        self.r.copy_from_slice(&state.r);
        self.p.copy_from_slice(&state.p);
        self.rr = state.rr;
    }

    /// True when the relative residual is at or below `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        self.relative_residual() <= tol
    }

    /// Flops of one CG step on this matrix: one SpMV plus two dots and
    /// three axpy-like updates over `n` entries.
    pub fn step_flops(a: &CsrMatrix) -> u64 {
        a.spmv_flops() + 10 * a.nrows() as u64
    }

    /// Runs to convergence, returning `(iterations, converged)`.
    pub fn solve(&mut self, cfg: &CgConfig) -> (usize, bool) {
        while self.iteration < cfg.max_iterations {
            if self.converged(cfg.tolerance) {
                return (self.iteration, true);
            }
            self.step();
        }
        (self.iteration, self.converged(cfg.tolerance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_sparse::generators::{banded_spd, tridiagonal, BandedConfig};
    use rsls_sparse::vector::dist2;

    fn rhs_for_known_solution(a: &CsrMatrix, xstar: &[f64]) -> Vec<f64> {
        let mut b = vec![0.0; a.nrows()];
        a.spmv(xstar, &mut b);
        b
    }

    #[test]
    fn cg_solves_tridiagonal_system() {
        let a = tridiagonal(100, 2.5);
        let xstar: Vec<f64> = (0..100).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = rhs_for_known_solution(&a, &xstar);
        let mut cg = Cg::from_zero(&a, &b);
        let (iters, ok) = cg.solve(&CgConfig::default());
        assert!(ok, "did not converge in {iters} iterations");
        assert!(dist2(cg.x(), &xstar) < 1e-8);
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations_in_exact_arithmetic_spirit() {
        let cfg = BandedConfig::regular(50, 5, 0.5, 2);
        let a = banded_spd(&cfg);
        let b = vec![1.0; 50];
        let mut cg = Cg::from_zero(&a, &b);
        let (iters, ok) = cg.solve(&CgConfig {
            tolerance: 1e-10,
            max_iterations: 200,
        });
        assert!(ok);
        assert!(iters <= 60, "well-conditioned SPD took {iters} iterations");
    }

    #[test]
    fn worse_conditioning_takes_more_iterations() {
        let run = |dom: f64| {
            let cfg = BandedConfig::regular(300, 5, dom, 4);
            let a = banded_spd(&cfg);
            let b = vec![1.0; 300];
            let mut cg = Cg::from_zero(&a, &b);
            cg.solve(&CgConfig {
                tolerance: 1e-10,
                max_iterations: 100_000,
            })
            .0
        };
        let well = run(1.0);
        let ill = run(0.01);
        assert!(
            ill > 2 * well,
            "expected conditioning to drive iterations: {well} vs {ill}"
        );
    }

    #[test]
    fn restart_repairs_externally_corrupted_state() {
        let a = tridiagonal(80, 3.0);
        let b = vec![1.0; 80];
        let mut cg = Cg::from_zero(&a, &b);
        for _ in 0..10 {
            cg.step();
        }
        // Corrupt a slice, as a fault would.
        for v in cg.x_slice_mut(20..40) {
            *v = f64::NAN;
        }
        // Replace with zeros (the F0 scheme) and restart.
        for v in cg.x_slice_mut(20..40) {
            *v = 0.0;
        }
        cg.restart();
        let (_, ok) = cg.solve(&CgConfig::default());
        assert!(ok);
        assert!(cg.true_relative_residual() < 1e-10);
    }

    #[test]
    fn recurrence_residual_tracks_true_residual() {
        let a = tridiagonal(60, 2.5);
        let b = vec![1.0; 60];
        let mut cg = Cg::from_zero(&a, &b);
        for _ in 0..30 {
            cg.step();
        }
        let rec = cg.relative_residual();
        let true_r = cg.true_relative_residual();
        assert!((rec - true_r).abs() <= 1e-8 + 0.1 * true_r);
    }

    #[test]
    fn set_x_rolls_back_to_checkpoint() {
        let a = tridiagonal(40, 2.5);
        let b = vec![1.0; 40];
        let mut cg = Cg::from_zero(&a, &b);
        for _ in 0..5 {
            cg.step();
        }
        let checkpoint = cg.x().to_vec();
        let res_at_checkpoint = cg.true_relative_residual();
        for _ in 0..5 {
            cg.step();
        }
        cg.set_x(&checkpoint);
        cg.restart();
        assert!((cg.true_relative_residual() - res_at_checkpoint).abs() < 1e-12);
    }

    #[test]
    fn restore_state_replays_the_fault_free_run_bit_for_bit() {
        let cfg = BandedConfig::regular(120, 5, 0.6, 3);
        let a = banded_spd(&cfg);
        let b = vec![1.0; 120];

        // Fault-free reference trajectory.
        let mut reference = Cg::from_zero(&a, &b);
        for _ in 0..10 {
            reference.step();
        }
        let snapshot = reference.capture_state();
        let (ref_iters, ok) = reference.solve(&CgConfig::default());
        assert!(ok);
        let ref_bits: Vec<u64> = reference.x().iter().map(|v| v.to_bits()).collect();

        // Faulted run: corrupt everything after the snapshot point, then
        // restore the exact Krylov state and run to convergence.
        let mut faulted = Cg::from_zero(&a, &b);
        for _ in 0..10 {
            faulted.step();
        }
        for _ in 0..7 {
            faulted.step();
        }
        for v in faulted.x_slice_mut(0..120) {
            *v = f64::NAN;
        }
        faulted.restore_state(&snapshot);
        let (faulted_iters, ok) = faulted.solve(&CgConfig::default());
        assert!(ok);
        let faulted_bits: Vec<u64> = faulted.x().iter().map(|v| v.to_bits()).collect();

        assert_eq!(ref_bits, faulted_bits, "iterates must be bit-identical");
        assert_eq!(
            faulted.relative_residual().to_bits(),
            reference.relative_residual().to_bits(),
            "final residual must be bit-identical"
        );
        // The monotonic work counter records the 7 replayed iterations.
        assert_eq!(faulted_iters, ref_iters + 7);
    }

    #[test]
    fn step_flops_counts_spmv_and_vector_work() {
        let a = tridiagonal(10, 2.0);
        assert_eq!(Cg::step_flops(&a), 2 * a.nnz() as u64 + 100);
    }

    #[test]
    fn nonzero_initial_guess_is_honored() {
        let a = tridiagonal(30, 2.5);
        let xstar: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = rhs_for_known_solution(&a, &xstar);
        // Start from the exact solution: converged immediately.
        let cg = Cg::new(&a, &b, xstar.clone());
        assert!(cg.converged(1e-12));
    }
}
