//! Distributed-memory (SPMD) Conjugate Gradient.
//!
//! The resilient driver charges communication through the *logical*
//! distribution model (global vectors + a [`Partition`]). This module is
//! the corresponding *physical* implementation: each rank owns only its
//! block of every vector and a column-remapped row panel of the matrix;
//! SpMV requires an explicit halo exchange and inner products a reduction
//! — exactly the data movement an MPI implementation performs. It exists
//! to (a) validate that the driver's charged communication volumes match
//! what a real SPMD code moves, and (b) serve as the starting point for a
//! genuinely parallel backend.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use rsls_sparse::artifacts::MatrixKey;
use rsls_sparse::{CsrMatrix, Partition};

/// Memo map type: `(matrix content, partition boundaries) → plan`.
type PlanMemo = Mutex<BTreeMap<(MatrixKey, u64), Arc<HaloPlan>>>;

/// Process-global memo of halo plans: `(matrix content, partition
/// boundaries) → plan`. Plans are pure functions of their key, so a
/// hit is bit-identical to a rebuild.
static PLAN_CACHE: OnceLock<PlanMemo> = OnceLock::new();
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the [`HaloPlan::build_cached`] memo, for the
/// `/metrics` artifact-cache families.
pub fn halo_plan_cache_stats() -> (u64, u64) {
    (
        PLAN_HITS.load(Ordering::Relaxed),
        PLAN_MISSES.load(Ordering::Relaxed),
    )
}

/// Folds the exact `(start, end)` boundaries of every rank range, so two
/// partitions share a key only when they induce the same distribution.
fn partition_hash(part: &Partition) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for rank in 0..part.num_ranks() {
        let r = part.range(rank);
        h = (h ^ r.start as u64).wrapping_mul(PRIME);
        h = (h ^ r.end as u64).wrapping_mul(PRIME);
    }
    h
}

/// The communication plan of a block-row SPMD SpMV.
///
/// For every rank: which remote entries of `x` it needs (its *halo*), and
/// which of its own entries each peer needs from it.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    /// `recv[rank]` — sorted global indices rank needs but does not own.
    recv: Vec<Vec<usize>>,
    /// `send[rank]` — `(peer, global indices to ship to peer)`.
    send: Vec<Vec<(usize, Vec<usize>)>>,
}

impl HaloPlan {
    /// Builds the plan from the matrix sparsity and the partition.
    pub fn build(a: &CsrMatrix, part: &Partition) -> Self {
        let p = part.num_ranks();
        let mut recv: Vec<Vec<usize>> = Vec::with_capacity(p);
        for rank in 0..p {
            let range = part.range(rank);
            let mut needed: Vec<usize> = Vec::new();
            for r in range.clone() {
                for &c in a.row_cols(r) {
                    if !range.contains(&c) {
                        needed.push(c);
                    }
                }
            }
            needed.sort_unstable();
            needed.dedup();
            recv.push(needed);
        }
        // Invert: who must send what.
        let mut send: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); p];
        for (rank, needed) in recv.iter().enumerate() {
            let mut by_owner: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for &c in needed {
                by_owner.entry(part.owner(c)).or_default().push(c);
            }
            for (owner, cols) in by_owner {
                send[owner].push((rank, cols));
            }
        }
        HaloPlan { recv, send }
    }

    /// Memoized [`HaloPlan::build`]: scaling studies construct many
    /// [`DistCg`] instances over the same `(matrix, partition)` pair, and
    /// the plan depends on nothing else.
    pub fn build_cached(a: &CsrMatrix, part: &Partition) -> Arc<HaloPlan> {
        let key = (MatrixKey::of(a), partition_hash(part));
        let cache = PLAN_CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
        if let Some(hit) = cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
        {
            PLAN_HITS.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(HaloPlan::build(a, part));
        cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(plan)
            .clone()
    }

    /// Global indices `rank` receives each exchange.
    pub fn recv_indices(&self, rank: usize) -> &[usize] {
        &self.recv[rank]
    }

    /// `(peer, indices)` pairs `rank` sends each exchange.
    pub fn send_targets(&self, rank: usize) -> &[(usize, Vec<usize>)] {
        &self.send[rank]
    }

    /// Total bytes moved per exchange (8 bytes per halo value, counting
    /// each transferred value once).
    pub fn bytes_per_exchange(&self) -> u64 {
        self.recv.iter().map(|r| r.len() as u64 * 8).sum()
    }

    /// Number of point-to-point messages per exchange.
    pub fn messages_per_exchange(&self) -> usize {
        self.send.iter().map(|s| s.len()).sum()
    }
}

/// Per-rank storage: the local slice of a global vector plus its halo.
#[derive(Debug, Clone)]
struct LocalVector {
    /// Owned entries (the rank's partition range).
    own: Vec<f64>,
    /// Halo entries, ordered like `HaloPlan::recv_indices`.
    halo: Vec<f64>,
}

/// A distributed CG instance: all ranks' state, advanced in lockstep.
///
/// Numerically the iteration is identical to [`Cg`](crate::Cg) up to
/// floating-point summation order (partial dot products are reduced
/// rank-by-rank, as an MPI allreduce would).
#[derive(Debug, Clone)]
pub struct DistCg {
    part: Partition,
    plan: Arc<HaloPlan>,
    /// Per-rank row panel with columns remapped to `[own | halo]` local
    /// numbering.
    local_a: Vec<CsrMatrix>,
    x: Vec<Vec<f64>>,
    r: Vec<Vec<f64>>,
    p_dir: Vec<LocalVector>,
    ap: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
    rr: f64,
    b_norm: f64,
    iteration: usize,
    bytes_moved: u64,
}

impl DistCg {
    /// Distributes `A x = b` over `part` and initializes from the zero
    /// guess.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn new(a: &CsrMatrix, b: &[f64], part: Partition) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "distributed CG requires square A");
        assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
        assert_eq!(part.n(), a.nrows(), "partition does not match matrix");
        let p = part.num_ranks();
        let plan = HaloPlan::build_cached(a, &part);

        // Remap each rank's rows to local column numbering: columns inside
        // the range map to [0, len); halo columns map to len + position in
        // the sorted recv list.
        let mut local_a = Vec::with_capacity(p);
        for rank in 0..p {
            let range = part.range(rank);
            let recv = plan.recv_indices(rank);
            let local_cols = range.len() + recv.len();
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            for r in range.clone() {
                for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                    let lc = if range.contains(&c) {
                        c - range.start
                    } else {
                        range.len()
                            + recv
                                .binary_search(&c)
                                // rsls-lint: allow(no-unwrap) -- recv is built from exactly these off-range columns
                                .expect("halo plan must cover every off-range column")
                    };
                    col_idx.push(lc);
                    values.push(v);
                }
                row_ptr.push(col_idx.len());
            }
            // Columns within a row are not globally sorted after remapping
            // (own block first, halo after), so re-sort per row.
            for w in 0..range.len() {
                let (lo, hi) = (row_ptr[w], row_ptr[w + 1]);
                let mut pairs: Vec<(usize, f64)> = col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(c, _)| c);
                for (k, (c, v)) in pairs.into_iter().enumerate() {
                    col_idx[lo + k] = c;
                    values[lo + k] = v;
                }
            }
            local_a.push(
                CsrMatrix::from_raw_parts(range.len(), local_cols, row_ptr, col_idx, values)
                    // rsls-lint: allow(no-unwrap) -- panel arrays are built row-by-row above, invariants hold
                    .expect("remapped local panel must be valid CSR"),
            );
        }

        let b_norm = rsls_sparse::vector::norm2(b).max(f64::MIN_POSITIVE);
        let mut dist = DistCg {
            x: (0..p).map(|r| vec![0.0; part.len(r)]).collect(),
            r: (0..p).map(|r| b[part.range(r)].to_vec()).collect(),
            p_dir: (0..p)
                .map(|r| LocalVector {
                    own: b[part.range(r)].to_vec(),
                    halo: vec![0.0; plan.recv_indices(r).len()],
                })
                .collect(),
            ap: (0..p).map(|r| vec![0.0; part.len(r)]).collect(),
            b: (0..p).map(|r| b[part.range(r)].to_vec()).collect(),
            rr: 0.0,
            b_norm,
            iteration: 0,
            bytes_moved: 0,
            local_a,
            plan,
            part,
        };
        dist.rr = dist.reduce_dot_rr();
        dist
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.part.num_ranks()
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Total halo bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// `||r|| / ||b||`.
    pub fn relative_residual(&self) -> f64 {
        self.rr.sqrt() / self.b_norm
    }

    /// Reassembles the global iterate (a gather, for inspection).
    pub fn x_global(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.part.n()];
        for (rank, xr) in self.x.iter().enumerate() {
            out[self.part.range(rank)].copy_from_slice(xr);
        }
        out
    }

    /// The halo-exchange + reduction plan (for communication-volume
    /// inspection).
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    fn exchange_halos(&mut self) {
        // "Messages": copy owned entries of p into peers' halo buffers.
        let p = self.num_ranks();
        for rank in 0..p {
            let recv = self.plan.recv_indices(rank).to_vec();
            for (slot, gidx) in recv.iter().enumerate() {
                let owner = self.part.owner(*gidx);
                let local = gidx - self.part.range(owner).start;
                self.p_dir[rank].halo[slot] = self.p_dir[owner].own[local];
            }
            self.bytes_moved += recv.len() as u64 * 8;
        }
    }

    /// Rank-by-rank reduction of `Σ r·r` (deterministic order, like a
    /// fixed-topology allreduce).
    fn reduce_dot_rr(&self) -> f64 {
        self.r
            .iter()
            .map(|rr| rr.iter().map(|v| v * v).sum::<f64>())
            .sum()
    }

    fn reduce_dot_p_ap(&self) -> f64 {
        self.p_dir
            .iter()
            .zip(&self.ap)
            .map(|(pd, ap)| pd.own.iter().zip(ap).map(|(a, b)| a * b).sum::<f64>())
            .sum()
    }

    /// One lockstep CG iteration across all ranks; returns the new
    /// relative residual.
    pub fn step(&mut self) -> f64 {
        self.exchange_halos();
        let p = self.num_ranks();
        // Local SpMV on [own | halo].
        for rank in 0..p {
            let pd = &self.p_dir[rank];
            let mut input = Vec::with_capacity(pd.own.len() + pd.halo.len());
            input.extend_from_slice(&pd.own);
            input.extend_from_slice(&pd.halo);
            self.local_a[rank].spmv(&input, &mut self.ap[rank]);
        }
        let pap = self.reduce_dot_p_ap();
        if pap <= 0.0 || !pap.is_finite() {
            self.iteration += 1;
            return self.relative_residual();
        }
        let alpha = self.rr / pap;
        for rank in 0..p {
            for ((xi, pi), (ri, api)) in self.x[rank]
                .iter_mut()
                .zip(&self.p_dir[rank].own)
                .zip(self.r[rank].iter_mut().zip(&self.ap[rank]))
            {
                *xi += alpha * pi;
                *ri -= alpha * api;
            }
        }
        let rr_new = self.reduce_dot_rr();
        let beta = rr_new / self.rr;
        for rank in 0..p {
            for (pi, ri) in self.p_dir[rank].own.iter_mut().zip(&self.r[rank]) {
                *pi = ri + beta * *pi;
            }
        }
        self.rr = rr_new;
        self.iteration += 1;
        self.relative_residual()
    }

    /// Runs until the relative residual reaches `tol` or `max_iters`;
    /// returns `(iterations, converged)`.
    pub fn solve(&mut self, tol: f64, max_iters: usize) -> (usize, bool) {
        while self.iteration < max_iters {
            if self.relative_residual() <= tol {
                return (self.iteration, true);
            }
            self.step();
        }
        (self.iteration, self.relative_residual() <= tol)
    }

    /// Corrupts one rank's local state (what a node failure does to the
    /// physical layout).
    pub fn corrupt_rank(&mut self, rank: usize) {
        for v in &mut self.x[rank] {
            *v = f64::NAN;
        }
    }

    /// Overwrites one rank's block of `x` (a recovery action) and repairs
    /// the CG state: every rank recomputes `r = b − A x` after a halo
    /// exchange of `x`, then resets its search direction.
    pub fn restore_rank(&mut self, rank: usize, block: &[f64]) {
        assert_eq!(block.len(), self.part.len(rank));
        self.x[rank].copy_from_slice(block);
        // Repair: exchange x-halos, recompute residuals.
        let p = self.num_ranks();
        for rk in 0..p {
            let recv = self.plan.recv_indices(rk).to_vec();
            let mut input = Vec::with_capacity(self.x[rk].len() + recv.len());
            input.extend_from_slice(&self.x[rk]);
            for gidx in &recv {
                let owner = self.part.owner(*gidx);
                let local = gidx - self.part.range(owner).start;
                input.push(self.x[owner][local]);
            }
            self.bytes_moved += recv.len() as u64 * 8;
            self.local_a[rk].spmv(&input, &mut self.ap[rk]);
        }
        for rk in 0..p {
            for ((ri, bi), api) in self.r[rk].iter_mut().zip(&self.b[rk]).zip(&self.ap[rk]) {
                *ri = bi - api;
            }
            self.p_dir[rk].own.copy_from_slice(&self.r[rk]);
        }
        self.rr = self.reduce_dot_rr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cg, CgConfig};
    use rsls_sparse::generators::{banded_spd, stencil_2d, BandedConfig};
    use rsls_sparse::vector::dist2;

    fn system(n: usize) -> (CsrMatrix, Vec<f64>) {
        let a = banded_spd(&BandedConfig::regular(n, 7, 0.05, 9));
        let ones = vec![1.0; n];
        let mut b = vec![0.0; n];
        a.spmv(&ones, &mut b);
        (a, b)
    }

    #[test]
    fn halo_plan_covers_exactly_the_off_range_columns() {
        let (a, _) = system(100);
        let part = Partition::balanced(100, 7);
        let plan = HaloPlan::build(&a, &part);
        for rank in 0..7 {
            let range = part.range(rank);
            // Every received index is outside the range and actually used.
            for &g in plan.recv_indices(rank) {
                assert!(!range.contains(&g));
                let used = range
                    .clone()
                    .any(|r| a.row_cols(r).binary_search(&g).is_ok());
                assert!(used, "rank {rank} receives unused column {g}");
            }
        }
        // Send lists mirror receive lists.
        let total_recv: usize = (0..7).map(|r| plan.recv_indices(r).len()).sum();
        let total_send: usize = (0..7)
            .flat_map(|r| plan.send_targets(r).iter().map(|(_, c)| c.len()))
            .sum();
        assert_eq!(total_recv, total_send);
    }

    #[test]
    fn distributed_matches_sequential_cg() {
        let (a, b) = system(120);
        let part = Partition::balanced(120, 5);
        let mut dist = DistCg::new(&a, &b, part);
        let mut seq = Cg::from_zero(&a, &b);
        for _ in 0..40 {
            let rd = dist.step();
            let rs = seq.step();
            assert!(
                (rd - rs).abs() <= 1e-9 * rs.max(1e-30),
                "iter {}: dist {rd} vs seq {rs}",
                dist.iteration()
            );
        }
        assert!(dist2(&dist.x_global(), seq.x()) < 1e-9);
    }

    #[test]
    fn distributed_solves_the_stencil() {
        let a = stencil_2d(20, 20);
        let ones = vec![1.0; 400];
        let mut b = vec![0.0; 400];
        a.spmv(&ones, &mut b);
        let mut dist = DistCg::new(&a, &b, Partition::balanced(400, 8));
        let (_, ok) = dist.solve(1e-10, 2000);
        assert!(ok);
        assert!(dist2(&dist.x_global(), &ones) < 1e-6);
    }

    #[test]
    fn comm_volume_matches_the_plan() {
        let (a, b) = system(200);
        let part = Partition::balanced(200, 4);
        let mut dist = DistCg::new(&a, &b, part);
        let per_exchange = dist.plan().bytes_per_exchange();
        assert!(per_exchange > 0);
        for _ in 0..5 {
            dist.step();
        }
        assert_eq!(dist.bytes_moved(), 5 * per_exchange);
    }

    #[test]
    fn corrupt_and_restore_round_trips() {
        let (a, b) = system(90);
        let part = Partition::balanced(90, 3);
        let mut dist = DistCg::new(&a, &b, part.clone());
        for _ in 0..10 {
            dist.step();
        }
        let before = dist.x_global();
        dist.corrupt_rank(1);
        // Recover with the pre-fault block (an idealized exact recovery).
        let block = before[part.range(1)].to_vec();
        dist.restore_rank(1, &block);
        assert!(dist2(&dist.x_global(), &before) < 1e-14);
        // And the solver still converges.
        let (_, ok) = dist.solve(1e-10, 5000);
        assert!(ok);
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let (a, b) = system(60);
        let mut dist = DistCg::new(&a, &b, Partition::balanced(60, 1));
        assert_eq!(dist.plan().bytes_per_exchange(), 0);
        let (_, ok) = dist.solve(1e-10, 1000);
        assert!(ok);
        let mut seq = Cg::from_zero(&a, &b);
        let (_, ok2) = seq.solve(&CgConfig {
            tolerance: 1e-10,
            max_iterations: 1000,
        });
        assert!(ok2);
        assert!(dist2(&dist.x_global(), seq.x()) < 1e-9);
    }
}
