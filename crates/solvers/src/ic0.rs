//! IC(0) incomplete-Cholesky preconditioned CG.
//!
//! The zero-fill incomplete Cholesky factorization keeps exactly the
//! sparsity pattern of the lower triangle of `A` and computes
//!
//! ```text
//! l_ij = (a_ij − Σ_k l_ik · l_jk) / l_jj   (k over common columns < j)
//! l_ii = sqrt(a_ii − Σ_k l_ik²)
//! ```
//!
//! The preconditioner application solves `L Lᵀ z = r` with one forward
//! and one backward triangular sweep. Both the factorization and the
//! solves are strictly sequential with a fixed traversal order (rows
//! ascending, columns ascending; backward sweep rows descending), so the
//! scheme is deterministic on every machine and thread count — the same
//! rule every kernel in the workspace obeys.
//!
//! Compared to Jacobi, IC(0) couples neighbouring unknowns and cuts the
//! iteration count of the paper's stencil/banded model problems by
//! multiples; the ablation bench (`cargo bench -p rsls-bench`) measures
//! the reduction. Each iteration costs one extra triangular-solve pass
//! (≈ one SpMV of work), so it wins end-to-end when it saves more than
//! about half the iterations.

use rsls_sparse::vector::{axpy, axpy_dot, dot, xpby};
use rsls_sparse::{CsrMatrix, LinalgError, SpmvOperator};

use crate::cg::CgConfig;

/// A zero-fill incomplete Cholesky factor `L` (lower triangular, same
/// sparsity as the lower triangle of `A`, diagonal included).
#[derive(Debug, Clone)]
pub struct Ic0 {
    n: usize,
    /// CSR-style row starts into `cols` / `vals` (`n + 1` entries). Each
    /// row holds its strictly-lower entries ascending, then the diagonal.
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// `1 / l_ii` per row (division is costlier than multiplication in
    /// the inner solve loops).
    inv_diag: Vec<f64>,
}

impl Ic0 {
    /// Factors the lower triangle of a square SPD matrix.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] when a pivot `a_ii − Σ l_ik²`
    /// is not strictly positive — the matrix is not SPD (or IC(0)
    /// breaks down on it, which the zero-fill variant can for matrices
    /// that are only barely SPD).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Ic0, LinalgError> {
        assert_eq!(a.nrows(), a.ncols(), "IC(0) requires a square matrix");
        let n = a.nrows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut cols: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut inv_diag = vec![0.0f64; n];

        for i in 0..n {
            let a_cols = a.row_cols(i);
            let a_vals = a.row_vals(i);
            let lower_end = a_cols.partition_point(|&c| c < i);
            for k in 0..lower_end {
                let j = a_cols[k];
                // s = a_ij − Σ l_ik l_jk over common columns k < j: a
                // two-pointer sweep of L's (ascending) rows i and j.
                let mut s = a_vals[k];
                let (mut pi, mut pj) = (row_ptr[i], row_ptr[j]);
                let (ei, ej) = (cols.len(), row_ptr[j + 1]);
                while pi < ei && pj < ej {
                    let (ci, cj) = (cols[pi], cols[pj]);
                    if ci >= j || cj >= j {
                        break;
                    }
                    match ci.cmp(&cj) {
                        std::cmp::Ordering::Less => pi += 1,
                        std::cmp::Ordering::Greater => pj += 1,
                        std::cmp::Ordering::Equal => {
                            s -= vals[pi] * vals[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
                cols.push(j);
                vals.push(s * inv_diag[j]);
            }
            // Pivot: a_ii − Σ l_ik² over this row's strictly-lower part.
            let mut s = if lower_end < a_cols.len() && a_cols[lower_end] == i {
                a_vals[lower_end]
            } else {
                0.0
            };
            for v in &vals[row_ptr[i]..] {
                s -= v * v;
            }
            if s <= 0.0 || !s.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            let l_ii = s.sqrt();
            cols.push(i);
            vals.push(l_ii);
            inv_diag[i] = 1.0 / l_ii;
            row_ptr.push(cols.len());
        }

        Ok(Ic0 {
            n,
            row_ptr,
            cols,
            vals,
            inv_diag,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries of `L` (strictly-lower plus diagonal).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Solves `L Lᵀ z = r` into `z`, using `w` as the intermediate
    /// (forward-solve) scratch. Allocation-free and strictly sequential.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn apply(&self, r: &[f64], w: &mut [f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "ic0 apply: r length mismatch");
        assert_eq!(w.len(), self.n, "ic0 apply: w length mismatch");
        assert_eq!(z.len(), self.n, "ic0 apply: z length mismatch");
        // Forward: L w = r, rows ascending (diagonal is each row's last).
        for i in 0..self.n {
            let mut s = r[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] - 1 {
                s -= self.vals[k] * w[self.cols[k]];
            }
            w[i] = s * self.inv_diag[i];
        }
        // Backward: Lᵀ z = w via column sweeps of L, rows descending.
        z.copy_from_slice(w);
        for i in (0..self.n).rev() {
            let zi = z[i] * self.inv_diag[i];
            z[i] = zi;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] - 1 {
                z[self.cols[k]] -= self.vals[k] * zi;
            }
        }
    }

    /// The factor as a [`CsrMatrix`] (tests and inspection).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_raw_parts(
            self.n,
            self.n,
            self.row_ptr.clone(),
            self.cols.clone(),
            self.vals.clone(),
        )
        // rsls-lint: allow(no-unwrap) -- the factorization stores each row's strictly-lower columns ascending then the diagonal, so the CSR invariants hold by construction
        .expect("IC(0) factor rows are ascending with in-bounds columns")
    }
}

/// IC(0)-preconditioned CG on `A x = b`, mirroring [`crate::JacobiPcg`]:
/// the operator runs in the selected format, the residual update uses
/// the fused [`axpy_dot`] kernel, and every step is allocation-free.
#[derive(Debug, Clone)]
pub struct Ic0Pcg<'a> {
    op: SpmvOperator<'a>,
    ic0: Ic0,
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    w: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    rz: f64,
    rr: f64,
    b_norm: f64,
    iteration: usize,
}

impl<'a> Ic0Pcg<'a> {
    /// Initializes from the zero guess.
    ///
    /// # Errors
    /// Propagates [`LinalgError::NotPositiveDefinite`] from the
    /// factorization.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64]) -> Result<Self, LinalgError> {
        assert_eq!(a.nrows(), a.ncols());
        assert_eq!(b.len(), a.nrows());
        let ic0 = Ic0::factor(a)?;
        let n = a.nrows();
        let r = b.to_vec();
        let mut z = vec![0.0; n];
        let mut w = vec![0.0; n];
        ic0.apply(&r, &mut w, &mut z);
        let rz = dot(&r, &z);
        let rr = dot(&r, &r);
        Ok(Ic0Pcg {
            op: SpmvOperator::select(a),
            ic0,
            p: z.clone(),
            z,
            w,
            r,
            x: vec![0.0; n],
            ap: vec![0.0; n],
            rz,
            rr,
            b_norm: rsls_sparse::vector::norm2(b).max(f64::MIN_POSITIVE),
            iteration: 0,
        })
    }

    /// One PCG iteration; returns the relative residual.
    ///
    /// Allocation-free: the triangular solves run in the preallocated
    /// `w`/`z` scratch (the bench's `ic0_warm_allocs` gate holds this
    /// at zero).
    pub fn step(&mut self) -> f64 {
        self.op.apply(&self.p, &mut self.ap);
        let pap = dot(&self.p, &self.ap);
        if pap <= 0.0 || !pap.is_finite() {
            self.iteration += 1;
            return self.relative_residual();
        }
        let alpha = self.rz / pap;
        axpy(alpha, &self.p, &mut self.x);
        self.rr = axpy_dot(-alpha, &self.ap, &mut self.r);
        self.ic0.apply(&self.r, &mut self.w, &mut self.z);
        let rz_new = dot(&self.r, &self.z);
        let beta = rz_new / self.rz;
        xpby(&self.z, beta, &mut self.p);
        self.rz = rz_new;
        self.iteration += 1;
        self.relative_residual()
    }

    /// `||r||₂ / ||b||₂` from the tracked `rᵀr` scalar (no vector pass).
    pub fn relative_residual(&self) -> f64 {
        self.rr.sqrt() / self.b_norm
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The storage format the operator was bound to.
    pub fn format(&self) -> rsls_sparse::Format {
        self.op.format()
    }

    /// The current iterate.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Runs to convergence; returns `(iterations, converged)`.
    pub fn solve(&mut self, cfg: &CgConfig) -> (usize, bool) {
        while self.iteration < cfg.max_iterations {
            if self.relative_residual() <= cfg.tolerance {
                return (self.iteration, true);
            }
            self.step();
        }
        (self.iteration, self.relative_residual() <= cfg.tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_sparse::generators::{banded_spd, stencil_2d, tridiagonal, BandedConfig};
    use rsls_sparse::vector::dist2;

    #[test]
    fn ic0_of_tridiagonal_is_exact_cholesky() {
        // Tridiagonal SPD has no fill-in, so IC(0) == complete Cholesky
        // and L Lᵀ reproduces A exactly.
        let a = tridiagonal(40, 2.5);
        let l = Ic0::factor(&a).unwrap().to_csr();
        let lt = l.transpose();
        for i in 0..40 {
            for j in 0..40 {
                let mut s = 0.0;
                for k in 0..40 {
                    s += l.get(i, k) * lt.get(k, j);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn ic0_apply_solves_the_factored_system() {
        let a = tridiagonal(50, 3.0);
        let ic0 = Ic0::factor(&a).unwrap();
        let r: Vec<f64> = (0..50).map(|i| ((i * 11) % 17) as f64 - 8.0).collect();
        let mut w = vec![0.0; 50];
        let mut z = vec![0.0; 50];
        ic0.apply(&r, &mut w, &mut z);
        // For the no-fill case, A z must equal r.
        let mut az = vec![0.0; 50];
        a.spmv(&z, &mut az);
        assert!(dist2(&az, &r) < 1e-9, "{}", dist2(&az, &r));
    }

    #[test]
    fn ic0_rejects_indefinite_matrix() {
        use rsls_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push_sym(0, 1, 2.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            Ic0::factor(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn ic0_pcg_solves_spd_system() {
        let a = banded_spd(&BandedConfig::regular(120, 5, 0.1, 6));
        let b = vec![1.0; 120];
        let mut pcg = Ic0Pcg::new(&a, &b).unwrap();
        let (_, ok) = pcg.solve(&CgConfig::default());
        assert!(ok);
        let mut ax = vec![0.0; 120];
        a.spmv(pcg.x(), &mut ax);
        assert!(dist2(&ax, &b) < 1e-8);
    }

    #[test]
    fn ic0_pcg_cuts_iterations_vs_jacobi_on_stencil() {
        let a = stencil_2d(24, 24);
        let b = vec![1.0; a.nrows()];
        let cfg = CgConfig {
            tolerance: 1e-10,
            max_iterations: 10_000,
        };
        let ic0_iters = {
            let mut s = Ic0Pcg::new(&a, &b).unwrap();
            s.solve(&cfg).0
        };
        let jacobi_iters = {
            let mut s = crate::JacobiPcg::new(&a, &b);
            s.solve(&cfg).0
        };
        assert!(
            3 * ic0_iters <= 2 * jacobi_iters,
            "IC(0) ({ic0_iters}) should cut Jacobi ({jacobi_iters}) by at least 1.5x on the stencil"
        );
    }

    #[test]
    fn tracked_residual_matches_recomputed_dot() {
        let a = stencil_2d(9, 9);
        let b: Vec<f64> = (0..81).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
        let mut pcg = Ic0Pcg::new(&a, &b).unwrap();
        for _ in 0..20 {
            pcg.step();
            let tracked = pcg.relative_residual();
            let recomputed = dot(&pcg.r, &pcg.r).sqrt() / pcg.b_norm;
            assert_eq!(tracked.to_bits(), recomputed.to_bits());
        }
    }
}
