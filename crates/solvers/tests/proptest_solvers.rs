//! Property-based tests of the solver crate.

use proptest::prelude::*;
use rsls_solvers::{Cg, CgConfig, Cgls, CglsConfig, DistCg};
use rsls_sparse::generators::{banded_spd, BandedConfig};
use rsls_sparse::vector::dist2;
use rsls_sparse::Partition;

fn spd(n: usize, seed: u64) -> rsls_sparse::CsrMatrix {
    banded_spd(&BandedConfig::regular(n, 5, 0.2, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cg_always_converges_on_well_conditioned_spd(n in 10usize..150, seed in 0u64..50) {
        let a = spd(n, seed);
        let b = vec![1.0; n];
        let mut cg = Cg::from_zero(&a, &b);
        let (_, ok) = cg.solve(&CgConfig { tolerance: 1e-10, max_iterations: 10 * n + 100 });
        prop_assert!(ok);
        prop_assert!(cg.true_relative_residual() < 1e-8);
    }

    #[test]
    fn distributed_cg_tracks_sequential_for_any_partition(
        n in 20usize..150,
        p in 1usize..12,
        seed in 0u64..50,
    ) {
        let a = spd(n, seed);
        let b = vec![1.0; n];
        let mut dist = DistCg::new(&a, &b, Partition::balanced(n, p));
        let mut seq = Cg::from_zero(&a, &b);
        for _ in 0..20 {
            dist.step();
            seq.step();
        }
        // Same mathematics up to summation order.
        prop_assert!(dist2(&dist.x_global(), seq.x()) < 1e-8);
    }

    #[test]
    fn cg_residual_is_monotone_on_diagonal_systems(n in 5usize..100, d in 2.5f64..10.0) {
        // For strongly diagonally dominant systems the relative residual
        // decreases monotonically (no CG oscillation regime).
        let a = rsls_sparse::generators::tridiagonal(n, d);
        let b = vec![1.0; n];
        let mut cg = Cg::from_zero(&a, &b);
        let mut prev = cg.relative_residual();
        for _ in 0..n.min(30) {
            let r = cg.step();
            prop_assert!(r <= prev * (1.0 + 1e-9), "residual rose: {prev} -> {r}");
            prev = r;
        }
    }

    #[test]
    fn cgls_residual_never_increases(n in 10usize..100, seed in 0u64..50) {
        let a = spd(n, seed);
        let b = vec![1.0; n];
        let mut cgls = Cgls::new(&a, &b);
        // The *LS residual* ‖b − Ax‖ is monotone in CGLS (the optimality
        // residual ‖Aᵀr‖ oscillates; track the former via x).
        let mut prev = f64::INFINITY;
        for _ in 0..20 {
            cgls.step();
            let mut ax = vec![0.0; n];
            a.spmv(cgls.x(), &mut ax);
            let res: f64 = ax.iter().zip(&b).map(|(l, r)| (l - r) * (l - r)).sum::<f64>().sqrt();
            // Finite precision nudges the minimum-norm property by tiny amounts.
            prop_assert!(res <= prev * 1.01 + 1e-12);
            prev = res;
        }
        let _ = CglsConfig::default();
    }

    #[test]
    fn halo_plan_bytes_match_recv_lists(n in 20usize..200, p in 2usize..10, seed in 0u64..30) {
        let a = spd(n, seed);
        let part = Partition::balanced(n, p);
        let plan = rsls_solvers::HaloPlan::build(&a, &part);
        let from_recv: u64 = (0..p).map(|r| plan.recv_indices(r).len() as u64 * 8).sum();
        prop_assert_eq!(plan.bytes_per_exchange(), from_recv);
        // Messages are bounded by p(p-1) pairs.
        prop_assert!(plan.messages_per_exchange() <= p * (p - 1));
    }
}
