//! End-to-end soak tests: a real event-loop server on an ephemeral
//! port, soaked by the real harness.
//!
//! The experiment source here is a *small campaign* source — each
//! experiment id drives one tiny solver unit through the campaign
//! engine — rather than the full paper registry, whose harnesses take
//! seconds-to-minutes each. The wire behavior, engine routing, and
//! store layout are identical; only the numeric workload shrinks.
//!
//! The headline property lives in the last test: a chaos-seeded soak
//! against a 4-shard engine leaves exactly the object-store bytes a
//! fault-free single-shard soak leaves — the content-addressed store
//! makes shard count and injected faults invisible in the artifacts.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Once};

use rsls_campaign::EngineOptions;
use rsls_chaos::{ChaosInjector, ChaosPlan};
use rsls_experiments::{campaign, Scale, Table};
use rsls_load::{run_soak, MixWeights, SoakOptions};
use rsls_serve::server::{ExperimentInfo, ExperimentSource, ServeOptions, Server, ServerHandle};

fn engine_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let dir = std::env::temp_dir().join(format!("rsls-load-it-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        campaign::configure(EngineOptions {
            jobs: 2,
            cache_dir: dir.join("cache"),
            use_cache: true,
            resume: false,
            journal_path: Some(dir.join("campaign.journal")),
            retries: 0,
            ..EngineOptions::default()
        })
        .expect("first configure in this process");
    });
}

/// Experiments that each run one small stencil solve through the
/// campaign engine — store objects and provenance land exactly where a
/// paper harness would put them, at a thousandth of the compute.
struct TinyCampaignSource;

const TINY_IDS: &[&str] = &["unit-a", "unit-b", "unit-c", "unit-d", "unit-e"];

impl ExperimentSource for TinyCampaignSource {
    fn list(&self) -> Vec<ExperimentInfo> {
        TINY_IDS
            .iter()
            .map(|id| ExperimentInfo {
                id: id.to_string(),
                description: "tiny campaign unit".to_string(),
            })
            .collect()
    }

    fn run(&self, id: &str, scale: Scale) -> Option<Vec<Table>> {
        let idx = TINY_IDS.iter().position(|&t| t == id)?;
        campaign::set_experiment(id);
        // Distinct matrix sizes per id so every experiment stores a
        // distinct object.
        let n = 10 + idx;
        let a = rsls_sparse::generators::stencil_2d(n, n);
        let ones = vec![1.0; a.nrows()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        let cfg = rsls_core::RunConfig::new(rsls_core::Scheme::FaultFree, 2);
        let spec = campaign::unit_spec(&a, &b, id, scale, cfg);
        let report = campaign::execute_unit(&a, &b, spec);
        let mut t = Table::new(format!("{id} result"), &["iterations", "converged"]);
        t.push_row(vec![
            report.iterations.to_string(),
            report.converged.to_string(),
        ]);
        Some(vec![t])
    }
}

fn serve(opts: ServeOptions) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    engine_init();
    let server = Server::bind("127.0.0.1:0", opts, Arc::new(TinyCampaignSource))
        .expect("bind ephemeral port");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

#[test]
fn soak_completes_cleanly_across_every_request_class() {
    let (handle, join) = serve(ServeOptions {
        workers: 2,
        queue_depth: 16,
        ..ServeOptions::default()
    });

    let opts = SoakOptions {
        addr: handle.addr(),
        requests: 1200,
        connections: 4,
        seed: 11,
        pipeline_depth: 4,
        weights: MixWeights::default(),
        ..SoakOptions::default()
    };
    let outcome = run_soak(&opts).expect("soak runs");
    let report = &outcome.report;

    assert_eq!(report.requests, 1200, "every request accounted for");
    assert_eq!(
        report.protocol_errors, 0,
        "status counts: {:?}",
        outcome.status_counts
    );
    assert_eq!(report.connections, 4);
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.p50_us >= 1);
    assert!(report.latency.p99_us >= report.latency.p50_us);
    assert!(report.latency.p999_us >= report.latency.p99_us);
    assert!(report.latency.max_us >= report.latency.p999_us);
    assert_eq!(outcome.histogram.count(), 1200);

    // The default mix exercises all five classes in 1200 draws.
    for class in ["experiment", "query", "revalidate", "miss-storm", "health"] {
        assert!(
            outcome.class_counts.get(class).copied().unwrap_or(0) > 0,
            "class {class} never drawn: {:?}",
            outcome.class_counts
        );
    }
    // Expected traffic statuses: 200s (experiments, queries, health),
    // 304s (revalidation fast path), 404s (miss storms). No 5xx.
    assert!(outcome.status_counts.get(&200).copied().unwrap_or(0) > 0);
    assert!(outcome.status_counts.get(&304).copied().unwrap_or(0) > 0);
    assert!(outcome.status_counts.get(&404).copied().unwrap_or(0) > 0);
    assert!(
        outcome.status_counts.keys().all(|&s| s < 500),
        "no 5xx: {:?}",
        outcome.status_counts
    );
    // Miss storms draw 4xx closes, so the soak must have reconnected.
    assert!(outcome.reconnects > 0, "4xx closes force reconnects");

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn same_seed_replays_the_same_request_stream() {
    let (handle, join) = serve(ServeOptions::default());
    let opts = SoakOptions {
        addr: handle.addr(),
        requests: 600,
        connections: 3,
        seed: 42,
        pipeline_depth: 2,
        ..SoakOptions::default()
    };

    let first = run_soak(&opts).expect("first soak");
    let second = run_soak(&opts).expect("second soak");

    // Timings differ run to run; the *traffic* must not. The second
    // soak hits warm caches, which changes latency but no status: the
    // request stream and its responses are a pure function of the seed.
    assert_eq!(first.report.requests, second.report.requests);
    assert_eq!(first.class_counts, second.class_counts);
    assert_eq!(first.status_counts, second.status_counts);
    assert_eq!(first.report.protocol_errors, 0);
    assert_eq!(second.report.protocol_errors, 0);

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

/// Collects `objects/<sha>.json` name → bytes across the store dirs.
fn store_objects(dirs: &[std::path::PathBuf]) -> BTreeMap<String, Vec<u8>> {
    let mut objects = BTreeMap::new();
    for dir in dirs {
        let obj_dir = dir.join("objects");
        let Ok(entries) = std::fs::read_dir(&obj_dir) else {
            continue;
        };
        for entry in entries {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("read object");
            if let Some(previous) = objects.insert(name.clone(), bytes.clone()) {
                assert_eq!(previous, bytes, "duplicate object {name} must be identical");
            }
        }
    }
    objects
}

fn soak_against(base: &Path, shards: usize, chaos_seed: Option<u64>) {
    let server_chaos = chaos_seed.map(|seed| {
        let mut plan = ChaosPlan::aggressive(seed);
        // Bound the teardown storm: enough fired faults to prove the
        // reconnect path, few enough that the request stream's coverage
        // of the experiment corpus survives.
        plan.max_faults_per_site = 12;
        Arc::new(ChaosInjector::new(plan))
    });
    // The engine side uses the same plan + retry headroom the chaos-soak
    // CI job proves byte-identical (aggressive rates, 8 retries).
    let engine_chaos = chaos_seed.map(|seed| {
        Arc::new(ChaosInjector::new(ChaosPlan::aggressive(
            seed.wrapping_add(1),
        )))
    });
    let (handle, join) = serve(ServeOptions {
        workers: 2,
        queue_depth: 16,
        shards,
        shard_base: Some(EngineOptions {
            jobs: 1,
            cache_dir: base.to_path_buf(),
            use_cache: true,
            resume: false,
            retries: if engine_chaos.is_some() { 8 } else { 0 },
            chaos: engine_chaos,
            ..EngineOptions::default()
        }),
        chaos: server_chaos,
        ..ServeOptions::default()
    });

    let client_chaos = chaos_seed.map(|seed| {
        let mut plan = ChaosPlan::quiet(seed.wrapping_add(2));
        plan.client_reset_permille = 200;
        plan.max_faults_per_site = 8;
        Arc::new(ChaosInjector::new(plan))
    });
    let outcome = run_soak(&SoakOptions {
        addr: handle.addr(),
        requests: 500,
        connections: 4,
        seed: 2024,
        pipeline_depth: 2,
        chaos: client_chaos,
        ..SoakOptions::default()
    })
    .expect("soak runs");
    assert_eq!(outcome.report.requests, 500);

    handle.shutdown();
    join.join().expect("no panic").expect("clean shutdown");
}

#[test]
fn chaos_sharded_soak_leaves_stores_byte_identical_to_fault_free_run() {
    let root = std::env::temp_dir().join(format!("rsls-load-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let clean_base = root.join("clean");
    let chaotic_base = root.join("chaotic");

    // Fault-free single-shard reference run.
    soak_against(&clean_base, 1, None);
    // Chaos-seeded 4-shard run: server teardown faults, engine store
    // faults (absorbed by retries), and client connection resets.
    soak_against(&chaotic_base, 4, Some(77));

    let clean = store_objects(std::slice::from_ref(&clean_base));
    let chaotic = store_objects(
        &(0..4)
            .map(|k| chaotic_base.join(format!("shard-{k}")))
            .collect::<Vec<_>>(),
    );

    assert!(!clean.is_empty(), "the soak computed experiments");
    let clean_names: Vec<&String> = clean.keys().collect();
    let chaotic_names: Vec<&String> = chaotic.keys().collect();
    assert_eq!(
        clean_names, chaotic_names,
        "same object set regardless of shard count and faults"
    );
    for (name, bytes) in &clean {
        assert_eq!(
            Some(bytes),
            chaotic.get(name),
            "object {name} must be byte-identical"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
