//! Persistent-connection HTTP/1.1 client for the soak harness.
//!
//! One [`Conn`] maps to one TCP connection to the server. Requests are
//! written with `Connection: keep-alive` and responses are framed with
//! the shared [`rsls_serve::http::parse_response`] parser, so the load
//! generator and the server agree byte-for-byte on message boundaries.
//! Reconnection policy lives in the soak driver; this layer only
//! reports whether the server asked to close.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rsls_chaos::{ChaosInjector, ChaosSite};
use rsls_serve::http::parse_response;

/// Per-request read/write deadline; a healthy local server answers in
/// microseconds, so hitting this means the run is wedged, not slow.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One framed response as observed by the load generator.
#[derive(Debug, Clone)]
pub struct FetchedResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercase names.
    pub headers: BTreeMap<String, String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl FetchedResponse {
    /// The `ETag` header, without surrounding quotes.
    pub fn etag(&self) -> Option<&str> {
        self.headers.get("etag").map(|v| v.trim_matches('"'))
    }

    /// True when the server signalled it will close this connection.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The `Retry-After` header parsed as whole seconds.
    pub fn retry_after_s(&self) -> Option<u64> {
        self.headers.get("retry-after")?.trim().parse().ok()
    }
}

/// A persistent keep-alive connection with buffered response reads.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<TcpStream>,
    peer: SocketAddr,
    /// Requests served over this connection so far; >1 proves reuse.
    requests: u64,
}

impl Conn {
    /// Opens a fresh connection to `addr`. This is the crate's only
    /// socket-creating call and is registered as the `client-reset`
    /// I/O site: when a chaos plan arms [`ChaosSite::ClientReset`],
    /// the freshly-opened connection is torn down immediately so the
    /// soak exercises its reconnect path on schedule.
    pub fn connect(addr: SocketAddr, chaos: Option<&Arc<ChaosInjector>>) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        if let Some(injector) = chaos {
            if injector.fire(ChaosSite::ClientReset, &format!("connect:{addr}")) {
                TcpStream::shutdown(&stream, std::net::Shutdown::Both)?;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: client reset on connect",
                ));
            }
        }
        Ok(Conn {
            reader: BufReader::new(stream),
            peer: addr,
            requests: 0,
        })
    }

    /// The server address this connection points at.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Requests completed over this connection.
    pub fn requests_served(&self) -> u64 {
        self.requests
    }

    /// Serializes one keep-alive GET for `path` with `extra` headers.
    fn encode_request(path: &str, extra: &[(String, String)]) -> Vec<u8> {
        let mut req =
            format!("GET {path} HTTP/1.1\r\nHost: rsls-load\r\nConnection: keep-alive\r\n");
        for (name, value) in extra {
            req.push_str(name);
            req.push_str(": ");
            req.push_str(value);
            req.push_str("\r\n");
        }
        req.push_str("\r\n");
        req.into_bytes()
    }

    /// Issues one GET and reads its response.
    pub fn request(
        &mut self,
        path: &str,
        extra: &[(String, String)],
    ) -> io::Result<FetchedResponse> {
        let wire = Conn::encode_request(path, extra);
        self.reader.get_mut().write_all(&wire)?;
        self.read_response()
    }

    /// Writes all `reqs` back-to-back, then reads the responses in
    /// order — exercising the server's pipelining path. The caller is
    /// responsible for only pipelining request classes the server
    /// answers without closing (a mid-pipeline close surfaces here as
    /// an I/O error on the truncated tail).
    pub fn pipeline(
        &mut self,
        reqs: &[(String, Vec<(String, String)>)],
    ) -> io::Result<Vec<FetchedResponse>> {
        let mut wire = Vec::new();
        for (path, extra) in reqs {
            wire.extend_from_slice(&Conn::encode_request(path, extra));
        }
        self.reader.get_mut().write_all(&wire)?;
        let mut responses = Vec::with_capacity(reqs.len());
        for _ in reqs {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    /// Frames one response off the wire.
    fn read_response(&mut self) -> io::Result<FetchedResponse> {
        let (status, headers, body) = parse_response(&mut self.reader)?;
        self.requests += 1;
        Ok(FetchedResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_serialize_with_keepalive_and_extras() {
        let wire = Conn::encode_request(
            "/reports/abc",
            &[("If-None-Match".to_string(), "\"abc\"".to_string())],
        );
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("GET /reports/abc HTTP/1.1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("If-None-Match: \"abc\"\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn fetched_response_helpers_read_canonical_headers() {
        let mut headers = BTreeMap::new();
        headers.insert("etag".to_string(), "\"deadbeef\"".to_string());
        headers.insert("connection".to_string(), "close".to_string());
        headers.insert("retry-after".to_string(), "2".to_string());
        let resp = FetchedResponse {
            status: 503,
            headers,
            body: Vec::new(),
        };
        assert_eq!(resp.etag(), Some("deadbeef"));
        assert!(resp.wants_close());
        assert_eq!(resp.retry_after_s(), Some(2));
    }
}
