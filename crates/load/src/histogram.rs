//! Log-bucketed latency histogram with integer-deterministic bounds.
//!
//! Quantiles are reported as the **upper bound of the bucket** holding
//! the target rank, so two runs observing the same multiset of
//! latencies report byte-identical quantiles regardless of arrival
//! order — the property that makes `BENCH_SERVE.json` comparable
//! across runs and machines without storing every sample.

/// Latencies above this saturate into the overflow bucket (120 s, µs).
const MAX_TRACKED_US: u64 = 120_000_000;

/// Deterministic bucket upper bounds: from 1 µs, each bound grows by
/// 25% (at least 1 µs) until [`MAX_TRACKED_US`] is covered — ~83
/// buckets, ≤ 25% relative quantile error by construction.
fn bucket_bounds() -> Vec<u64> {
    let mut bounds = Vec::with_capacity(96);
    let mut b = 1u64;
    while b < MAX_TRACKED_US {
        bounds.push(b);
        b = (b + 1).max(b + b / 4);
    }
    bounds.push(MAX_TRACKED_US);
    bounds
}

/// A mergeable log-bucketed histogram of request latencies in µs.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket upper bounds, ascending; `counts` has one extra overflow
    /// slot at the end.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        let bounds = bucket_bounds();
        let counts = vec![0; bounds.len() + 1];
        LatencyHistogram {
            bounds,
            counts,
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one observation.
    pub fn record_us(&mut self, us: u64) {
        let idx = match self.bounds.binary_search(&us) {
            Ok(i) => i,
            Err(i) => i, // first bound >= us; len() = overflow slot
        };
        let slot = idx.min(self.counts.len() - 1);
        self.counts[slot] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean observation, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket holding rank `ceil(q × count)` — deterministic for a
    /// given observation multiset. Returns 0 when empty; the overflow
    /// bucket reports the exact maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return match self.bounds.get(i) {
                    Some(&bound) => bound.min(self.max_us.max(1)),
                    None => self.max_us, // overflow bucket
                };
            }
        }
        self.max_us
    }

    /// Folds another histogram in (same bounds by construction).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Renders the histogram as a Prometheus text-format family
    /// (`<name>_bucket{le="…"}` cumulative counts plus `_sum`/`_count`),
    /// the `rsls_load_*` counterpart of the server's
    /// `rsls_serve_request_duration_seconds` family. Only non-empty
    /// buckets emit a line (the full ~83-bucket spread would dwarf the
    /// payload it describes).
    pub fn render_prometheus(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP {name} Client-observed request latency, µs.");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if n == 0 {
                continue;
            }
            if let Some(&bound) = self.bounds.get(i) {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum_us);
        let _ = writeln!(out, "{name}_count {}", self.count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_the_range() {
        let bounds = bucket_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.first(), Some(&1));
        assert_eq!(bounds.last(), Some(&MAX_TRACKED_US));
        assert!(bounds.len() < 128, "ring stays small: {}", bounds.len());
    }

    #[test]
    fn quantiles_are_order_independent() {
        let samples = [3u64, 700, 700, 15_000, 90, 90, 90, 2, 1_000_000, 45];
        let mut fwd = LatencyHistogram::new();
        let mut rev = LatencyHistogram::new();
        for &s in &samples {
            fwd.record_us(s);
        }
        for &s in samples.iter().rev() {
            rev.record_us(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(fwd.quantile_us(q), rev.quantile_us(q));
        }
        assert_eq!(fwd.max_us(), 1_000_000);
        assert_eq!(fwd.count(), samples.len() as u64);
    }

    #[test]
    fn quantile_brackets_the_true_value_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        // True median 500; the bucket bound is within 25% above it.
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile_us(0.999);
        assert!((999..=1250).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let us = (i * 37 + 11) % 100_000;
            if i % 2 == 0 {
                a.record_us(us);
            } else {
                b.record_us(us);
            }
            all.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean_us(), all.mean_us());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.quantile_us(q), all.quantile_us(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros_and_overflow_reports_max() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0);
        let mut h = LatencyHistogram::new();
        h.record_us(MAX_TRACKED_US * 2);
        assert_eq!(h.quantile_us(0.5), MAX_TRACKED_US * 2, "overflow = max");
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let mut h = LatencyHistogram::new();
        h.record_us(10);
        h.record_us(10);
        h.record_us(50_000);
        let text = h.render_prometheus("rsls_load_request_latency_us");
        assert!(text.contains("# TYPE rsls_load_request_latency_us histogram"));
        assert!(text.contains("rsls_load_request_latency_us_bucket{le=\"10\"} 2"));
        assert!(text.contains("rsls_load_request_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rsls_load_request_latency_us_count 3"));
    }
}
