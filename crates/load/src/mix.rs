//! Seed-deterministic request mix for the soak harness.
//!
//! Every decision the load generator makes — which request class to
//! issue next, which experiment to fetch, which digest to revalidate —
//! comes from a [`Rng`] derived from the run seed, so two soaks with
//! the same seed and server corpus replay the exact same request
//! stream per connection.

/// SplitMix64: tiny, fast, and statistically adequate for load mixes.
/// Each worker gets an independent stream via [`Rng::split`].
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// An RNG seeded directly from `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// A decorrelated per-stream RNG: the same `(seed, stream)` pair
    /// always yields the same sequence, and distinct streams never
    /// overlap in practice.
    pub fn split(seed: u64, stream: u64) -> Rng {
        let mut base = Rng::new(seed);
        let mut mixed = base.next_u64() ^ stream.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        // One extra scramble so stream 0 differs from the base sequence.
        mixed = mixed.wrapping_add(0x94d0_49bb_1331_11eb);
        Rng { state: mixed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, n)`; `n` must be nonzero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for
        // the small ranges used here, far below mix-weight resolution.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// The request classes a soak interleaves, mirroring the traffic the
/// service sees in production: cached experiment fetches, warehouse
/// queries, conditional report revalidations, deliberate cache-miss
/// storms, and health probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestClass {
    /// `GET /experiments/<id>` — hits the result cache / work queue.
    Experiment,
    /// `GET /query?...` — warehouse SQL over the object store.
    Query,
    /// Conditional `GET /reports/<sha>` with `If-None-Match` — the
    /// server's no-disk 304 fast path.
    Revalidate,
    /// `GET /reports/<bogus-sha>` — guaranteed 404s that churn
    /// connections (4xx closes) and bypass every cache.
    MissStorm,
    /// `GET /healthz` — the cheapest request the server answers.
    Health,
}

impl RequestClass {
    /// Stable lowercase label used in per-class counts.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Experiment => "experiment",
            RequestClass::Query => "query",
            RequestClass::Revalidate => "revalidate",
            RequestClass::MissStorm => "miss-storm",
            RequestClass::Health => "health",
        }
    }
}

/// Integer weights (per mille is overkill; sums are small) for each
/// request class. Defaults approximate a read-heavy dashboard workload
/// with a deliberate slice of cache-hostile traffic.
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    /// Weight of [`RequestClass::Experiment`].
    pub experiment: u32,
    /// Weight of [`RequestClass::Query`].
    pub query: u32,
    /// Weight of [`RequestClass::Revalidate`].
    pub revalidate: u32,
    /// Weight of [`RequestClass::MissStorm`].
    pub miss_storm: u32,
    /// Weight of [`RequestClass::Health`].
    pub health: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            experiment: 30,
            query: 20,
            revalidate: 25,
            miss_storm: 15,
            health: 10,
        }
    }
}

impl MixWeights {
    /// Sum of all weights (0 degenerates to health-only traffic).
    pub fn total(&self) -> u32 {
        self.experiment + self.query + self.revalidate + self.miss_storm + self.health
    }

    /// Draws a request class from this mix.
    pub fn sample(&self, rng: &mut Rng) -> RequestClass {
        let total = self.total();
        if total == 0 {
            return RequestClass::Health;
        }
        let mut roll = rng.gen_range(total as u64) as u32;
        for (class, weight) in [
            (RequestClass::Experiment, self.experiment),
            (RequestClass::Query, self.query),
            (RequestClass::Revalidate, self.revalidate),
            (RequestClass::MissStorm, self.miss_storm),
        ] {
            if roll < weight {
                return class;
            }
            roll -= weight;
        }
        RequestClass::Health
    }
}

/// A fully-specified request the client layer can serialize directly.
#[derive(Debug, Clone)]
pub struct PlannedRequest {
    /// Which traffic class produced this request.
    pub class: RequestClass,
    /// Request target, e.g. `/experiments/weak-scaling`.
    pub path: String,
    /// Extra headers beyond Host/Connection, as (name, value) pairs.
    pub headers: Vec<(String, String)>,
}

/// Canonical warehouse queries rotated by the `Query` class. These are
/// all answerable from the standard views, so responses are 200 (or
/// 404 when the lab endpoint is disabled) — never protocol errors.
const QUERIES: &[&str] = &[
    "/query?sql=select+count(*)+from+runs",
    "/query?sql=select+experiment,+count(*)+from+runs+group+by+experiment+order+by+experiment",
    "/query?sql=select+scheme,+runs,+avg_energy+from+schemes+order+by+scheme+limit+20",
];

/// Deterministic per-run request planner: turns RNG draws into
/// concrete paths against a known experiment corpus.
#[derive(Debug, Clone)]
pub struct RequestPlanner {
    weights: MixWeights,
    /// Sorted experiment ids fetched once from `/experiments`.
    experiments: Vec<String>,
    /// Digests learned from earlier responses, used for genuine
    /// revalidation; synthetic digests fill in until any are learned.
    etags: Vec<String>,
}

impl RequestPlanner {
    /// A planner over the server's experiment corpus (sorted for
    /// determinism regardless of listing order).
    pub fn new(weights: MixWeights, mut experiments: Vec<String>) -> RequestPlanner {
        experiments.sort();
        RequestPlanner {
            weights,
            experiments,
            etags: Vec::new(),
        }
    }

    /// Records a strong ETag observed on a response so later
    /// `Revalidate` draws can replay it and hit the 304 path.
    pub fn learn_etag(&mut self, etag: &str) {
        let trimmed = etag.trim_matches('"');
        if trimmed.len() == 64 && self.etags.len() < 64 && !self.etags.iter().any(|e| e == trimmed)
        {
            self.etags.push(trimmed.to_string());
        }
    }

    /// Draws the next request in the stream.
    pub fn next_request(&mut self, rng: &mut Rng) -> PlannedRequest {
        let class = self.weights.sample(rng);
        match class {
            RequestClass::Experiment => {
                let path = if self.experiments.is_empty() {
                    "/experiments".to_string()
                } else {
                    let i = rng.gen_range(self.experiments.len() as u64) as usize;
                    format!("/experiments/{}", self.experiments[i])
                };
                PlannedRequest {
                    class,
                    path,
                    headers: Vec::new(),
                }
            }
            RequestClass::Query => {
                let i = rng.gen_range(QUERIES.len() as u64) as usize;
                PlannedRequest {
                    class,
                    path: QUERIES[i].to_string(),
                    headers: Vec::new(),
                }
            }
            RequestClass::Revalidate => {
                let digest = if self.etags.is_empty() {
                    synthetic_digest(rng)
                } else {
                    let i = rng.gen_range(self.etags.len() as u64) as usize;
                    self.etags[i].clone()
                };
                PlannedRequest {
                    class,
                    path: format!("/reports/{digest}"),
                    headers: vec![("If-None-Match".to_string(), format!("\"{digest}\""))],
                }
            }
            RequestClass::MissStorm => PlannedRequest {
                class,
                path: format!("/reports/{}", synthetic_digest(rng)),
                headers: Vec::new(),
            },
            RequestClass::Health => PlannedRequest {
                class,
                path: "/healthz".to_string(),
                headers: Vec::new(),
            },
        }
    }
}

/// A well-formed 64-hex digest that (with overwhelming probability)
/// names no stored report.
fn synthetic_digest(rng: &mut Rng) -> String {
    let mut s = String::with_capacity(64);
    for _ in 0..4 {
        let word = rng.next_u64();
        s.push_str(&format!("{word:016x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let mut a1 = Rng::split(42, 0);
        let mut a2 = Rng::split(42, 0);
        let mut b = Rng::split(42, 1);
        let s1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(rng.gen_range(13) < 13);
        }
    }

    #[test]
    fn mix_sampling_tracks_the_weights() {
        let weights = MixWeights::default();
        let mut rng = Rng::new(99);
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for _ in 0..20_000 {
            *counts.entry(weights.sample(&mut rng).label()).or_default() += 1;
        }
        // Each class should land within a few points of its weight.
        let frac = |label: &str| counts[label] as f64 / 20_000.0;
        assert!((frac("experiment") - 0.30).abs() < 0.03);
        assert!((frac("query") - 0.20).abs() < 0.03);
        assert!((frac("revalidate") - 0.25).abs() < 0.03);
        assert!((frac("miss-storm") - 0.15).abs() < 0.03);
        assert!((frac("health") - 0.10).abs() < 0.03);
    }

    #[test]
    fn planner_replays_identically_for_a_seed() {
        let corpus = vec!["beta".to_string(), "alpha".to_string()];
        let mut p1 = RequestPlanner::new(MixWeights::default(), corpus.clone());
        let mut p2 = RequestPlanner::new(MixWeights::default(), corpus);
        let mut r1 = Rng::split(5, 3);
        let mut r2 = Rng::split(5, 3);
        for _ in 0..200 {
            let a = p1.next_request(&mut r1);
            let b = p2.next_request(&mut r2);
            assert_eq!(a.path, b.path);
            assert_eq!(a.headers, b.headers);
        }
    }

    #[test]
    fn revalidate_prefers_learned_etags() {
        let mut planner = RequestPlanner::new(
            MixWeights {
                experiment: 0,
                query: 0,
                revalidate: 1,
                miss_storm: 0,
                health: 0,
            },
            Vec::new(),
        );
        let digest = "ab".repeat(32);
        planner.learn_etag(&format!("\"{digest}\""));
        let mut rng = Rng::new(1);
        let req = planner.next_request(&mut rng);
        assert_eq!(req.path, format!("/reports/{digest}"));
        assert_eq!(req.headers[0].0, "If-None-Match");
    }

    #[test]
    fn miss_storm_digests_are_well_formed() {
        let mut rng = Rng::new(3);
        let d = synthetic_digest(&mut rng);
        assert_eq!(d.len(), 64);
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
