//! `rsls-load`: a seed-deterministic soak harness for the
//! `rsls-serve` event-loop service.
//!
//! The harness drives 10⁵–10⁶ requests over persistent keep-alive
//! connections from a reproducible client mix — cached experiment
//! fetches, warehouse `/query` traffic, conditional `/reports`
//! revalidations, deliberate cache-miss storms, and health probes —
//! and records client-observed latency in a log-bucketed histogram
//! whose quantiles are exact functions of the observed multiset
//! (see [`histogram::LatencyHistogram`]). The aggregated result is a
//! [`rsls_bench::ServeBenchReport`] serialized as canonical JSON
//! (`BENCH_SERVE.json`) and gated in CI by `rsls-bench compare-serve`.
//!
//! Determinism contract: the request *stream* per connection is a pure
//! function of `(seed, connection index, experiment corpus)` — see
//! [`mix`]. Timings are of course machine-dependent; the gate absorbs
//! that with floors and a ±20% band, while `protocol_errors` is pinned
//! at exactly zero on every machine.

#![warn(missing_docs)]

pub mod client;
pub mod histogram;
pub mod mix;
pub mod soak;

pub use client::{Conn, FetchedResponse};
pub use histogram::LatencyHistogram;
pub use mix::{MixWeights, PlannedRequest, RequestClass, RequestPlanner, Rng};
pub use soak::{discover_experiments, run_soak, SoakOptions, SoakOutcome};
