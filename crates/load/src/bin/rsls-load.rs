//! The `rsls-load` binary: soak a running `rsls-serve` instance.
//!
//! ```text
//! rsls-load soak --addr 127.0.0.1:8080 --requests 100000 --connections 8 --seed 1
//! rsls-load soak --addr 127.0.0.1:8080 --requests 10000 --rps 5000 --out BENCH_SERVE.json
//! rsls-load soak --addr 127.0.0.1:8080 --chaos-seed 7 --print-metrics
//! ```
//!
//! The soak replays a seed-deterministic client mix (experiment
//! fetches, warehouse queries, report revalidations, miss storms,
//! health probes) over persistent keep-alive connections, then writes
//! the aggregated report as canonical JSON — the `BENCH_SERVE.json`
//! that `rsls-bench compare-serve` gates in CI. `--chaos-seed` arms
//! client-side connection resets so the reconnect path is exercised on
//! a reproducible schedule; `--print-metrics` dumps the latency
//! histogram and per-class counts in Prometheus text format.

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Arc;

use rsls_chaos::{ChaosInjector, ChaosPlan};
use rsls_load::{run_soak, MixWeights, SoakOptions};

fn usage() -> ! {
    eprintln!(
        "usage: rsls-load soak [--addr <host:port>] [--requests <n>] [--connections <n>]\n\
         \x20                     [--seed <u64>] [--rps <n>] [--pipeline <depth>]\n\
         \x20                     [--chaos-seed <u64>] [--out <path>] [--print-metrics]\n\
         defaults: --addr 127.0.0.1:8080 --requests 100000 --connections 8 --seed 1 --pipeline 4"
    );
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: &mut usize, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else { usage() };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid value for {what}: {raw}");
            usage();
        }
    }
}

fn resolve(addr: &str) -> SocketAddr {
    match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(resolved) => resolved,
        None => {
            eprintln!("cannot resolve address: {addr}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("soak") {
        usage();
    }
    let mut addr = "127.0.0.1:8080".to_string();
    let mut opts = SoakOptions {
        pipeline_depth: 4,
        ..SoakOptions::default()
    };
    let mut chaos_seed: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut print_metrics = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "-a" => addr = parse_arg(&args, &mut i, "--addr"),
            "--requests" | "-n" => {
                opts.requests = parse_arg::<u64>(&args, &mut i, "--requests").max(1)
            }
            "--connections" | "-c" => {
                opts.connections = parse_arg::<usize>(&args, &mut i, "--connections").max(1)
            }
            "--seed" | "-s" => opts.seed = parse_arg(&args, &mut i, "--seed"),
            "--rps" => opts.open_loop_rps = Some(parse_arg::<u64>(&args, &mut i, "--rps").max(1)),
            "--pipeline" => {
                opts.pipeline_depth = parse_arg::<usize>(&args, &mut i, "--pipeline").max(1)
            }
            "--chaos-seed" => chaos_seed = Some(parse_arg(&args, &mut i, "--chaos-seed")),
            "--out" | "-o" => out = Some(parse_arg(&args, &mut i, "--out")),
            "--print-metrics" => print_metrics = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    opts.addr = resolve(&addr);
    opts.weights = MixWeights::default();
    opts.chaos = chaos_seed.map(|seed| {
        // Arm only the client-reset site: the soak's job is to prove the
        // reconnect path, not to garble its own request stream.
        let mut plan = ChaosPlan::quiet(seed);
        plan.client_reset_permille = 200;
        plan.max_faults_per_site = 64;
        Arc::new(ChaosInjector::new(plan))
    });

    eprintln!(
        "rsls-load: soaking {} with {} requests over {} connections (seed {}{}{})",
        opts.addr,
        opts.requests,
        opts.connections,
        opts.seed,
        opts.open_loop_rps
            .map_or(String::new(), |r| format!(", {r} rps")),
        if opts.chaos.is_some() {
            ", chaos armed"
        } else {
            ""
        },
    );

    let outcome = match run_soak(&opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("rsls-load: soak failed: {e}");
            std::process::exit(1);
        }
    };

    let report = &outcome.report;
    eprintln!(
        "rsls-load: {} requests, {:.0} rps, p50 {}µs p99 {}µs p999 {}µs max {}µs, \
         {} reconnects, {} retried 503s, {} protocol errors",
        report.requests,
        report.throughput_rps,
        report.latency.p50_us,
        report.latency.p99_us,
        report.latency.p999_us,
        report.latency.max_us,
        outcome.reconnects,
        outcome.retried_503,
        report.protocol_errors,
    );
    for (status, count) in &outcome.status_counts {
        eprintln!("rsls-load:   status {status}: {count}");
    }
    for (class, count) in &outcome.class_counts {
        eprintln!("rsls-load:   class {class}: {count}");
    }

    if print_metrics {
        print!(
            "{}",
            outcome
                .histogram
                .render_prometheus("rsls_load_request_latency_us")
        );
        for (class, count) in &outcome.class_counts {
            println!("rsls_load_requests_total{{class=\"{class}\"}} {count}");
        }
        println!("rsls_load_reconnects_total {}", outcome.reconnects);
        println!("rsls_load_protocol_errors_total {}", report.protocol_errors);
    }

    let json = match serde_json::to_string_pretty(report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("rsls-load: serializing report: {e}");
            std::process::exit(1);
        }
    };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("rsls-load: writing {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("rsls-load: wrote {}", path.display());
        }
        None => println!("{json}"),
    }

    if report.protocol_errors > 0 {
        std::process::exit(1);
    }
}
