//! The soak campaign: many persistent connections replaying a
//! seed-deterministic request mix against a running server.
//!
//! Each connection index gets its own RNG stream split from the run
//! seed, so the request sequence per connection is a pure function of
//! `(seed, connection, corpus)` — rerunning with the same seed replays
//! the same traffic byte-for-byte. Workers fan out over the vendored
//! rayon pool with an order-preserving merge, keeping the aggregated
//! report deterministic too (histograms merge commutatively; counters
//! merge in index order).

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rsls_bench::{ServeBenchReport, ServeLatency};
use rsls_chaos::ChaosInjector;

use crate::client::{Conn, FetchedResponse};
use crate::histogram::LatencyHistogram;
use crate::mix::{MixWeights, PlannedRequest, RequestClass, RequestPlanner, Rng};

/// Schema version stamped into [`ServeBenchReport`].
const REPORT_VERSION: u32 = 1;
/// Reconnect attempts per request before declaring a protocol error.
const CONNECT_ATTEMPTS: usize = 4;
/// Retries when the server sheds load with `503`.
const RETRY_503: usize = 3;
/// Cap on honoring `Retry-After` so a soak never stalls for seconds.
const RETRY_AFTER_CAP: Duration = Duration::from_millis(100);

/// Soak configuration.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Total requests across all connections.
    pub requests: u64,
    /// Persistent connections (one deterministic stream each).
    pub connections: usize,
    /// Run seed; same seed → same per-connection request sequence.
    pub seed: u64,
    /// When set, pace each connection so the fleet targets this many
    /// requests per second (paced closed loop: a connection never has
    /// more than one request outstanding, but sleeps to hold the rate).
    pub open_loop_rps: Option<u64>,
    /// When > 1, health-probe draws are issued as pipelined bursts of
    /// this depth, exercising the server's pipelining path.
    pub pipeline_depth: usize,
    /// Request-class mix.
    pub weights: MixWeights,
    /// Client-side fault plan (fires the `client-reset` I/O site).
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            requests: 100_000,
            connections: 8,
            seed: 1,
            open_loop_rps: None,
            pipeline_depth: 1,
            weights: MixWeights::default(),
            chaos: None,
        }
    }
}

/// Everything a finished soak learned, beyond the gateable report.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The canonical report (`BENCH_SERVE.json` payload).
    pub report: ServeBenchReport,
    /// Requests per traffic class.
    pub class_counts: BTreeMap<&'static str, u64>,
    /// Responses per status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Connections re-established mid-run (4xx closes, chaos resets).
    pub reconnects: u64,
    /// Requests that retried through at least one `503`.
    pub retried_503: u64,
    /// The merged latency histogram (for `--print-metrics`).
    pub histogram: LatencyHistogram,
}

/// Per-worker tallies, merged in connection-index order.
struct WorkerStats {
    hist: LatencyHistogram,
    class_counts: BTreeMap<&'static str, u64>,
    status_counts: BTreeMap<u16, u64>,
    requests: u64,
    /// Successful connection opens; everything past the first is a
    /// reconnect (4xx close, server teardown, chaos reset).
    opens: u64,
    retried_503: u64,
    protocol_errors: u64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            hist: LatencyHistogram::new(),
            class_counts: BTreeMap::new(),
            status_counts: BTreeMap::new(),
            requests: 0,
            opens: 0,
            retried_503: 0,
            protocol_errors: 0,
        }
    }
}

/// Fetches the `/experiments` listing once and extracts the ids, so
/// every worker plans against the same sorted corpus.
pub fn discover_experiments(
    addr: SocketAddr,
    chaos: Option<&Arc<ChaosInjector>>,
) -> io::Result<Vec<String>> {
    let mut last_err = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match discover_once(addr, chaos) {
            Ok(ids) => return Ok(ids),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(1 + attempt as u64));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("discovery never ran")))
}

/// One discovery attempt (chaos resets make the retry loop above earn
/// its keep).
fn discover_once(addr: SocketAddr, chaos: Option<&Arc<ChaosInjector>>) -> io::Result<Vec<String>> {
    let mut conn = Conn::connect(addr, chaos)?;
    let resp = conn.request("/experiments", &[])?;
    if resp.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("listing returned {}", resp.status),
        ));
    }
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    Ok(parse_listing_ids(&body))
}

/// Pulls `"id":"…"` values out of the listing JSON. The listing is
/// produced by our own canonical serializer, so a targeted scan is
/// exact without needing a general JSON deserializer.
fn parse_listing_ids(body: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = body;
    while let Some(at) = rest.find("\"id\":\"") {
        let tail = &rest[at + 6..];
        match tail.find('"') {
            Some(end) => {
                ids.push(tail[..end].to_string());
                rest = &tail[end..];
            }
            None => break,
        }
    }
    ids.sort();
    ids.dedup();
    ids
}

/// Runs the soak to completion and aggregates the outcome.
///
/// Transport failures that survive [`CONNECT_ATTEMPTS`] reconnects, and
/// any `5xx` other than a well-formed `503`, count as protocol errors —
/// the quantity the serve gate pins at exactly zero. Plain `4xx`
/// responses are expected traffic (miss storms exist to generate them)
/// and only show up in `status_counts`.
pub fn run_soak(opts: &SoakOptions) -> io::Result<SoakOutcome> {
    let connections = opts.connections.max(1);
    let corpus = discover_experiments(opts.addr, opts.chaos.as_ref())?;
    let interval = opts.open_loop_rps.filter(|&rps| rps > 0).map(|rps| {
        Duration::from_micros((connections as u64).saturating_mul(1_000_000) / rps.max(1))
    });

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(connections)
        .build()
        .map_err(|e| io::Error::other(format!("thread pool: {e}")))?;

    let started = Instant::now();
    let per_worker: Vec<WorkerStats> = pool.install(|| {
        rayon::run_indexed(connections, |w| {
            let share = opts.requests / connections as u64
                + u64::from((w as u64) < opts.requests % connections as u64);
            run_connection(opts, &corpus, w as u64, share, interval)
        })
    });
    let elapsed = started.elapsed();

    let mut stats = WorkerStats::new();
    let mut reconnects = 0u64;
    for ws in &per_worker {
        stats.hist.merge(&ws.hist);
        for (k, v) in &ws.class_counts {
            *stats.class_counts.entry(k).or_default() += v;
        }
        for (k, v) in &ws.status_counts {
            *stats.status_counts.entry(*k).or_default() += v;
        }
        stats.requests += ws.requests;
        reconnects += ws.opens.saturating_sub(1);
        stats.retried_503 += ws.retried_503;
        stats.protocol_errors += ws.protocol_errors;
    }

    let secs = elapsed.as_secs_f64().max(1e-9);
    let report = ServeBenchReport {
        version: REPORT_VERSION,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        requests: stats.requests,
        connections,
        protocol_errors: stats.protocol_errors,
        throughput_rps: stats.requests as f64 / secs,
        latency: ServeLatency {
            p50_us: stats.hist.quantile_us(0.50),
            p99_us: stats.hist.quantile_us(0.99),
            p999_us: stats.hist.quantile_us(0.999),
            max_us: stats.hist.max_us(),
            mean_us: stats.hist.mean_us(),
        },
    };

    Ok(SoakOutcome {
        report,
        class_counts: stats.class_counts,
        status_counts: stats.status_counts,
        reconnects,
        retried_503: stats.retried_503,
        histogram: stats.hist,
    })
}

/// Drives one connection worker: `share` requests from RNG stream `w`.
fn run_connection(
    opts: &SoakOptions,
    corpus: &[String],
    w: u64,
    share: u64,
    interval: Option<Duration>,
) -> WorkerStats {
    let mut stats = WorkerStats::new();
    let mut rng = Rng::split(opts.seed, w);
    let mut planner = RequestPlanner::new(opts.weights, corpus.to_vec());
    let mut conn: Option<Conn> = None;
    let started = Instant::now();

    while stats.requests < share {
        if let Some(interval) = interval {
            let due = interval.saturating_mul(stats.requests as u32);
            let now = started.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            }
        }

        let planned = planner.next_request(&mut rng);
        let remaining = share - stats.requests;
        if planned.class == RequestClass::Health && opts.pipeline_depth > 1 && remaining > 1 {
            let depth = (opts.pipeline_depth as u64).min(remaining) as usize;
            issue_pipelined_health(opts, &mut conn, depth, &mut stats);
        } else {
            issue_one(opts, &mut conn, &planned, &mut planner, &mut stats);
        }
    }
    stats
}

/// Issues one request with reconnect and `503` retries, recording its
/// round-trip latency (reconnect time included — that is what a real
/// client pays).
fn issue_one(
    opts: &SoakOptions,
    conn: &mut Option<Conn>,
    planned: &PlannedRequest,
    planner: &mut RequestPlanner,
    stats: &mut WorkerStats,
) {
    let start = Instant::now();
    let mut shed_retries = 0usize;
    loop {
        let resp = match fetch_once(opts, conn, &planned.path, &planned.headers, stats) {
            Ok(resp) => resp,
            Err(_) => {
                stats.requests += 1;
                stats.protocol_errors += 1;
                *stats.class_counts.entry(planned.class.label()).or_default() += 1;
                return;
            }
        };
        if resp.status == 503 && shed_retries < RETRY_503 {
            shed_retries += 1;
            let wait = resp.retry_after_s().map_or(RETRY_AFTER_CAP, |s| {
                Duration::from_secs(s).min(RETRY_AFTER_CAP)
            });
            std::thread::sleep(wait);
            continue;
        }
        record_response(planned.class, &resp, start.elapsed(), stats);
        if shed_retries > 0 {
            stats.retried_503 += 1;
        }
        if let Some(etag) = resp.etag() {
            planner.learn_etag(etag);
        }
        if resp.wants_close() || resp.status >= 400 {
            *conn = None;
        }
        return;
    }
}

/// Issues a pipelined burst of health probes, all written before any
/// response is read; responses must come back in order.
fn issue_pipelined_health(
    opts: &SoakOptions,
    conn: &mut Option<Conn>,
    depth: usize,
    stats: &mut WorkerStats,
) {
    let reqs: Vec<(String, Vec<(String, String)>)> = (0..depth)
        .map(|_| ("/healthz".to_string(), Vec::new()))
        .collect();
    let start = Instant::now();
    let responses = (|| -> io::Result<Vec<FetchedResponse>> {
        if conn.is_none() {
            *conn = Some(connect_with_retry(opts, stats)?);
        }
        match conn.as_mut() {
            Some(c) => c.pipeline(&reqs),
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "no connection")),
        }
    })();
    match responses {
        Ok(responses) => {
            let elapsed = start.elapsed();
            for resp in &responses {
                record_response(RequestClass::Health, resp, elapsed, stats);
                if resp.wants_close() || resp.status >= 400 {
                    *conn = None;
                }
            }
        }
        Err(_) => {
            // The whole burst is unaccounted for; charge every slot.
            *conn = None;
            stats.requests += depth as u64;
            stats.protocol_errors += depth as u64;
            *stats
                .class_counts
                .entry(RequestClass::Health.label())
                .or_default() += depth as u64;
        }
    }
}

/// One transport attempt with reconnect-on-failure; errors only after
/// [`CONNECT_ATTEMPTS`] consecutive failures.
fn fetch_once(
    opts: &SoakOptions,
    conn: &mut Option<Conn>,
    path: &str,
    headers: &[(String, String)],
    stats: &mut WorkerStats,
) -> io::Result<FetchedResponse> {
    let mut last_err = None;
    for _ in 0..CONNECT_ATTEMPTS {
        if conn.is_none() {
            match connect_with_retry(opts, stats) {
                Ok(c) => *conn = Some(c),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
        }
        if let Some(c) = conn.as_mut() {
            match c.request(path, headers) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Dead connection (server closed after a 4xx, or a
                    // chaos reset): drop it and try a fresh one.
                    *conn = None;
                    last_err = Some(e);
                }
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no attempt made")))
}

/// Connects with a short bounded retry (chaos resets are expected).
fn connect_with_retry(opts: &SoakOptions, stats: &mut WorkerStats) -> io::Result<Conn> {
    let mut last_err = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match Conn::connect(opts.addr, opts.chaos.as_ref()) {
            Ok(conn) => {
                stats.opens += 1;
                return Ok(conn);
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(1 + attempt as u64));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("connect never ran")))
}

/// Tallies one completed response.
fn record_response(
    class: RequestClass,
    resp: &FetchedResponse,
    elapsed: Duration,
    stats: &mut WorkerStats,
) {
    stats.requests += 1;
    stats
        .hist
        .record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    *stats.class_counts.entry(class.label()).or_default() += 1;
    *stats.status_counts.entry(resp.status).or_default() += 1;
    if resp.status >= 500 && resp.status != 503 {
        stats.protocol_errors += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_ids_parse_sorted_and_deduped() {
        let body = r#"[{"id":"zeta","description":"z"},{"id":"alpha","description":"a"},{"id":"alpha","description":"dup"}]"#;
        assert_eq!(parse_listing_ids(body), vec!["alpha", "zeta"]);
        assert!(parse_listing_ids("[]").is_empty());
    }

    #[test]
    fn request_shares_cover_the_total_exactly() {
        let requests = 100_003u64;
        let connections = 8u64;
        let total: u64 = (0..connections)
            .map(|w| requests / connections + u64::from(w < requests % connections))
            .sum();
        assert_eq!(total, requests);
    }

    #[test]
    fn default_options_are_sane() {
        let opts = SoakOptions::default();
        assert_eq!(opts.requests, 100_000);
        assert!(opts.connections >= 1);
        assert_eq!(opts.pipeline_depth, 1);
        assert!(opts.chaos.is_none());
    }
}
