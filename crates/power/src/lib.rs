#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
//! Power, DVFS, and energy-accounting substrate.
//!
//! Replaces the paper's RAPL measurements and CPUfreq control with a
//! calibrated analytical model (DESIGN.md, substitution table):
//!
//! * [`FreqTable`] — the DVFS frequency ladder (default 1.2–2.3 GHz in
//!   0.1 GHz steps, the paper's Xeon E5-2670v3),
//! * [`Governor`] — `performance` / `powersave` / `ondemand` / `userspace`
//!   CPUfreq governors,
//! * [`PowerModel`] — per-core power as a function of activity state and
//!   frequency, calibrated so the paper's observed node-level ratios hold
//!   (busy-wait node at 0.75× of compute power; f_min-throttled node at
//!   0.45×; see §4.2),
//! * [`EnergyMeter`] — RAPL-style energy accounting over virtual time,
//!   with a power trace for profile plots (Figure 7a),
//! * [`PowerCap`] — pick the highest frequency that fits a node power
//!   budget.

pub mod cap;
pub mod freq;
pub mod governor;
pub mod meter;
pub mod model;
pub mod state;

pub use cap::PowerCap;
pub use freq::FreqTable;
pub use governor::Governor;
pub use meter::{EnergyMeter, PowerSample, RaplCounter};
pub use model::{PowerModel, PowerModelConfig};
pub use state::CoreState;
