//! Core activity states for power accounting.

use serde::{Deserialize, Serialize};

/// What a core is doing, from the power model's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreState {
    /// Executing application floating-point work (SpMV, BLAS-1,
    /// factorization, reconstruction).
    Compute,
    /// Spinning in the MPI progress engine waiting for a peer — what the
    /// paper's "other 23 cores" do during reconstruction when no DVFS
    /// scheduling is applied (§4.2: node at 0.75× of compute power).
    BusyWait,
    /// Stalled on storage traffic during checkpoint/restart ("CPUs are not
    /// highly utilized during checkpointing", §3.2).
    StorageWait,
    /// Halted in a C-state (deep idle).
    Idle,
}

impl CoreState {
    /// All states, for iteration/reporting.
    pub const ALL: [CoreState; 4] = [
        CoreState::Compute,
        CoreState::BusyWait,
        CoreState::StorageWait,
        CoreState::Idle,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_are_distinct() {
        for (i, a) in CoreState::ALL.iter().enumerate() {
            for b in CoreState::ALL.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
