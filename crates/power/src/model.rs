//! Per-core power model calibrated to the paper's observations.

use serde::{Deserialize, Serialize};

use crate::{CoreState, FreqTable};

/// Calibration constants of the power model.
///
/// Each active state splits into a static part (leakage + uncore share,
/// frequency-independent) and a dynamic part scaling as `(f/f_max)³`
/// (the classical `C·f·V²` law with voltage roughly linear in frequency).
///
/// The defaults are calibrated so the paper's §4.2 node-level ratios hold
/// on a 24-core node:
///
/// * all cores computing at f_max → node power `24 · p_active_max` (the 1×
///   reference),
/// * 1 core computing + 23 busy-waiting at f_max → `0.75×` the reference,
/// * 1 core computing + 23 busy-waiting at f_min (1.2/2.3 GHz) → `0.45×`.
///
/// Solving those two busy-wait points gives static ≈ 0.385 and dynamic ≈
/// 0.354 of `p_active_max`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModelConfig {
    /// Power of one core computing at the nominal (max) frequency, watts.
    /// 95 W TDP per 12-core socket ≈ 7.9 W per core; rounded to 8.
    pub p_active_max_w: f64,
    /// Static fraction of compute power (does not scale with frequency).
    pub compute_static_frac: f64,
    /// Static fraction of busy-wait power.
    pub busywait_static_frac: f64,
    /// Dynamic fraction of busy-wait power (at f_max the busy-wait core
    /// draws `static + dynamic` of `p_active_max_w`).
    pub busywait_dynamic_frac: f64,
    /// Power of a core stalled on storage traffic, as a fraction of
    /// `p_active_max_w` (frequency-insensitive: the core is in the memory
    /// or I/O subsystem's hands).
    pub storage_wait_frac: f64,
    /// Power of a halted (C-state) core, fraction of `p_active_max_w`.
    pub idle_frac: f64,
    /// The DVFS ladder.
    pub freq_table: FreqTable,
    /// Frequency-sensitivity exponent γ of *execution time*:
    /// `time ∝ (f_max/f)^γ`. CG is memory-bound, so γ < 1; γ = 0 would be
    /// fully memory-bound, γ = 1 fully compute-bound.
    pub time_freq_exponent: f64,
    /// Energy the storage subsystem itself (controllers, links, media)
    /// draws per byte of checkpoint traffic, joules/byte — on top of the
    /// cores' `StorageWait` draw, which only covers the CPU side of a
    /// checkpoint. ~5 nJ/B is disk-array-class; this is the knob the
    /// CR-LC stored-bytes accounting trades against reconvergence.
    pub storage_energy_per_byte_j: f64,
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        PowerModelConfig {
            p_active_max_w: 8.0,
            compute_static_frac: 0.30,
            busywait_static_frac: 0.385,
            busywait_dynamic_frac: 0.354,
            storage_wait_frac: 0.70,
            idle_frac: 0.15,
            freq_table: FreqTable::default(),
            time_freq_exponent: 0.5,
            storage_energy_per_byte_j: 5.0e-9,
        }
    }
}

/// Evaluates core power for (state, frequency) pairs.
///
/// # Example
///
/// ```
/// use rsls_power::{CoreState, PowerModel};
///
/// let model = PowerModel::default();
/// let fmax = model.freq_table().max();
/// let fmin = model.freq_table().min();
/// // The §4.2 calibration: a 24-core node during reconstruction draws
/// // 0.75x of compute power without DVFS, 0.45x with it.
/// let full = model.group_power(&[(CoreState::Compute, fmax, 24)]);
/// let plain = model.group_power(&[
///     (CoreState::Compute, fmax, 1),
///     (CoreState::BusyWait, fmax, 23),
/// ]);
/// let dvfs = model.group_power(&[
///     (CoreState::Compute, fmax, 1),
///     (CoreState::BusyWait, fmin, 23),
/// ]);
/// assert!((plain / full - 0.75).abs() < 0.01);
/// assert!((dvfs / full - 0.45).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cfg: PowerModelConfig,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(PowerModelConfig::default())
    }
}

impl PowerModel {
    /// Builds the model from calibration constants.
    pub fn new(cfg: PowerModelConfig) -> Self {
        PowerModel { cfg }
    }

    /// The calibration constants.
    pub fn config(&self) -> &PowerModelConfig {
        &self.cfg
    }

    /// The DVFS ladder.
    pub fn freq_table(&self) -> &FreqTable {
        &self.cfg.freq_table
    }

    /// Power in watts of one core in `state` at frequency `f_ghz`.
    pub fn core_power(&self, state: CoreState, f_ghz: f64) -> f64 {
        let fmax = self.cfg.freq_table.max();
        let cube = (f_ghz / fmax).powi(3);
        let p = self.cfg.p_active_max_w;
        match state {
            CoreState::Compute => {
                p * (self.cfg.compute_static_frac + (1.0 - self.cfg.compute_static_frac) * cube)
            }
            CoreState::BusyWait => {
                p * (self.cfg.busywait_static_frac + self.cfg.busywait_dynamic_frac * cube)
            }
            CoreState::StorageWait => p * self.cfg.storage_wait_frac,
            CoreState::Idle => p * self.cfg.idle_frac,
        }
    }

    /// Total power of a mixed group of cores:
    /// `Σ count · core_power(state, f)`.
    pub fn group_power(&self, groups: &[(CoreState, f64, usize)]) -> f64 {
        groups
            .iter()
            .map(|&(s, f, n)| self.core_power(s, f) * n as f64)
            .sum()
    }

    /// Relative execution-speed factor at frequency `f_ghz`
    /// (`1.0` at f_max): `(f/f_max)^γ`.
    pub fn speed_factor(&self, f_ghz: f64) -> f64 {
        (f_ghz / self.cfg.freq_table.max()).powf(self.cfg.time_freq_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_power_at_fmax_is_nominal() {
        let m = PowerModel::default();
        let p = m.core_power(CoreState::Compute, m.freq_table().max());
        assert!((p - m.config().p_active_max_w).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_node_ratio_without_dvfs_is_075() {
        // 1 compute + 23 busy-wait at f_max vs 24 compute at f_max (§4.2).
        let m = PowerModel::default();
        let fmax = m.freq_table().max();
        let full = m.group_power(&[(CoreState::Compute, fmax, 24)]);
        let recon = m.group_power(&[
            (CoreState::Compute, fmax, 1),
            (CoreState::BusyWait, fmax, 23),
        ]);
        let ratio = recon / full;
        assert!((ratio - 0.75).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn reconstruction_node_ratio_with_dvfs_is_045() {
        // 1 compute at f_max + 23 busy-wait at f_min (§4.2, LI-DVFS).
        let m = PowerModel::default();
        let (fmin, fmax) = (m.freq_table().min(), m.freq_table().max());
        let full = m.group_power(&[(CoreState::Compute, fmax, 24)]);
        let recon = m.group_power(&[
            (CoreState::Compute, fmax, 1),
            (CoreState::BusyWait, fmin, 23),
        ]);
        let ratio = recon / full;
        assert!((ratio - 0.45).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn dvfs_saves_about_40_percent_during_reconstruction() {
        // §4.2 / Figure 7a: LI-DVFS reduces construction-phase power by ~39-40%.
        let m = PowerModel::default();
        let (fmin, fmax) = (m.freq_table().min(), m.freq_table().max());
        let plain = m.group_power(&[
            (CoreState::Compute, fmax, 1),
            (CoreState::BusyWait, fmax, 23),
        ]);
        let dvfs = m.group_power(&[
            (CoreState::Compute, fmax, 1),
            (CoreState::BusyWait, fmin, 23),
        ]);
        let saving = 1.0 - dvfs / plain;
        assert!((saving - 0.40).abs() < 0.02, "saving = {saving}");
    }

    #[test]
    fn power_is_monotone_in_frequency() {
        let m = PowerModel::default();
        for pair in m.freq_table().levels().windows(2) {
            assert!(
                m.core_power(CoreState::Compute, pair[0])
                    < m.core_power(CoreState::Compute, pair[1])
            );
            assert!(
                m.core_power(CoreState::BusyWait, pair[0])
                    < m.core_power(CoreState::BusyWait, pair[1])
            );
        }
    }

    #[test]
    fn idle_is_the_cheapest_state() {
        let m = PowerModel::default();
        let f = m.freq_table().min();
        let idle = m.core_power(CoreState::Idle, f);
        for s in [
            CoreState::Compute,
            CoreState::BusyWait,
            CoreState::StorageWait,
        ] {
            assert!(idle < m.core_power(s, f));
        }
    }

    #[test]
    fn speed_factor_is_one_at_fmax_and_below_one_elsewhere() {
        let m = PowerModel::default();
        assert!((m.speed_factor(m.freq_table().max()) - 1.0).abs() < 1e-12);
        let s = m.speed_factor(m.freq_table().min());
        assert!(s > 0.0 && s < 1.0);
        // γ = 0.5: speed at 1.2/2.3 GHz ≈ sqrt(0.52) ≈ 0.72.
        assert!((s - (1.2f64 / 2.3).sqrt()).abs() < 1e-12);
    }
}
