//! RAPL-style energy metering over virtual time.

use serde::{Deserialize, Serialize};

use crate::{CoreState, PowerModel};

/// One entry of the recorded power profile: the cluster drew `watts`
/// between `t0` and `t1` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Segment start, seconds.
    pub t0: f64,
    /// Segment end, seconds.
    pub t1: f64,
    /// Average power over the segment, watts.
    pub watts: f64,
}

/// Integrates power over virtual-time segments and records the profile.
///
/// The resilient-solver driver reports each phase of the run ("all N cores
/// computing at 2.3 GHz from t₀ to t₁", "1 core reconstructing + N−1
/// busy-waiting at 1.2 GHz", ...); the meter converts state mixes to watts
/// through the [`PowerModel`], accumulates joules, and keeps the piecewise
/// power profile that reproduces Figure 7a.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: PowerModel,
    joules: f64,
    samples: Vec<PowerSample>,
    last_t: f64,
}

impl EnergyMeter {
    /// A meter starting at virtual time zero.
    pub fn new(model: PowerModel) -> Self {
        EnergyMeter {
            model,
            joules: 0.0,
            samples: Vec::new(),
            last_t: 0.0,
        }
    }

    /// The underlying power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Accounts the segment `[t0, t1)` during which the cluster's cores
    /// were distributed as `groups` (`(state, freq_ghz, count)` triples).
    ///
    /// Segments must be reported in order; zero-length segments are
    /// ignored.
    ///
    /// # Panics
    /// Panics if `t1 < t0` or the segment overlaps an earlier one.
    pub fn account(&mut self, t0: f64, t1: f64, groups: &[(CoreState, f64, usize)]) {
        assert!(t1 >= t0, "segment must not be reversed: {t0}..{t1}");
        assert!(
            t0 >= self.last_t - 1e-9,
            "segment {t0}..{t1} overlaps earlier accounting up to {}",
            self.last_t
        );
        if t1 == t0 {
            return;
        }
        let watts = self.model.group_power(groups);
        self.joules += watts * (t1 - t0);
        // Merge adjacent equal-power segments to keep the profile compact.
        if let Some(last) = self.samples.last_mut() {
            if (last.watts - watts).abs() < 1e-9 && (last.t1 - t0).abs() < 1e-9 {
                last.t1 = t1;
                self.last_t = t1;
                return;
            }
        }
        self.samples.push(PowerSample { t0, t1, watts });
        self.last_t = t1;
    }

    /// Accounts the storage subsystem's own energy for `bytes` of
    /// checkpoint traffic (writes or restore reads), at the model's
    /// joules-per-byte rate.
    ///
    /// Storage energy is not tied to a time segment — the cores' power
    /// during the transfer is accounted separately as `StorageWait` — so
    /// it adds joules without touching the power profile (it shows up in
    /// the run's average power, as a shared storage tier's draw would).
    pub fn account_storage_bytes(&mut self, bytes: u64) {
        self.joules += bytes as f64 * self.model.config().storage_energy_per_byte_j;
    }

    /// Total accumulated energy, joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Virtual time up to which energy has been accounted.
    pub fn accounted_until(&self) -> f64 {
        self.last_t
    }

    /// Average power over everything accounted so far, watts.
    pub fn average_power(&self) -> f64 {
        let span: f64 = self.samples.iter().map(|s| s.t1 - s.t0).sum();
        if span == 0.0 {
            0.0
        } else {
            self.joules / span
        }
    }

    /// The recorded piecewise power profile.
    pub fn profile(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Resamples the profile at fixed `dt` intervals — convenient for
    /// plotting Figure 7a-style traces.
    pub fn resample(&self, dt: f64) -> Vec<(f64, f64)> {
        assert!(dt > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut i = 0;
        while t < self.last_t && i < self.samples.len() {
            let s = &self.samples[i];
            if t < s.t0 {
                // Unaccounted gap (shouldn't happen with a well-behaved
                // driver); emit zero power.
                out.push((t, 0.0));
                t += dt;
                continue;
            }
            if t >= s.t1 {
                i += 1;
                continue;
            }
            out.push((t, s.watts));
            t += dt;
        }
        out
    }
}

/// An emulated RAPL MSR energy counter: microjoules stored in a 32-bit
/// register that wraps around, exactly like `MSR_PKG_ENERGY_STATUS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RaplCounter {
    total_uj: u64,
}

impl RaplCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        RaplCounter::default()
    }

    /// Adds `joules` of consumed energy.
    pub fn add_joules(&mut self, joules: f64) {
        assert!(joules >= 0.0, "energy cannot decrease");
        self.total_uj += (joules * 1e6).round() as u64;
    }

    /// Current register value: microjoules modulo 2³² (the reader must
    /// handle wraparound, as with real RAPL).
    pub fn read_uj(&self) -> u32 {
        (self.total_uj & 0xFFFF_FFFF) as u32
    }

    /// Total microjoules without wraparound (ground truth for tests).
    pub fn total_uj(&self) -> u64 {
        self.total_uj
    }

    /// Computes the energy delta between two register reads, accounting
    /// for at most one wraparound.
    pub fn delta_uj(before: u32, after: u32) -> u64 {
        if after >= before {
            (after - before) as u64
        } else {
            (1u64 << 32) - before as u64 + after as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(PowerModel::default())
    }

    #[test]
    fn energy_is_power_times_time() {
        let mut m = meter();
        let fmax = m.model().freq_table().max();
        let watts = m.model().core_power(CoreState::Compute, fmax);
        m.account(0.0, 10.0, &[(CoreState::Compute, fmax, 1)]);
        assert!((m.joules() - watts * 10.0).abs() < 1e-9);
        assert!((m.average_power() - watts).abs() < 1e-9);
    }

    #[test]
    fn adjacent_equal_segments_merge() {
        let mut m = meter();
        let fmax = m.model().freq_table().max();
        m.account(0.0, 1.0, &[(CoreState::Compute, fmax, 4)]);
        m.account(1.0, 2.0, &[(CoreState::Compute, fmax, 4)]);
        assert_eq!(m.profile().len(), 1);
        assert_eq!(m.profile()[0].t1, 2.0);
    }

    #[test]
    fn different_power_creates_new_segment() {
        let mut m = meter();
        let ft = m.model().freq_table().clone();
        m.account(0.0, 1.0, &[(CoreState::Compute, ft.max(), 4)]);
        m.account(1.0, 2.0, &[(CoreState::BusyWait, ft.min(), 4)]);
        assert_eq!(m.profile().len(), 2);
        assert!(m.profile()[0].watts > m.profile()[1].watts);
    }

    #[test]
    #[should_panic]
    fn overlapping_segments_panic() {
        let mut m = meter();
        let f = m.model().freq_table().max();
        m.account(0.0, 2.0, &[(CoreState::Compute, f, 1)]);
        m.account(1.0, 3.0, &[(CoreState::Compute, f, 1)]);
    }

    #[test]
    fn resample_produces_fixed_step_series() {
        let mut m = meter();
        let f = m.model().freq_table().max();
        m.account(0.0, 1.0, &[(CoreState::Compute, f, 2)]);
        m.account(1.0, 2.0, &[(CoreState::Idle, f, 2)]);
        let series = m.resample(0.25);
        assert_eq!(series.len(), 8);
        assert!(series[0].1 > series[7].1);
    }

    #[test]
    fn storage_bytes_add_energy_without_a_profile_segment() {
        let mut m = meter();
        let per_byte = m.model().config().storage_energy_per_byte_j;
        m.account_storage_bytes(1_000_000);
        assert!((m.joules() - 1e6 * per_byte).abs() < 1e-12);
        assert!(m.profile().is_empty(), "no time segment for storage bytes");
        // Interleaves freely with time-segment accounting.
        let f = m.model().freq_table().max();
        m.account(0.0, 1.0, &[(CoreState::Compute, f, 1)]);
        let with_segment = m.joules();
        m.account_storage_bytes(500);
        assert!(m.joules() > with_segment);
    }

    #[test]
    fn rapl_counter_wraps_like_the_real_msr() {
        let mut c = RaplCounter::new();
        c.add_joules(4294.0); // just under 2^32 µJ
        let before = c.read_uj();
        c.add_joules(10.0);
        let after = c.read_uj();
        assert!(after < before, "expected wraparound");
        let delta = RaplCounter::delta_uj(before, after);
        assert!((delta as f64 - 10e6).abs() < 2.0);
    }

    #[test]
    fn zero_length_segment_is_ignored() {
        let mut m = meter();
        let f = m.model().freq_table().max();
        m.account(0.0, 0.0, &[(CoreState::Compute, f, 1)]);
        assert_eq!(m.joules(), 0.0);
        assert!(m.profile().is_empty());
    }
}
