//! CPUfreq-style frequency governors.

use serde::{Deserialize, Serialize};

use crate::FreqTable;

/// A CPUfreq governor deciding a core's frequency from its utilization.
///
/// The paper's baseline uses the OS `ondemand` governor; the proposed
/// LI-DVFS/LSI-DVFS optimization uses `userspace` with explicit frequency
/// control (§5.3, Figure 7a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Governor {
    /// Always the highest frequency.
    Performance,
    /// Always the lowest frequency.
    Powersave,
    /// Scale up when utilization exceeds `up_threshold`, down to the
    /// proportionally matching level otherwise (simplified kernel policy).
    Ondemand {
        /// Utilization in `[0,1]` above which the max frequency is chosen.
        up_threshold: f64,
    },
    /// Explicit application-controlled frequency.
    Userspace {
        /// The pinned frequency in GHz.
        freq_ghz: f64,
    },
}

impl Governor {
    /// The kernel default `ondemand` configuration (95% up-threshold,
    /// matching the common `up_threshold=95` sysfs default).
    pub fn ondemand_default() -> Self {
        Governor::Ondemand { up_threshold: 0.95 }
    }

    /// Frequency chosen for a core with the given `utilization ∈ [0,1]`.
    pub fn frequency_for(&self, table: &FreqTable, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        match self {
            Governor::Performance => table.max(),
            Governor::Powersave => table.min(),
            Governor::Ondemand { up_threshold } => {
                if u >= *up_threshold {
                    table.max()
                } else {
                    // Proportional scaling: pick the lowest level that still
                    // covers the demand `u * f_max`.
                    let target = u * table.max();
                    *table
                        .levels()
                        .iter()
                        .find(|&&f| f >= target)
                        .unwrap_or(&table.max())
                }
            }
            Governor::Userspace { freq_ghz } => table.quantize(*freq_ghz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_pins_max() {
        let t = FreqTable::default();
        assert_eq!(Governor::Performance.frequency_for(&t, 0.0), 2.3);
    }

    #[test]
    fn powersave_pins_min() {
        let t = FreqTable::default();
        assert_eq!(Governor::Powersave.frequency_for(&t, 1.0), 1.2);
    }

    #[test]
    fn ondemand_scales_with_utilization() {
        let t = FreqTable::default();
        let g = Governor::ondemand_default();
        assert_eq!(g.frequency_for(&t, 1.0), 2.3);
        assert_eq!(g.frequency_for(&t, 0.99), 2.3);
        // Low utilization drops to a low level, but never below min.
        assert_eq!(g.frequency_for(&t, 0.0), 1.2);
        let mid = g.frequency_for(&t, 0.6);
        assert!(mid > 1.2 && mid < 2.3, "mid = {mid}");
    }

    #[test]
    fn ondemand_is_monotone_in_utilization() {
        let t = FreqTable::default();
        let g = Governor::ondemand_default();
        let mut prev = 0.0;
        for i in 0..=20 {
            let f = g.frequency_for(&t, i as f64 / 20.0);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn userspace_quantizes_to_ladder() {
        let t = FreqTable::default();
        let g = Governor::Userspace { freq_ghz: 1.84 };
        assert_eq!(g.frequency_for(&t, 0.5), 1.8);
    }
}
