//! DVFS frequency ladder.

use serde::{Deserialize, Serialize};

/// The discrete frequency steps a core can run at, in GHz.
///
/// Defaults to the paper's platform: 1.2 GHz to 2.3 GHz in 0.1 GHz steps
/// (12 levels), each core independently settable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqTable {
    levels: Vec<f64>,
}

impl Default for FreqTable {
    fn default() -> Self {
        FreqTable::new(1.2, 2.3, 0.1)
    }
}

impl FreqTable {
    /// Builds the ladder `min, min+step, ..., max` (inclusive, with a
    /// half-step tolerance on the endpoint).
    ///
    /// # Panics
    /// Panics unless `0 < min <= max` and `step > 0`.
    pub fn new(min_ghz: f64, max_ghz: f64, step_ghz: f64) -> Self {
        assert!(min_ghz > 0.0 && max_ghz >= min_ghz && step_ghz > 0.0);
        let mut levels = Vec::new();
        let mut f = min_ghz;
        while f <= max_ghz + step_ghz / 2.0 {
            levels.push((f * 1000.0).round() / 1000.0);
            f += step_ghz;
        }
        FreqTable { levels }
    }

    /// All levels, ascending, in GHz.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Lowest frequency.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// Highest (nominal) frequency.
    pub fn max(&self) -> f64 {
        self.levels[self.levels.len() - 1]
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the ladder has no levels (never true for a constructed
    /// table; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Clamps `f` to the nearest available level (ties keep the lower
    /// level, matching the ascending scan order).
    pub fn quantize(&self, f: f64) -> f64 {
        let mut best = self.levels[0];
        for &level in &self.levels[1..] {
            if (level - f).abs() < (best - f).abs() {
                best = level;
            }
        }
        best
    }

    /// True when `f` is (within rounding) one of the levels.
    pub fn contains(&self, f: f64) -> bool {
        self.levels.iter().any(|&l| (l - f).abs() < 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_matches_the_papers_cpu() {
        let t = FreqTable::default();
        assert_eq!(t.len(), 12);
        assert_eq!(t.min(), 1.2);
        assert_eq!(t.max(), 2.3);
        assert!(t.contains(1.8));
        assert!(!t.contains(1.85));
    }

    #[test]
    fn quantize_snaps_to_nearest() {
        let t = FreqTable::default();
        assert_eq!(t.quantize(1.84), 1.8);
        assert_eq!(t.quantize(1.86), 1.9);
        assert_eq!(t.quantize(0.5), 1.2);
        assert_eq!(t.quantize(9.9), 2.3);
    }

    #[test]
    fn single_level_table_works() {
        let t = FreqTable::new(2.0, 2.0, 0.1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.quantize(1.0), 2.0);
    }
}
