//! Node power capping.

use crate::{CoreState, PowerModel};

/// Picks frequencies that respect a node-level power budget.
///
/// The paper's motivation (§2.3) notes that "the additional power required
/// to provide resilience reduces the power available for computation".
/// `PowerCap` makes that concrete: given a budget in watts, it returns the
/// highest DVFS level at which `n_cores` computing cores stay within it.
#[derive(Debug, Clone)]
pub struct PowerCap {
    budget_w: f64,
}

impl PowerCap {
    /// A cap of `budget_w` watts.
    ///
    /// # Panics
    /// Panics if the budget is not positive.
    pub fn new(budget_w: f64) -> Self {
        assert!(budget_w > 0.0, "power budget must be positive");
        PowerCap { budget_w }
    }

    /// The budget in watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Highest frequency at which `n_cores` cores in `state` fit the
    /// budget, or `None` when even the lowest level exceeds it.
    pub fn max_frequency(
        &self,
        model: &PowerModel,
        state: CoreState,
        n_cores: usize,
    ) -> Option<f64> {
        model
            .freq_table()
            .levels()
            .iter()
            .rev()
            .find(|&&f| model.core_power(state, f) * n_cores as f64 <= self.budget_w)
            .copied()
    }

    /// True when the mixed core group fits the budget.
    pub fn admits(&self, model: &PowerModel, groups: &[(CoreState, f64, usize)]) -> bool {
        model.group_power(groups) <= self.budget_w
    }

    /// Headroom left by the group, watts (negative when over budget).
    pub fn headroom(&self, model: &PowerModel, groups: &[(CoreState, f64, usize)]) -> f64 {
        self.budget_w - model.group_power(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generous_budget_allows_max_frequency() {
        let m = PowerModel::default();
        let cap = PowerCap::new(1e6);
        assert_eq!(
            cap.max_frequency(&m, CoreState::Compute, 24),
            Some(m.freq_table().max())
        );
    }

    #[test]
    fn tight_budget_forces_throttling() {
        let m = PowerModel::default();
        // 24 cores at max draw 24 * 8 = 192 W; give only 150 W.
        let cap = PowerCap::new(150.0);
        let f = cap.max_frequency(&m, CoreState::Compute, 24).unwrap();
        assert!(f < m.freq_table().max());
        assert!(cap.admits(&m, &[(CoreState::Compute, f, 24)]));
        // One level up must violate the cap.
        let idx = m
            .freq_table()
            .levels()
            .iter()
            .position(|&l| l == f)
            .unwrap();
        if idx + 1 < m.freq_table().len() {
            let f_up = m.freq_table().levels()[idx + 1];
            assert!(!cap.admits(&m, &[(CoreState::Compute, f_up, 24)]));
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let m = PowerModel::default();
        let cap = PowerCap::new(1.0);
        assert_eq!(cap.max_frequency(&m, CoreState::Compute, 24), None);
    }

    #[test]
    fn headroom_is_signed() {
        let m = PowerModel::default();
        let f = m.freq_table().max();
        let cap = PowerCap::new(100.0);
        assert!(cap.headroom(&m, &[(CoreState::Compute, f, 1)]) > 0.0);
        assert!(cap.headroom(&m, &[(CoreState::Compute, f, 24)]) < 0.0);
    }
}
