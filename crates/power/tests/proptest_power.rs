//! Property-based tests of the power substrate.

use proptest::prelude::*;
use rsls_power::{CoreState, EnergyMeter, FreqTable, Governor, PowerModel, RaplCounter};

fn freq_strategy() -> impl Strategy<Value = f64> {
    (12u32..=23).prop_map(|f| f as f64 / 10.0)
}

proptest! {
    #[test]
    fn core_power_is_positive_and_bounded(f in freq_strategy()) {
        let m = PowerModel::default();
        let pmax = m.config().p_active_max_w;
        for s in CoreState::ALL {
            let p = m.core_power(s, f);
            prop_assert!(p > 0.0);
            prop_assert!(p <= pmax * 1.0001, "{s:?} at {f} GHz draws {p} W");
        }
    }

    #[test]
    fn idle_is_cheapest_and_busywait_below_compute_at_fmax(f in freq_strategy()) {
        let m = PowerModel::default();
        // Idle is the floor at any frequency.
        prop_assert!(m.core_power(CoreState::Idle, f) <= m.core_power(CoreState::Compute, f));
        // Busy-wait draws less than compute at the nominal frequency (it
        // can exceed a *throttled* compute core: spinning runs at full
        // IPC, which is exactly why the paper throttles the waiters).
        let fmax = m.freq_table().max();
        prop_assert!(
            m.core_power(CoreState::BusyWait, fmax) <= m.core_power(CoreState::Compute, fmax)
        );
    }

    #[test]
    fn group_power_is_additive(f in freq_strategy(), a in 1usize..32, b in 1usize..32) {
        let m = PowerModel::default();
        let together = m.group_power(&[(CoreState::Compute, f, a + b)]);
        let split = m.group_power(&[(CoreState::Compute, f, a)])
            + m.group_power(&[(CoreState::Compute, f, b)]);
        prop_assert!((together - split).abs() < 1e-9);
    }

    #[test]
    fn energy_accumulates_monotonically(durations in proptest::collection::vec(0.001f64..10.0, 1..20)) {
        let m = PowerModel::default();
        let f = m.freq_table().max();
        let mut meter = EnergyMeter::new(m);
        let mut t = 0.0;
        let mut last = 0.0;
        for d in durations {
            meter.account(t, t + d, &[(CoreState::Compute, f, 4)]);
            t += d;
            prop_assert!(meter.joules() >= last);
            last = meter.joules();
        }
        // Average power equals the constant group power.
        let expected = meter.model().group_power(&[(CoreState::Compute, f, 4)]);
        prop_assert!((meter.average_power() - expected).abs() < 1e-9);
    }

    #[test]
    fn governor_frequency_is_always_on_the_ladder(u in 0.0f64..1.0, pinned in freq_strategy()) {
        let t = FreqTable::default();
        for g in [
            Governor::Performance,
            Governor::Powersave,
            Governor::ondemand_default(),
            Governor::Userspace { freq_ghz: pinned },
        ] {
            let f = g.frequency_for(&t, u);
            prop_assert!(t.contains(f), "{g:?} produced off-ladder {f}");
        }
    }

    #[test]
    fn quantize_is_idempotent(f in 0.1f64..5.0) {
        let t = FreqTable::default();
        let q = t.quantize(f);
        prop_assert_eq!(t.quantize(q), q);
        prop_assert!(t.contains(q));
    }

    #[test]
    fn rapl_delta_recovers_consumption(j1 in 0.0f64..5000.0, j2 in 0.0f64..4000.0) {
        let mut c = RaplCounter::new();
        c.add_joules(j1);
        let before = c.read_uj();
        c.add_joules(j2);
        let after = c.read_uj();
        let delta = RaplCounter::delta_uj(before, after);
        // j2 < 4000 J < 2^32 µJ, so at most one wraparound occurred.
        prop_assert!((delta as f64 - j2 * 1e6).abs() < 2.0);
    }

    #[test]
    fn speed_factor_is_monotone(f1 in freq_strategy(), f2 in freq_strategy()) {
        let m = PowerModel::default();
        if f1 <= f2 {
            prop_assert!(m.speed_factor(f1) <= m.speed_factor(f2));
        } else {
            prop_assert!(m.speed_factor(f1) >= m.speed_factor(f2));
        }
    }
}
