//! Determinism guarantees of the parallel hot paths.
//!
//! Two independent claims are pinned here:
//!
//! 1. The chunked parallel SpMV is **bit-identical** (`==`, not
//!    approximately equal) to the serial kernel on every matrix of the
//!    evaluation suite — each row is a serial reduction, so scheduling
//!    can never move a bit.
//! 2. A faulty multi-scheme campaign produces **byte-identical**
//!    canonical-JSON [`rsls_core::RunReport`]s whether the engine runs
//!    with one worker or four, *with the parallel kernels forced on*
//!    inside every solve.

use rsls_campaign::{Engine, EngineOptions, UnitSpec, ENGINE_VERSION};
use rsls_core::driver::run;
use rsls_core::{RunConfig, Scheme};
use rsls_experiments::runners::{evenly_spaced_faults, standard_schemes, workload};
use rsls_experiments::{Scale, SUITE};
use rsls_sparse::csr::{set_par_spmv_threshold, PAR_SPMV_CHUNK_ROWS};
use rsls_sparse::generators::stencil_2d;
use rsls_sparse::CsrMatrix;

/// Deterministic pseudo-random probe vector.
fn probe(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect()
}

#[test]
fn suite_par_spmv_is_bit_identical_to_serial() {
    for spec in SUITE {
        let (a, _b) = workload(spec.name, Scale::Quick);
        let x = probe(a.ncols(), 42);
        let mut serial = vec![0.0; a.nrows()];
        a.spmv(&x, &mut serial);

        let mut par = vec![f64::NAN; a.nrows()];
        a.par_spmv(&x, &mut par);
        assert_eq!(par, serial, "par_spmv differs on {}", spec.name);

        // An awkward chunk size on top of the production one: chunk
        // boundaries must not matter either.
        for chunk in [PAR_SPMV_CHUNK_ROWS, 97] {
            let mut chunked = vec![f64::NAN; a.nrows()];
            a.par_spmv_chunked(&x, &mut chunked, chunk);
            assert_eq!(
                chunked, serial,
                "par_spmv_chunked({chunk}) differs on {}",
                spec.name
            );
        }
    }
}

/// The faulty scheme lineup on a stencil system (the fig. 3 workload
/// shape), executed on a private engine with `jobs` workers.
fn lineup_reports(a: &CsrMatrix, b: &[f64], jobs: usize) -> Vec<String> {
    let engine = Engine::new(EngineOptions {
        jobs,
        ..EngineOptions::default()
    })
    .expect("engine builds");
    let ranks = 4;
    let specs: Vec<UnitSpec> = standard_schemes(25)
        .into_iter()
        .map(|(scheme, dvfs)| {
            let mut cfg = RunConfig::new(scheme, ranks).with_dvfs(dvfs);
            if scheme != Scheme::FaultFree {
                cfg = cfg.with_faults(evenly_spaced_faults(2, 120, ranks, "determinism"));
            }
            UnitSpec {
                experiment: "parallel-determinism".to_string(),
                unit: scheme.label(),
                matrix: "stencil-40".to_string(),
                matrix_fingerprint: 0,
                scale: Scale::Quick.label().to_string(),
                engine_version: ENGINE_VERSION,
                config: cfg,
            }
        })
        .collect();
    engine
        .run_units(&specs, |spec| run(a, b, &spec.config))
        .into_iter()
        .map(|o| {
            let report = o.report.expect("unit succeeds");
            serde_json::to_string(&report).expect("report serializes")
        })
        .collect()
}

#[test]
fn faulty_campaign_is_byte_identical_across_job_counts() {
    // Force the parallel kernel inside every solve: the point is that
    // *with* row-chunked SpMV in the inner loop, worker count still
    // cannot move a byte of any report.
    set_par_spmv_threshold(1);

    let a = stencil_2d(40, 40);
    let ones = vec![1.0; a.nrows()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);

    let serial = lineup_reports(&a, &b, 1);
    let parallel = lineup_reports(&a, &b, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "RunReport bytes differ between --jobs 1 and --jobs 4");
    }
}
