//! Process-wide workload sharing for the experiment harnesses.
//!
//! Every figure/table harness used to regenerate its suite matrices from
//! scratch — `rsls-run --all` built `wathen100` or `crystm02` a dozen
//! times over. This module interns each `(matrix name, scale)` workload
//! behind an [`Arc`] the first time it is requested and hands the same
//! instance to every later caller, and memoizes the (O(nnz)) campaign
//! fingerprint of each interned workload so unit-spec construction stops
//! re-hashing the operator for every scheme in a line-up.
//!
//! Entries are never evicted: the suite is small (14 matrices × 2
//! scales) and the immortality of the interned [`Arc`]s is what makes
//! the pointer-identity fingerprint probe in [`fingerprint_of`] sound.
//! Iteration state is kept in [`std::collections::BTreeMap`]s so nothing
//! here depends on hash order (`rsls-lint` deterministic rule set).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use rsls_campaign::matrix_fingerprint;
use rsls_sparse::CsrMatrix;

use crate::{Scale, SUITE};

/// One interned workload plus its lazily computed campaign fingerprint.
#[derive(Clone)]
struct Entry {
    a: Arc<CsrMatrix>,
    b: Arc<Vec<f64>>,
    fingerprint: Arc<OnceLock<u64>>,
}

type Key = (String, &'static str);

static CACHE: OnceLock<Mutex<BTreeMap<Key, Entry>>> = OnceLock::new();
static WL_HITS: AtomicU64 = AtomicU64::new(0);
static WL_MISSES: AtomicU64 = AtomicU64::new(0);
static FP_HITS: AtomicU64 = AtomicU64::new(0);
static FP_MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> MutexGuard<'static, BTreeMap<Key, Entry>> {
    CACHE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Cumulative workload-cache counters (for `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Workload requests served from the interned map.
    pub hits: u64,
    /// Workload requests that generated the matrix + rhs.
    pub misses: u64,
    /// Fingerprint requests served from the per-entry memo.
    pub fingerprint_hits: u64,
    /// Fingerprint requests that hashed the operator.
    pub fingerprint_misses: u64,
    /// Interned workloads currently held.
    pub entries: u64,
}

/// Current counter snapshot.
pub fn stats() -> WorkloadStats {
    WorkloadStats {
        hits: WL_HITS.load(Ordering::Relaxed),
        misses: WL_MISSES.load(Ordering::Relaxed),
        fingerprint_hits: FP_HITS.load(Ordering::Relaxed),
        fingerprint_misses: FP_MISSES.load(Ordering::Relaxed),
        entries: cache().len() as u64,
    }
}

/// Fetches (or generates and interns) the named suite workload.
///
/// Generation is deterministic, so a racing miss at worst builds the
/// same workload twice and keeps the first insert.
///
/// # Panics
/// Panics when `name` is not in [`SUITE`].
pub fn workload(name: &str, scale: Scale) -> (Arc<CsrMatrix>, Arc<Vec<f64>>) {
    let key = (name.to_string(), scale.label());
    if let Some(e) = cache().get(&key) {
        WL_HITS.fetch_add(1, Ordering::Relaxed);
        return (Arc::clone(&e.a), Arc::clone(&e.b));
    }
    WL_MISSES.fetch_add(1, Ordering::Relaxed);
    let (a, b) = generate(name, scale);
    let made = Entry {
        a: Arc::new(a),
        b: Arc::new(b),
        fingerprint: Arc::new(OnceLock::new()),
    };
    let mut m = cache();
    let e = m.entry(key).or_insert(made);
    (Arc::clone(&e.a), Arc::clone(&e.b))
}

/// Generates a fresh, uncached copy of the named suite workload — for
/// callers that must observe generation itself (e.g. the
/// `RSLS_MATRIX_DIR` override) rather than share the interned instance.
pub fn workload_uncached(name: &str, scale: Scale) -> (CsrMatrix, Vec<f64>) {
    generate(name, scale)
}

fn generate(name: &str, scale: Scale) -> (CsrMatrix, Vec<f64>) {
    let spec = SUITE
        .iter()
        .find(|m| m.name == name)
        // rsls-lint: allow(no-unwrap) -- an unknown workload name is a caller bug, and the campaign engine isolates unit panics
        .unwrap_or_else(|| panic!("unknown suite matrix '{name}'"));
    let a = spec.generate(scale);
    let b = spec.rhs(&a);
    (a, b)
}

/// The campaign fingerprint of `(a, b)` *if* the pair is an interned
/// workload (pointer identity against the immortal cache entries),
/// memoized per entry. Returns `None` for foreign data — the caller
/// hashes it directly.
pub fn fingerprint_of(a: &CsrMatrix, b: &[f64]) -> Option<u64> {
    let entry = cache()
        .values()
        .find(|e| std::ptr::eq(e.a.as_ref(), a) && std::ptr::eq(e.b.as_slice(), b))
        .cloned()?;
    if let Some(fp) = entry.fingerprint.get() {
        FP_HITS.fetch_add(1, Ordering::Relaxed);
        return Some(*fp);
    }
    FP_MISSES.fetch_add(1, Ordering::Relaxed);
    let fp = entry.fingerprint.get_or_init(|| {
        matrix_fingerprint(
            a.nrows(),
            a.ncols(),
            a.row_ptr(),
            a.col_idx(),
            a.values(),
            b,
        )
    });
    Some(*fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_interned_and_shared() {
        let (a1, b1) = workload("wathen100", Scale::Quick);
        let (a2, b2) = workload("wathen100", Scale::Quick);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(Arc::ptr_eq(&b1, &b2));
        let s = stats();
        assert!(s.hits >= 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn interned_matches_uncached_generation() {
        let (a, b) = workload("bcsstk16", Scale::Quick);
        let (ua, ub) = workload_uncached("bcsstk16", Scale::Quick);
        assert_eq!(*a, ua);
        assert_eq!(*b, ub);
    }

    #[test]
    fn fingerprint_memoizes_for_interned_pairs_only() {
        let (a, b) = workload("ex15", Scale::Quick);
        let fp1 = fingerprint_of(&a, &b).expect("interned pair must fingerprint");
        let fp2 = fingerprint_of(&a, &b).expect("interned pair must fingerprint");
        assert_eq!(fp1, fp2);
        assert_eq!(
            fp1,
            matrix_fingerprint(
                a.nrows(),
                a.ncols(),
                a.row_ptr(),
                a.col_idx(),
                a.values(),
                &b
            )
        );
        // A fresh copy is bit-identical but not the interned instance.
        let (ua, ub) = workload_uncached("ex15", Scale::Quick);
        assert!(fingerprint_of(&ua, &ub).is_none());
    }
}
