//! The 14-matrix evaluation suite (Table 3 analogs).
//!
//! Each [`MatrixSpec`] mirrors one SuiteSparse matrix from the paper's
//! Table 3: its row count and nnz/row are matched (exactly at
//! [`Scale::Full`], proportionally at [`Scale::Quick`]), its *structure*
//! (regular band vs irregular long-range coupling) is chosen to reproduce
//! the paper's qualitative recovery behaviour, and its conditioning
//! (diagonal-dominance margin) is tuned so relative iteration counts
//! follow the Table 3 ordering. `wathen100` and the 5-point stencil are
//! procedural and generated exactly.

use rsls_sparse::generators::{banded_spd, irregular_spd, stencil_2d, wathen, BandedConfig};
use rsls_sparse::CsrMatrix;

use crate::Scale;

/// Sparsity structure class of an analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Regular banded structure — LI/LSI reconstruct accurately.
    Banded,
    /// Irregular long-range coupling — LI/LSI reconstruct poorly
    /// (paper §5.2: "LI and LSI construct less accurate solutions for the
    /// matrices with an irregular structure").
    Irregular,
    /// Exact procedural generation (wathen, stencil).
    Procedural,
}

/// One matrix of the evaluation suite.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// SuiteSparse name from Table 3.
    pub name: &'static str,
    /// Paper's row count.
    pub paper_rows: usize,
    /// Paper's average nnz per row.
    pub paper_nnz_per_row: usize,
    /// Paper's problem kind.
    pub problem_kind: &'static str,
    /// Paper's fault-free iteration count (tolerance 1e-12).
    pub paper_iters: usize,
    /// Structure class of the analog.
    pub structure: Structure,
    /// Diagonal-dominance margin controlling the analog's conditioning
    /// (ignored by procedural generators).
    dominance: f64,
    /// Geometric scaling decades inflating the analog's condition number
    /// toward the Table 3 iteration counts (see `BandedConfig`).
    scaling: f64,
    /// Band-weight decay lengthening the analog's effective 1D diameter
    /// (see `BandedConfig::band_decay`). 1.0 disables it.
    decay: f64,
    /// Row count at quick scale.
    quick_rows: usize,
}

impl MatrixSpec {
    /// Row count at the given scale.
    pub fn rows(&self, scale: Scale) -> usize {
        match scale {
            Scale::Quick => self.quick_rows,
            Scale::Full => self.paper_rows,
        }
    }

    /// Generates the analog at the given scale (deterministic).
    ///
    /// When `RSLS_MATRIX_DIR` is set and contains `<name>.mtx`, the real
    /// SuiteSparse matrix is loaded instead of the analog — so anyone with
    /// the paper's matrices on disk reproduces against the originals.
    pub fn generate(&self, scale: Scale) -> CsrMatrix {
        if let Some(real) = self.load_real() {
            return real;
        }
        let n = self.rows(scale);
        let seed = fxhash(self.name);
        match self.name {
            "wathen100" => {
                // dim = 3·nx·ny + 2(nx+ny) + 1; invert for nx = ny.
                let nx = 100;
                let _ = scale;
                wathen(nx, nx, seed)
            }
            "5-point stencil" => {
                let side = (n as f64).sqrt().round() as usize;
                stencil_2d(side, side)
            }
            _ => match self.structure {
                Structure::Banded | Structure::Procedural => banded_spd(
                    &BandedConfig::regular(n, self.paper_nnz_per_row, self.dominance, seed)
                        .with_scaling_decades(self.scaling)
                        .with_band_decay(self.decay),
                ),
                Structure::Irregular => irregular_spd(
                    &BandedConfig::irregular(n, self.paper_nnz_per_row, self.dominance, 0.35, seed)
                        .with_scaling_decades(self.scaling)
                        .with_band_decay(self.decay),
                ),
            },
        }
    }

    /// Attempts to load the real SuiteSparse matrix from `RSLS_MATRIX_DIR`.
    fn load_real(&self) -> Option<CsrMatrix> {
        let dir = std::env::var("RSLS_MATRIX_DIR").ok()?;
        let path = std::path::Path::new(&dir).join(format!("{}.mtx", self.name));
        let file = std::fs::File::open(&path).ok()?;
        match rsls_sparse::io::read_matrix_market(std::io::BufReader::new(file)) {
            Ok(m) => {
                eprintln!("suite: using real matrix {}", path.display());
                Some(m)
            }
            Err(e) => {
                eprintln!(
                    "suite: failed to parse {}: {e}; using analog",
                    path.display()
                );
                None
            }
        }
    }

    /// A right-hand side with a known smooth solution structure (all-ones
    /// through the matrix), keeping `‖b‖` well scaled for any analog.
    pub fn rhs(&self, a: &CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.nrows()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }
}

/// Deterministic tiny string hash for per-matrix seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The evaluation suite, in Table 3 order.
///
/// Dominance margins are tuned so the *ordering* of iteration counts
/// matches Table 3 (δ ≈ 392/iters² from the CG/condition-number
/// relation); measured values are recorded in EXPERIMENTS.md.
pub static SUITE: &[MatrixSpec] = &[
    MatrixSpec {
        name: "bcsstk06",
        paper_rows: 420,
        paper_nnz_per_row: 19,
        problem_kind: "structural",
        paper_iters: 4476,
        structure: Structure::Irregular,
        dominance: 2.0e-5,
        scaling: 2.5,
        decay: 1.0,
        quick_rows: 420,
    },
    MatrixSpec {
        name: "msc01050",
        paper_rows: 1050,
        paper_nnz_per_row: 25,
        problem_kind: "structural",
        paper_iters: 35765,
        structure: Structure::Irregular,
        dominance: 3.1e-7,
        scaling: 2.9,
        decay: 1.0,
        quick_rows: 1050,
    },
    MatrixSpec {
        name: "ex10hs",
        paper_rows: 2548,
        paper_nnz_per_row: 22,
        problem_kind: "CFD",
        paper_iters: 3217,
        structure: Structure::Irregular,
        dominance: 3.8e-5,
        scaling: 1.7,
        decay: 1.0,
        quick_rows: 2548,
    },
    MatrixSpec {
        name: "bcsstk16",
        paper_rows: 4884,
        paper_nnz_per_row: 59,
        problem_kind: "structural",
        paper_iters: 553,
        structure: Structure::Banded,
        dominance: 1.3e-3,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 4884,
    },
    MatrixSpec {
        name: "ex15",
        paper_rows: 6867,
        paper_nnz_per_row: 17,
        problem_kind: "CFD",
        paper_iters: 1074,
        structure: Structure::Banded,
        dominance: 3.4e-4,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 6867,
    },
    MatrixSpec {
        name: "Kuu",
        paper_rows: 7102,
        paper_nnz_per_row: 24,
        problem_kind: "structural",
        paper_iters: 849,
        structure: Structure::Banded,
        dominance: 5.4e-4,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 7102,
    },
    MatrixSpec {
        name: "t2dahe",
        paper_rows: 11445,
        paper_nnz_per_row: 15,
        problem_kind: "model reduction",
        paper_iters: 82098,
        structure: Structure::Banded,
        dominance: 5.0e-5,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 5723,
    },
    MatrixSpec {
        name: "crystm02",
        paper_rows: 13965,
        paper_nnz_per_row: 23,
        problem_kind: "materials",
        paper_iters: 1154,
        structure: Structure::Banded,
        dominance: 2.9e-4,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 13965,
    },
    MatrixSpec {
        name: "wathen100",
        paper_rows: 30401,
        paper_nnz_per_row: 16,
        problem_kind: "random 2D/3D",
        paper_iters: 355,
        structure: Structure::Procedural,
        dominance: 0.0,
        scaling: 0.0,
        decay: 1.0,
        quick_rows: 30401,
    },
    MatrixSpec {
        name: "cvxbqp1",
        paper_rows: 50000,
        paper_nnz_per_row: 7,
        problem_kind: "optimization",
        paper_iters: 11863,
        structure: Structure::Banded,
        dominance: 2.4e-5,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 12500,
    },
    MatrixSpec {
        name: "Andrews",
        paper_rows: 60000,
        paper_nnz_per_row: 13,
        problem_kind: "graphics",
        paper_iters: 216,
        structure: Structure::Banded,
        dominance: 8.4e-3,
        scaling: 0.0,
        decay: 0.3,
        quick_rows: 60000,
    },
    MatrixSpec {
        name: "nd24k",
        paper_rows: 72000,
        paper_nnz_per_row: 399,
        problem_kind: "2D/3D",
        paper_iters: 10019,
        structure: Structure::Banded,
        dominance: 3.9e-6,
        scaling: 2.0,
        decay: 1.0,
        quick_rows: 2400,
    },
    MatrixSpec {
        name: "x104",
        paper_rows: 108384,
        paper_nnz_per_row: 80,
        problem_kind: "structure",
        paper_iters: 96704,
        structure: Structure::Irregular,
        dominance: 4.2e-8,
        scaling: 1.8,
        decay: 1.0,
        quick_rows: 6000,
    },
    MatrixSpec {
        name: "5-point stencil",
        paper_rows: 640000,
        paper_nnz_per_row: 5,
        problem_kind: "structure",
        paper_iters: 3162,
        structure: Structure::Procedural,
        dominance: 0.0,
        scaling: 0.0,
        decay: 1.0,
        quick_rows: 40000,
    },
];

/// Finds a suite entry by name.
pub fn by_name(name: &str) -> Option<&'static MatrixSpec> {
    SUITE.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_matrices() {
        assert_eq!(SUITE.len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in SUITE {
            assert!(seen.insert(m.name), "duplicate {}", m.name);
        }
    }

    #[test]
    fn quick_analogs_are_spd_shaped() {
        for m in SUITE {
            let a = m.generate(Scale::Quick);
            assert_eq!(a.nrows(), a.ncols(), "{}", m.name);
            assert!(a.is_symmetric(1e-10), "{} not symmetric", m.name);
            assert!(a.nrows() <= 60000, "{} too large for quick", m.name);
        }
    }

    #[test]
    fn nnz_per_row_is_in_the_right_ballpark() {
        for m in SUITE {
            if m.structure == Structure::Procedural {
                continue;
            }
            let a = m.generate(Scale::Quick);
            let got = a.nnz_per_row();
            let want = m.paper_nnz_per_row as f64;
            assert!(
                got > 0.4 * want && got < 1.6 * want,
                "{}: nnz/row {got} vs paper {want}",
                m.name
            );
        }
    }

    #[test]
    fn wathen_dimension_matches_formula() {
        let m = by_name("wathen100").unwrap();
        let a = m.generate(Scale::Quick);
        assert_eq!(a.nrows(), 3 * 100 * 100 + 2 * 100 + 2 * 100 + 1);
    }

    #[test]
    fn full_scale_rows_match_table_3() {
        for m in SUITE {
            assert!(m.paper_rows >= m.quick_rows, "{}", m.name);
        }
        assert_eq!(by_name("x104").unwrap().paper_rows, 108_384);
        assert_eq!(by_name("5-point stencil").unwrap().paper_rows, 640_000);
    }

    #[test]
    fn rhs_is_consistent_with_all_ones_solution() {
        let m = by_name("Kuu").unwrap();
        let a = m.generate(Scale::Quick);
        let b = m.rhs(&a);
        // A · 1 = b by construction.
        let ones = vec![1.0; a.nrows()];
        let mut ax = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut ax);
        assert_eq!(ax, b);
    }

    #[test]
    fn real_matrix_override_is_honored() {
        // Write a tiny Matrix Market file and point the loader at it.
        // (Serial: uses a process-wide env var; restore it afterwards.)
        let dir = std::env::temp_dir().join("rsls-suite-real");
        std::fs::create_dir_all(&dir).unwrap();
        // bcsstk06 is not generated by any other test in this binary, so
        // the process-wide env var cannot race a concurrent workload().
        let path = dir.join("bcsstk06.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4.0\n2 2 4.0\n",
        )
        .unwrap();
        std::env::set_var("RSLS_MATRIX_DIR", &dir);
        let a = by_name("bcsstk06").unwrap().generate(Scale::Quick);
        std::env::remove_var("RSLS_MATRIX_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.get(0, 0), 4.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let m = by_name("crystm02").unwrap();
        assert_eq!(m.generate(Scale::Quick), m.generate(Scale::Quick));
    }
}
