//! ASCII/CSV table rendering for experiment results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple result table: a title, column headers, and string rows.
///
/// Every harness produces one (or more) of these; the `rsls-run` binary
/// prints them and optionally dumps CSV next to the binary's working
/// directory for plotting, and `rsls-serve` serializes them to
/// canonical JSON (field order is declaration order, so the bytes are
/// stable for a given table).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Table {
    /// Table title (e.g. "Figure 5 — normalized iterations").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the harness for stable formatting).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (the paper's table style).
pub fn f2(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Formats a float with 3 significant-looking decimals.
pub fn f3(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats in scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["long-name".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("Demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("rsls-test-csv");
        let path = dir.join("demo.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(f2(f64::INFINITY), "inf");
        assert_eq!(sci(12345.0), "1.23e4");
    }
}
