//! Shared run orchestration for the experiment harnesses.
//!
//! Every solver invocation here goes through the process-wide campaign
//! engine ([`crate::campaign`]): runs are specified canonically, cached
//! by content address when the engine has a cache, and executed on its
//! worker pool when a batch allows it.

use std::sync::{Arc, OnceLock};

use rsls_core::driver::RunConfig;
use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, ForwardKind, RunReport, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};
use rsls_sparse::CsrMatrix;

use crate::campaign::{execute_unit, execute_units, unit_spec};
use crate::Scale;

/// The §5.2 scheme line-up: FF, RD, F0, FI, LI, LSI, CR.
///
/// `cr_interval` is the fixed checkpoint interval in iterations (the paper
/// uses 100 with its Table 3 iteration counts; quick-scale runs shrink it
/// proportionally via [`cr_interval_for`]).
pub fn standard_schemes(cr_interval: usize) -> Vec<(Scheme, DvfsPolicy)> {
    vec![
        (Scheme::FaultFree, DvfsPolicy::OsDefault),
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (Scheme::Forward(ForwardKind::Zero), DvfsPolicy::OsDefault),
        (
            Scheme::Forward(ForwardKind::InitialGuess),
            DvfsPolicy::OsDefault,
        ),
        (Scheme::li_local_cg(), DvfsPolicy::OsDefault),
        (Scheme::lsi_local_cg(), DvfsPolicy::OsDefault),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval: CheckpointInterval::EveryIterations(cr_interval),
            },
            DvfsPolicy::OsDefault,
        ),
    ]
}

/// The process-wide scheme filter (`rsls-run --schemes CR-LC,MNF`):
/// when set, line-up harnesses only run the listed scheme labels.
/// FF always runs — it anchors fault schedules and normalizations.
static SCHEME_FILTER: OnceLock<Vec<String>> = OnceLock::new();

/// Restricts line-up harnesses to the given scheme labels (canonical
/// [`Scheme::label`] strings — validate with [`Scheme::parse_label`]
/// before calling). First call wins; returns `false` if a filter was
/// already installed. The default (never called) runs everything.
pub fn set_scheme_filter(labels: Vec<String>) -> bool {
    SCHEME_FILTER.set(labels).is_ok()
}

/// Whether the scheme filter lets `scheme` run. FF is always allowed;
/// without an installed filter everything is.
pub fn scheme_allowed(scheme: &Scheme) -> bool {
    if matches!(scheme, Scheme::FaultFree) {
        return true;
    }
    match SCHEME_FILTER.get() {
        None => true,
        Some(labels) => labels.iter().any(|l| *l == scheme.label()),
    }
}

/// Column labels for the line-up [`run_standard_lineup`] will actually
/// execute (FF first, then the filtered scheme order) — positional
/// tables derive their headers from this so a `--schemes` filter
/// narrows the columns instead of misaligning them.
pub fn lineup_labels() -> Vec<String> {
    standard_schemes(100)
        .into_iter()
        .filter(|(scheme, _)| scheme_allowed(scheme))
        .map(|(scheme, _)| scheme.label())
        .collect()
}

/// Checkpoint interval standing in for the paper's "every 100 iterations".
///
/// The paper's fixed 100 sits between `ff_iters/2` and `ff_iters/1000` on
/// its Table 3 workloads. Quick-scale analogs converge in fewer
/// iterations, so the interval shrinks proportionally to preserve the
/// rollback-distance shape; full scale keeps the paper's literal 100.
pub fn cr_interval_for(scale: Scale, ff_iters: usize) -> usize {
    match scale {
        Scale::Full => 100,
        Scale::Quick => (ff_iters / 12).clamp(10, 100),
    }
}

/// Runs the fault-free baseline.
pub fn run_fault_free(a: &CsrMatrix, b: &[f64], ranks: usize) -> RunReport {
    SchemeRun::new(a, b, ranks, Scheme::FaultFree).execute()
}

/// Parameters of one scheme run — the experiment knobs, named.
///
/// Construct with [`SchemeRun::new`] (fault-free, OS-default DVFS, no
/// MTBF), adjust with the builder methods, and [`execute`]
/// ([`SchemeRun::execute`]) through the campaign engine.
#[derive(Debug, Clone)]
pub struct SchemeRun<'a> {
    /// System matrix.
    pub a: &'a CsrMatrix,
    /// Right-hand side.
    pub b: &'a [f64],
    /// Virtual rank count.
    pub ranks: usize,
    /// Recovery scheme under test.
    pub scheme: Scheme,
    /// DVFS policy during reconstruction.
    pub dvfs: DvfsPolicy,
    /// Fault injection plan.
    pub faults: FaultSchedule,
    /// Matrix/workload tag — names the unit in journals and (with the
    /// data fingerprint) in cache addresses, and salts on-disk
    /// checkpoint file names.
    pub tag: String,
    /// MTBF in seconds, for Young/Daly interval resolution.
    pub mtbf_s: Option<f64>,
}

impl<'a> SchemeRun<'a> {
    /// A run with no faults, OS-default DVFS, and no MTBF.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], ranks: usize, scheme: Scheme) -> Self {
        SchemeRun {
            a,
            b,
            ranks,
            scheme,
            dvfs: DvfsPolicy::OsDefault,
            faults: FaultSchedule::fault_free(),
            tag: "run".to_string(),
            mtbf_s: None,
        }
    }

    /// Sets the DVFS policy.
    pub fn dvfs(mut self, dvfs: DvfsPolicy) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Sets the fault schedule.
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the workload tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the MTBF.
    pub fn mtbf_s(mut self, mtbf_s: f64) -> Self {
        self.mtbf_s = Some(mtbf_s);
        self
    }

    /// The [`RunConfig`] this run resolves to.
    pub fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(self.scheme, self.ranks)
            .with_faults(self.faults.clone())
            .with_dvfs(self.dvfs);
        cfg.run_tag = format!(
            "{}-{}-{}",
            self.tag,
            self.scheme.label().replace([' ', '(', ')'], ""),
            self.ranks
        );
        cfg.mtbf_s = self.mtbf_s;
        cfg
    }

    /// Executes the run through the campaign engine.
    pub fn execute(&self) -> RunReport {
        let spec = unit_spec(self.a, self.b, &self.tag, Scale::from_env(), self.config());
        execute_unit(self.a, self.b, spec)
    }
}

/// Runs one scheme with the given fault schedule and DVFS policy
/// (convenience wrapper over [`SchemeRun`]).
pub fn run_scheme(params: SchemeRun<'_>) -> RunReport {
    params.execute()
}

/// Routes an arbitrary [`RunConfig`] through the campaign engine —
/// for harnesses that need knobs [`SchemeRun`] does not carry
/// (residual-history recording, frequency pinning, compression).
pub fn run_cached(a: &CsrMatrix, b: &[f64], tag: &str, cfg: RunConfig) -> RunReport {
    execute_unit(a, b, unit_spec(a, b, tag, Scale::from_env(), cfg))
}

/// The §5.2 fault plan: `k` faults spread evenly over the fault-free
/// iteration count, deterministic per matrix name.
pub fn evenly_spaced_faults(k: usize, ff_iters: usize, ranks: usize, name: &str) -> FaultSchedule {
    let seed = name
        .bytes()
        .fold(7u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    FaultSchedule::evenly_spaced(k, ff_iters, ranks, FaultClass::Snf, seed)
}

/// A rate-based fault plan whose MTBF is chosen so that exactly
/// `expected_faults` arrive during the fault-free execution time — the
/// stand-in for the paper's absolute "MTBF = 0.1 h" settings, whose fault
/// counts depended on their testbed's wall-clock times (see
/// EXPERIMENTS.md). Arrivals are periodic at the MTBF rate, so slower
/// schemes keep receiving faults (as they would in reality) while the
/// comparison stays free of sampling variance.
pub fn poisson_faults_for(
    ff: &RunReport,
    expected_faults: f64,
    ranks: usize,
    name: &str,
) -> (FaultSchedule, f64) {
    let mtbf_s = ff.time_s / expected_faults;
    let seed = name
        .bytes()
        .fold(13u64, |h, b| h.wrapping_mul(37).wrapping_add(b as u64));
    (
        // Horizon 2× the FF time bounds the run-away feedback of very slow
        // schemes receiving ever more faults.
        FaultSchedule::periodic_time(mtbf_s, 2.0 * ff.time_s, ranks, FaultClass::Snf, seed),
        mtbf_s,
    )
}

/// Runs the standard scheme line-up on one suite matrix: returns
/// `(ff_report, per-scheme reports)` with the §5.2 parameters
/// (k evenly spaced faults, tolerance 1e-12).
///
/// The fault-free baseline runs first (its iteration count anchors the
/// fault schedule and checkpoint interval); the remaining schemes are
/// submitted to the campaign engine as one batch, so with `--jobs N`
/// they execute in parallel.
pub fn run_standard_lineup(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    k_faults: usize,
    name: &str,
    scale: Scale,
) -> (RunReport, Vec<RunReport>) {
    let ff = SchemeRun::new(a, b, ranks, Scheme::FaultFree)
        .tag(name)
        .execute();
    let interval = cr_interval_for(scale, ff.iterations);
    let specs: Vec<_> = standard_schemes(interval)
        .into_iter()
        .filter(|(scheme, _)| *scheme != Scheme::FaultFree && scheme_allowed(scheme))
        .map(|(scheme, dvfs)| {
            let faults = evenly_spaced_faults(k_faults, ff.iterations, ranks, name);
            let run = SchemeRun::new(a, b, ranks, scheme)
                .dvfs(dvfs)
                .faults(faults)
                .tag(name);
            unit_spec(a, b, name, Scale::from_env(), run.config())
        })
        .collect();
    let mut reports = execute_units(a, b, &specs);
    reports.insert(0, ff.clone());
    (ff, reports)
}

/// Convenience: fetch a suite matrix + rhs at the given scale from the
/// process-wide workload cache ([`crate::artifacts`]) — every harness
/// requesting the same `(name, scale)` shares one generated instance.
pub fn workload(name: &str, scale: Scale) -> (Arc<CsrMatrix>, Arc<Vec<f64>>) {
    crate::artifacts::workload(name, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_lineup_has_seven_schemes() {
        assert_eq!(standard_schemes(100).len(), 7);
    }

    #[test]
    fn cr_interval_scales_sensibly() {
        assert_eq!(cr_interval_for(Scale::Full, 100_000), 100);
        assert_eq!(cr_interval_for(Scale::Quick, 1200), 100);
        assert_eq!(cr_interval_for(Scale::Quick, 600), 50);
        assert_eq!(cr_interval_for(Scale::Quick, 60), 10);
    }

    #[test]
    fn lineup_runs_on_a_small_matrix() {
        let (a, b) = workload("wathen100", Scale::Quick);
        let (ff, reports) = run_standard_lineup(&a, &b, 8, 2, "wathen100", Scale::Quick);
        assert!(ff.converged);
        assert_eq!(reports.len(), 7);
        for r in &reports {
            assert!(r.converged, "{} did not converge", r.scheme);
        }
        // RD tracks FF exactly.
        assert_eq!(reports[1].iterations, ff.iterations);
    }

    #[test]
    fn poisson_plan_matches_expected_rate() {
        let (a, b) = workload("wathen100", Scale::Quick);
        let ff = run_fault_free(&a, &b, 8);
        let (sched, mtbf) = poisson_faults_for(&ff, 3.0, 8, "wathen100");
        assert!(mtbf > 0.0);
        // Expected ~3 over FF horizon, ~12 over the 4x horizon; allow slack.
        assert!(sched.len() <= 40);
    }
}
