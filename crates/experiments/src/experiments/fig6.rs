//! Figure 6 — residual histories under faults and recovery.

use rsls_core::driver::RunConfig;
use rsls_core::{DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};

use crate::output::{f2, sci, Table};
use crate::runners::run_cached;
use crate::runners::{
    cr_interval_for, evenly_spaced_faults, run_fault_free, standard_schemes, workload,
};
use crate::Scale;

/// Reproduces Figure 6: the residual-vs-iteration relation under
/// (a) a single fault at iteration 200, and (b) 10 faults on the 5-point
/// stencil. Full curves go to CSV; the printed tables summarize the jump
/// each scheme's recovery causes and the iterations to convergence.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let (summary_a, curves_a) = single_fault_table(scale, ranks);
    vec![summary_a, curves_a, stencil_table(scale, ranks)]
}

/// Long-format residual curves (scheme, iteration, residual), downsampled
/// to ~200 points per scheme — the plottable data behind Figure 6a.
fn curves_table(title: &str, runs: &[(String, rsls_core::RunReport)]) -> Table {
    let mut t = Table::new(title, &["scheme", "iteration", "relative residual"]);
    for (label, r) in runs {
        let samples = r.history.samples();
        let stride = (samples.len() / 200).max(1);
        for (k, (it, res, _)) in samples.iter().enumerate() {
            if k % stride == 0 || k + 1 == samples.len() {
                t.push_row(vec![label.clone(), it.to_string(), format!("{res:.3e}")]);
            }
        }
    }
    t
}

fn schemes_under_study(interval: usize) -> Vec<(Scheme, DvfsPolicy)> {
    standard_schemes(interval)
}

fn single_fault_table(scale: Scale, ranks: usize) -> (Table, Table) {
    // A matrix that needs comfortably more than 200 iterations.
    let (a, b) = workload("cvxbqp1", scale);
    let ff = run_fault_free(&a, &b, ranks);
    // The paper injects at iteration 200; we nudge off any multiple of the
    // checkpoint interval so CR's rollback distance is visible.
    let fault_iter = (ff.iterations / 3).clamp(10, 250);
    let interval = cr_interval_for(scale, ff.iterations);

    let mut t = Table::new(
        format!("Figure 6a — single fault at iteration {fault_iter} (cvxbqp1 analog)"),
        &["scheme", "iters", "norm iters", "residual jump after fault"],
    );
    let mut runs = Vec::new();
    for (scheme, dvfs) in schemes_under_study(interval) {
        let faults = if scheme == Scheme::FaultFree {
            FaultSchedule::fault_free()
        } else {
            FaultSchedule::single_at_iteration(fault_iter, ranks / 2, FaultClass::Snf)
        };
        let mut cfg = RunConfig::new(scheme, ranks)
            .with_faults(faults)
            .with_dvfs(dvfs);
        cfg.record_history = true;
        cfg.run_tag = format!("fig6a-{}", scheme.label().replace([' ', '(', ')'], ""));
        let r = run_cached(&a, &b, "fig6a-cvxbqp1", cfg);
        t.push_row(vec![
            r.scheme.clone(),
            r.iterations.to_string(),
            f2(r.iterations as f64 / ff.iterations as f64),
            sci(r.history.worst_fault_jump()),
        ]);
        runs.push((r.scheme.clone(), r));
    }
    let curves = curves_table("Figure 6a — residual curves (long format)", &runs);
    (t, curves)
}

fn stencil_table(scale: Scale, ranks: usize) -> Table {
    let (a, b) = workload("5-point stencil", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let interval = cr_interval_for(scale, ff.iterations);

    let mut t = Table::new(
        "Figure 6b — 10 faults on the 5-point stencil",
        &["scheme", "iters", "norm iters", "converged"],
    );
    for (scheme, dvfs) in schemes_under_study(interval) {
        let faults = if scheme == Scheme::FaultFree {
            FaultSchedule::fault_free()
        } else {
            evenly_spaced_faults(10, ff.iterations, ranks, "fig6b")
        };
        let mut cfg = RunConfig::new(scheme, ranks)
            .with_faults(faults)
            .with_dvfs(dvfs);
        cfg.record_history = true;
        cfg.run_tag = format!("fig6b-{}", scheme.label().replace([' ', '(', ')'], ""));
        let r = run_cached(&a, &b, "fig6b-stencil", cfg);
        t.push_row(vec![
            r.scheme.clone(),
            r.iterations.to_string(),
            f2(r.iterations as f64 / ff.iterations as f64),
            r.converged.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsls_core::ForwardKind;

    #[test]
    fn single_fault_residual_jumps_except_for_rd() {
        // Figure 6a's observation: "the residual increases for all
        // recovery schemes except for RD, which overlaps with the FF case".
        let (a, b) = workload("wathen100", Scale::Quick);
        let ranks = 8;
        let ff = run_fault_free(&a, &b, ranks);
        let fault_iter = ff.iterations / 2;

        let jump_of = |scheme: Scheme| {
            let mut cfg = RunConfig::new(scheme, ranks).with_faults(
                FaultSchedule::single_at_iteration(fault_iter, 3, FaultClass::Snf),
            );
            cfg.record_history = true;
            cfg.run_tag = format!("fig6-test-{}", scheme.label().replace([' ', '(', ')'], ""));
            run_cached(&a, &b, "fig6-test", cfg)
                .history
                .worst_fault_jump()
        };

        let rd = jump_of(Scheme::Dmr);
        let f0 = jump_of(Scheme::Forward(ForwardKind::Zero));
        let li = jump_of(Scheme::li_local_cg());
        assert!(rd <= 1.0 + 1e-9, "RD must not jump: {rd}");
        assert!(f0 > 10.0, "F0 must jump hard: {f0}");
        assert!(li < f0, "LI's jump ({li}) must be milder than F0's ({f0})");
    }
}
