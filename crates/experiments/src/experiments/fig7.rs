//! Figure 7 — DVFS power reduction and energy savings.

use rsls_core::{DvfsPolicy, Scheme};

use crate::output::{f2, f3, Table};
use crate::runners::{evenly_spaced_faults, run_fault_free, workload, SchemeRun};
use crate::{Scale, SUITE};

/// Figure 7a — the power profile of nd24k on a single 24-core node under
/// plain LI vs LI-DVFS. The printed table summarizes the plateau levels;
/// the full resampled profile is what the CSV dump carries.
pub fn run_a(scale: Scale) -> Vec<Table> {
    let ranks = scale.node_ranks();
    let (a, b) = workload("nd24k", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let faults = evenly_spaced_faults(5, ff.iterations, ranks, "fig7a");

    let mut t = Table::new(
        "Figure 7a — construction-phase power of nd24k (24-core node)",
        &[
            "scheme",
            "compute power (W)",
            "construction power (W)",
            "construction/compute",
            "reduction vs plain LI",
            "time (norm)",
        ],
    );
    let mut plain_trough = None;
    let mut traces = Table::new(
        "Figure 7a — power traces (long format)",
        &["scheme", "time (s)", "power (W)"],
    );
    for dvfs in [DvfsPolicy::OsDefault, DvfsPolicy::ThrottleWaiters] {
        let r = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
            .dvfs(dvfs)
            .faults(faults.clone())
            .tag("fig7a")
            .execute();
        // Plateau detection from the recorded profile: the top level is the
        // compute plateau, the lowest sustained level during the run is the
        // construction plateau.
        let peak = r
            .power_profile
            .iter()
            .map(|s| s.watts)
            .fold(0.0f64, f64::max);
        let trough = r
            .power_profile
            .iter()
            .map(|s| s.watts)
            .fold(f64::INFINITY, f64::min);
        // The §4.2 headline: power reduction of the DVFS-managed
        // construction phase relative to the unmanaged one (~39-40%).
        let vs_plain = match plain_trough {
            None => {
                plain_trough = Some(trough);
                "-".to_string()
            }
            Some(p) => format!("{:.0}%", (1.0 - trough / p) * 100.0),
        };
        t.push_row(vec![
            r.scheme.clone(),
            f2(peak),
            f2(trough),
            f2(trough / peak),
            vs_plain,
            f3(r.time_s / ff.time_s),
        ]);
        // Downsample the piecewise profile to ~400 trace points.
        for seg in &r.power_profile {
            traces.push_row(vec![
                r.scheme.clone(),
                format!("{:.6e}", seg.t0),
                f2(seg.watts),
            ]);
            traces.push_row(vec![
                r.scheme.clone(),
                format!("{:.6e}", seg.t1),
                f2(seg.watts),
            ]);
        }
    }
    vec![t, traces]
}

/// Figure 7b — average normalized time/power/energy over the 14-matrix
/// suite for LI/LSI with and without the DVFS optimization, plus the
/// resilience-energy share.
pub fn run_b(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let variants: [(&str, Scheme, DvfsPolicy); 4] = [
        ("LI", Scheme::li_local_cg(), DvfsPolicy::OsDefault),
        (
            "LI-DVFS",
            Scheme::li_local_cg(),
            DvfsPolicy::ThrottleWaiters,
        ),
        ("LSI", Scheme::lsi_local_cg(), DvfsPolicy::OsDefault),
        (
            "LSI-DVFS",
            Scheme::lsi_local_cg(),
            DvfsPolicy::ThrottleWaiters,
        ),
    ];

    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64); variants.len()];
    let mut count = 0usize;
    for spec in SUITE {
        let (a, b) = workload(spec.name, scale);
        let ff = run_fault_free(&a, &b, ranks);
        let faults = evenly_spaced_faults(10, ff.iterations, ranks, spec.name);
        for (i, (_, scheme, dvfs)) in variants.iter().enumerate() {
            let r = SchemeRun::new(&a, &b, ranks, *scheme)
                .dvfs(*dvfs)
                .faults(faults.clone())
                .tag("fig7b")
                .execute();
            let n = r.normalized_vs(&ff);
            sums[i].0 += n.time;
            sums[i].1 += n.power;
            sums[i].2 += n.energy;
            sums[i].3 += r.resilience_energy_fraction();
        }
        count += 1;
    }

    let mut t = Table::new(
        format!("Figure 7b — suite-average normalized T/P/E ({count} matrices, 10 faults)"),
        &["scheme", "T", "P", "E", "E_res share"],
    );
    for (i, (label, _, _)) in variants.iter().enumerate() {
        let c = count as f64;
        t.push_row(vec![
            label.to_string(),
            f2(sums[i].0 / c),
            f2(sums[i].1 / c),
            f2(sums[i].2 / c),
            f2(sums[i].3 / c),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_construction_power_drops_about_forty_percent() {
        // §4.2 / Figure 7a: power during reconstruction drops ~39-40%
        // relative to the un-throttled construction phase, and the node
        // sits near 0.45x of the compute plateau.
        let ranks = 24;
        let (a, b) = workload("nd24k", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let faults = evenly_spaced_faults(5, ff.iterations, ranks, "fig7a-test");
        let trough_of = |dvfs| {
            let r = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
                .dvfs(dvfs)
                .faults(faults.clone())
                .tag("f7t")
                .execute();
            let peak = r
                .power_profile
                .iter()
                .map(|s| s.watts)
                .fold(0.0f64, f64::max);
            let trough = r
                .power_profile
                .iter()
                .map(|s| s.watts)
                .fold(f64::INFINITY, f64::min);
            (peak, trough)
        };
        let (peak_plain, trough_plain) = trough_of(DvfsPolicy::OsDefault);
        let (_, trough_dvfs) = trough_of(DvfsPolicy::ThrottleWaiters);
        let plain_ratio = trough_plain / peak_plain;
        let dvfs_ratio = trough_dvfs / peak_plain;
        assert!(
            (plain_ratio - 0.75).abs() < 0.05,
            "plain construction ratio {plain_ratio} (paper: 0.75)"
        );
        assert!(
            (dvfs_ratio - 0.45).abs() < 0.05,
            "DVFS construction ratio {dvfs_ratio} (paper: 0.45)"
        );
        let reduction = 1.0 - trough_dvfs / trough_plain;
        assert!(
            (reduction - 0.40).abs() < 0.05,
            "DVFS reduction {reduction} (paper: ~39-40%)"
        );
    }
}
