//! Figure 3 — accuracy and cost of different recovery mechanisms.

use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};

use crate::campaign::{execute_units, unit_spec};
use crate::output::{f2, sci, Table};
use crate::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use crate::Scale;

/// Reproduces Figure 3: time and energy overhead (normalized to FF) of
/// RD, CR (to disk) and FW on the Andrews matrix, with faults arriving at
/// a Poisson rate. The paper sets MTBF = 0.1 h on its testbed; here the
/// MTBF is set so the *fault count over the run* matches that regime
/// (≈ 4 faults per FF execution — see EXPERIMENTS.md).
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let (a, b) = workload("Andrews", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let (faults, mtbf_s) = poisson_faults_for(&ff, 4.0, ranks, "fig3");

    let schemes: Vec<(Scheme, DvfsPolicy)> = vec![
        (Scheme::FaultFree, DvfsPolicy::OsDefault),
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval: CheckpointInterval::Young,
            },
            DvfsPolicy::OsDefault,
        ),
        (Scheme::li_local_cg(), DvfsPolicy::ThrottleWaiters),
        (Scheme::lsi_local_cg(), DvfsPolicy::ThrottleWaiters),
    ];

    let mut t = Table::new(
        "Figure 3 — accuracy and cost of recovery mechanisms (Andrews analog)",
        &[
            "scheme",
            "final residual",
            "norm time",
            "norm energy",
            "faults",
        ],
    );
    // One batch: the engine runs these in parallel under `--jobs N`.
    let specs: Vec<_> = schemes
        .iter()
        .filter(|(scheme, _)| *scheme != Scheme::FaultFree)
        .map(|(scheme, dvfs)| {
            let run = SchemeRun::new(&a, &b, ranks, *scheme)
                .dvfs(*dvfs)
                .faults(faults.clone())
                .tag("fig3")
                .mtbf_s(mtbf_s);
            unit_spec(&a, &b, "fig3", scale, run.config())
        })
        .collect();
    let mut reports = execute_units(&a, &b, &specs);
    reports.insert(0, ff.clone());
    for r in reports {
        let n = r.normalized_vs(&ff);
        t.push_row(vec![
            r.scheme.clone(),
            sci(r.final_relative_residual),
            f2(n.time),
            f2(n.energy),
            r.faults_injected.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fw_consumes_less_energy_than_rd_and_cr() {
        // Figure 3's key observation: "FW consumes the least energy among
        // the recovery mechanisms". Enough ranks that the per-rank block
        // (and hence the reconstruction) stays thin, as on the paper's
        // 192-core platform.
        let ranks = 64;
        let (a, b) = workload("Andrews", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf) = poisson_faults_for(&ff, 3.0, ranks, "fig3-test");
        let rd = SchemeRun::new(&a, &b, ranks, Scheme::Dmr)
            .faults(faults.clone())
            .tag("f3t")
            .mtbf_s(mtbf)
            .execute();
        let fw = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
            .dvfs(DvfsPolicy::ThrottleWaiters)
            .faults(faults.clone())
            .tag("f3t")
            .mtbf_s(mtbf)
            .execute();
        let cr = SchemeRun::new(&a, &b, ranks, Scheme::cr_disk())
            .faults(faults)
            .tag("f3t")
            .mtbf_s(mtbf)
            .execute();
        assert!(fw.converged && cr.converged && rd.converged);
        let e_fw = fw.energy_j / ff.energy_j;
        let e_rd = rd.energy_j / ff.energy_j;
        let e_cr = cr.energy_j / ff.energy_j;
        assert!(e_fw < e_rd, "FW {e_fw} must beat RD {e_rd}");
        assert!(e_fw < e_cr, "FW {e_fw} must beat CR-D {e_cr}");
    }
}
