//! One harness per paper figure/table.
//!
//! Every harness has the signature `run(scale: Scale) -> Vec<Table>` and
//! is registered in [`ALL`] so `rsls-run --all` can iterate them.

pub mod extensions;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig5x;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use crate::{Scale, Table};

/// A registered experiment.
#[derive(Debug)]
pub struct Experiment {
    /// CLI name (`fig5`, `table6`, ...).
    pub name: &'static str,
    /// What the experiment reproduces.
    pub description: &'static str,
    /// The harness entry point.
    pub run: fn(Scale) -> Vec<Table>,
}

/// All experiments in paper order.
pub static ALL: &[Experiment] = &[
    Experiment {
        name: "fig1",
        description: "Estimated MTBF for exascale systems from petascale systems",
        run: fig1::run,
    },
    Experiment {
        name: "fig3",
        description: "Accuracy and cost of different recovery mechanisms (Andrews)",
        run: fig3::run,
    },
    Experiment {
        name: "fig4",
        description: "CG-based LI/LSI construction vs LU/QR baselines (Kuu, 5 faults)",
        run: fig4::run,
    },
    Experiment {
        name: "fig5",
        description: "Iterations to convergence, 14 matrices, 10 faults",
        run: fig5::run,
    },
    Experiment {
        name: "fig5x",
        description: "Related-work schemes (CR-LC, ABFT-CR, MNF) vs the paper line-up",
        run: fig5x::run,
    },
    Experiment {
        name: "fig6",
        description: "Residual histories under faults and recovery",
        run: fig6::run,
    },
    Experiment {
        name: "fig7a",
        description: "Power profile of nd24k with LI vs LI-DVFS",
        run: fig7::run_a,
    },
    Experiment {
        name: "fig7b",
        description: "Average T/P/E for the suite with and without DVFS",
        run: fig7::run_b,
    },
    Experiment {
        name: "fig8",
        description: "Time/energy/power trade-offs for x104, nd24k, cvxbqp1",
        run: fig8::run,
    },
    Experiment {
        name: "fig9",
        description: "Projected resilience overhead under weak scaling",
        run: fig9::run,
    },
    Experiment {
        name: "extensions",
        description: "Beyond-paper: TMR, multilevel CR, interval policies, SWO",
        run: extensions::run,
    },
    Experiment {
        name: "table3",
        description: "Matrix suite properties",
        run: table3::run,
    },
    Experiment {
        name: "table4",
        description: "Normalized iterations vs process count (crystm02)",
        run: table4::run,
    },
    Experiment {
        name: "table5",
        description: "Normalized time/power/energy cost of resilience",
        run: table5::run,
    },
    Experiment {
        name: "table6",
        description: "Model validation for x104",
        run: table6::run,
    },
];

/// Looks up an experiment by CLI name (one lookup path for every
/// front end: delegates to [`crate::registry::ExperimentRegistry`]).
pub fn by_name(name: &str) -> Option<&'static Experiment> {
    crate::registry::ExperimentRegistry::builtin().get(name)
}
