//! Figure 5 — iterations to convergence for the full suite, 10 faults.

use crate::output::{f2, Table};
use crate::runners::{lineup_labels, run_standard_lineup, workload};
use crate::{Scale, SUITE};

/// Reproduces Figure 5: for every suite matrix, the number of iterations
/// to convergence under each recovery mechanism, normalized to the
/// fault-free run of that matrix (10 evenly spaced faults, tol 1e-12,
/// CR to disk). Headers follow the active `--schemes` filter.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let mut headers = vec!["matrix".to_string()];
    headers.extend(lineup_labels());
    let mut t = Table::new(
        format!(
            "Figure 5 — normalized iterations to convergence ({} processes, 10 faults)",
            ranks
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for spec in SUITE {
        let (a, b) = workload(spec.name, scale);
        let (ff, reports) = run_standard_lineup(&a, &b, ranks, 10, spec.name, scale);
        let mut row = vec![spec.name.to_string()];
        for r in &reports {
            row.push(f2(r.iterations as f64 / ff.iterations.max(1) as f64));
        }
        t.push_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runners::run_standard_lineup;

    #[test]
    fn one_matrix_shows_the_papers_ordering() {
        // Spot-check the Figure 5 shape on one representative matrix:
        // RD == FF <= {LI, LSI} <= CR (rollback) and F0/FI worst.
        let (a, b) = workload("crystm02", Scale::Quick);
        let (ff, reports) = run_standard_lineup(&a, &b, 8, 10, "crystm02", Scale::Quick);
        let iters: Vec<usize> = reports.iter().map(|r| r.iterations).collect();
        let (rd, f0, fi, li, lsi, cr) =
            (iters[1], iters[2], iters[3], iters[4], iters[5], iters[6]);
        assert_eq!(rd, ff.iterations, "RD tracks FF");
        assert!(li < f0, "LI {li} must beat F0 {f0}");
        assert!(lsi < f0, "LSI {lsi} must beat F0 {f0}");
        assert!(f0 > ff.iterations && fi > ff.iterations);
        assert!(cr > ff.iterations, "CR rolls back and recomputes");
    }
}
