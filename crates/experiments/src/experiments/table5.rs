//! Table 5 — suite-average normalized time/power/energy per scheme.

use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};

use crate::output::{f2, Table};
use crate::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use crate::{Scale, SUITE};

/// Reproduces Table 5: time, power, and energy cost of resilience per
/// scheme, averaged over all suite matrices and normalized to FF.
/// Checkpoint intervals follow Young's formula (the §5.3 methodology);
/// fault arrivals are Poisson at the same per-run rate for every scheme.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let schemes: [(Scheme, DvfsPolicy); 5] = [
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (Scheme::li_local_cg(), DvfsPolicy::ThrottleWaiters),
        (Scheme::lsi_local_cg(), DvfsPolicy::ThrottleWaiters),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Memory,
                interval: CheckpointInterval::Young,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval: CheckpointInterval::Young,
            },
            DvfsPolicy::OsDefault,
        ),
    ];

    let mut labels: Vec<String> = Vec::new();
    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); schemes.len()];
    let mut count = 0usize;
    for spec in SUITE {
        let (a, b) = workload(spec.name, scale);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf_s) = poisson_faults_for(&ff, 4.0, ranks, spec.name);
        for (i, (scheme, dvfs)) in schemes.iter().enumerate() {
            let r = SchemeRun::new(&a, &b, ranks, *scheme)
                .dvfs(*dvfs)
                .faults(faults.clone())
                .tag(format!("t5-{}", spec.name))
                .mtbf_s(mtbf_s)
                .execute();
            let n = r.normalized_vs(&ff);
            sums[i].0 += n.time;
            sums[i].1 += n.power;
            sums[i].2 += n.energy;
            if count == 0 {
                labels.push(r.scheme.clone());
            }
        }
        count += 1;
    }

    let mut t = Table::new(
        format!("Table 5 — normalized cost of resilience (suite average, {count} matrices)"),
        &["scheme", "Time", "Power", "Energy"],
    );
    t.push_row(vec!["FF".into(), f2(1.0), f2(1.0), f2(1.0)]);
    for (i, label) in labels.iter().enumerate() {
        let c = count as f64;
        t.push_row(vec![
            label.clone(),
            f2(sums[i].0 / c),
            f2(sums[i].1 / c),
            f2(sums[i].2 / c),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_holds_on_one_matrix() {
        // The cheap slice of Table 5's ordering: RD power 2x;
        // CR-D time > CR-M time; LI-DVFS power < 1.
        let ranks = 8;
        let (a, b) = workload("crystm02", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf) = poisson_faults_for(&ff, 4.0, ranks, "t5-test");
        let rd = SchemeRun::new(&a, &b, ranks, Scheme::Dmr)
            .faults(faults.clone())
            .tag("t5t")
            .mtbf_s(mtbf)
            .execute();
        let li = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
            .dvfs(DvfsPolicy::ThrottleWaiters)
            .faults(faults.clone())
            .tag("t5t")
            .mtbf_s(mtbf)
            .execute();
        let crm = SchemeRun::new(&a, &b, ranks, Scheme::cr_memory())
            .faults(faults.clone())
            .tag("t5t")
            .mtbf_s(mtbf)
            .execute();
        let crd = SchemeRun::new(&a, &b, ranks, Scheme::cr_disk())
            .faults(faults)
            .tag("t5t")
            .mtbf_s(mtbf)
            .execute();
        assert!((rd.avg_power_w / ff.avg_power_w - 2.0).abs() < 0.05);
        assert!(
            crd.time_s > crm.time_s,
            "CR-D must cost more time than CR-M"
        );
        assert!(
            li.avg_power_w < ff.avg_power_w,
            "LI-DVFS reduces average power"
        );
    }
}
