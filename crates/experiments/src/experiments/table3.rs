//! Table 3 — matrix suite properties (paper values vs generated analogs).

use rsls_core::driver::RunConfig;
use rsls_core::Scheme;

use crate::output::{f2, Table};
use crate::runners::run_cached;
use crate::{Scale, SUITE};

/// Reproduces Table 3 with both the paper's reported properties and the
/// measured properties of the generated analogs (rows, nnz/row, fault-free
/// iterations at tolerance 1e-12).
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3 — suite properties (paper vs generated analog)",
        &[
            "name",
            "kind",
            "paper rows",
            "analog rows",
            "paper nnz/row",
            "analog nnz/row",
            "paper iters",
            "analog iters",
        ],
    );
    for spec in SUITE {
        let a = spec.generate(scale);
        let b = spec.rhs(&a);
        let ff = run_cached(&a, &b, spec.name, RunConfig::new(Scheme::FaultFree, 1));
        t.push_row(vec![
            spec.name.to_string(),
            spec.problem_kind.to_string(),
            spec.paper_rows.to_string(),
            a.nrows().to_string(),
            spec.paper_nnz_per_row.to_string(),
            f2(a.nnz_per_row()),
            spec.paper_iters.to_string(),
            ff.iterations.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs the full suite; exercised by rsls-run and benches"]
    fn table_has_all_fourteen_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].rows.len(), 14);
    }
}
