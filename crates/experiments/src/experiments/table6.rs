//! Table 6 — model validation for x104.

use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};
use rsls_models::validate;

use crate::output::{f2, Table};
use crate::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use crate::Scale;

/// Reproduces Table 6: for matrix x104, the §3 models' predicted
/// `T_res`, `P`, and `E_res` (normalized to FF) against the measured
/// values, per scheme.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let (a, b) = workload("x104", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let (faults, mtbf_s) = poisson_faults_for(&ff, 4.0, ranks, "table6");

    let schemes: [(Scheme, DvfsPolicy); 5] = [
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (Scheme::li_local_cg(), DvfsPolicy::ThrottleWaiters),
        (Scheme::lsi_local_cg(), DvfsPolicy::ThrottleWaiters),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Memory,
                interval: CheckpointInterval::Young,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval: CheckpointInterval::Young,
            },
            DvfsPolicy::OsDefault,
        ),
    ];

    let mut t = Table::new(
        "Table 6 — model vs experiment for x104 (normalized to FF)",
        &[
            "scheme",
            "model T_res",
            "model P",
            "model E_res",
            "exp T_res",
            "exp P",
            "exp E_res",
        ],
    );
    t.push_row(vec![
        "FF".into(),
        f2(0.0),
        f2(1.0),
        f2(0.0),
        f2(0.0),
        f2(1.0),
        f2(0.0),
    ]);
    for (scheme, dvfs) in schemes {
        let r = SchemeRun::new(&a, &b, ranks, scheme)
            .dvfs(dvfs)
            .faults(faults.clone())
            .tag("table6")
            .mtbf_s(mtbf_s)
            .execute();
        let row = validate(&r, &ff);
        t.push_row(vec![
            row.scheme.clone(),
            f2(row.model_t_res),
            f2(row.model_p),
            f2(row.model_e_res),
            f2(row.exp_t_res),
            f2(row.exp_p),
            f2(row.exp_e_res),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_experiment_agree_on_scheme_ordering() {
        // Table 6's purpose: "our main goal is to provide comparison and
        // relative order between the schemes". Check that model and
        // experiment order CR-D vs CR-M the same way.
        let ranks = 8;
        let (a, b) = workload("x104", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf) = poisson_faults_for(&ff, 4.0, ranks, "t6-test");
        let crm = SchemeRun::new(&a, &b, ranks, Scheme::cr_memory())
            .faults(faults.clone())
            .tag("t6t")
            .mtbf_s(mtbf)
            .execute();
        let crd = SchemeRun::new(&a, &b, ranks, Scheme::cr_disk())
            .faults(faults)
            .tag("t6t")
            .mtbf_s(mtbf)
            .execute();
        let vm = validate(&crm, &ff);
        let vd = validate(&crd, &ff);
        assert!(vd.exp_t_res > vm.exp_t_res, "measured: CR-D > CR-M");
        assert!(vd.model_t_res > vm.model_t_res, "modeled: CR-D > CR-M");
    }
}
