//! Figure 8 — time/energy/power trade-offs for three contrasting matrices.

use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};

use crate::output::{f2, Table};
use crate::runners::{poisson_faults_for, run_fault_free, workload, SchemeRun};
use crate::Scale;

/// The three matrices of Figure 8 (x — irregular structure; n — very
/// dense rows; c — sparse and regular).
const MATRICES: [&str; 3] = ["x104", "nd24k", "cvxbqp1"];

/// Reproduces Figure 8: normalized time, energy, and average CPU power
/// for x104, nd24k and cvxbqp1 under RD, LI-DVFS, LSI-DVFS, CR-M, CR-D —
/// showing that the best scheme depends on the workload.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let mut tables = Vec::new();
    for name in MATRICES {
        let (a, b) = workload(name, scale);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf_s) = poisson_faults_for(&ff, 4.0, ranks, name);

        let schemes: [(Scheme, DvfsPolicy); 5] = [
            (Scheme::Dmr, DvfsPolicy::OsDefault),
            (Scheme::li_local_cg(), DvfsPolicy::ThrottleWaiters),
            (Scheme::lsi_local_cg(), DvfsPolicy::ThrottleWaiters),
            (
                Scheme::Checkpoint {
                    storage: CheckpointStorage::Memory,
                    interval: CheckpointInterval::Young,
                },
                DvfsPolicy::OsDefault,
            ),
            (
                Scheme::Checkpoint {
                    storage: CheckpointStorage::Disk,
                    interval: CheckpointInterval::Young,
                },
                DvfsPolicy::OsDefault,
            ),
        ];

        let mut t = Table::new(
            format!("Figure 8 — normalized T/E/P for {name}"),
            &["scheme", "T", "E", "P", "iters"],
        );
        t.push_row(vec![
            "FF".to_string(),
            f2(1.0),
            f2(1.0),
            f2(1.0),
            ff.iterations.to_string(),
        ]);
        for (scheme, dvfs) in schemes {
            let r = SchemeRun::new(&a, &b, ranks, scheme)
                .dvfs(dvfs)
                .faults(faults.clone())
                .tag(format!("fig8-{name}"))
                .mtbf_s(mtbf_s)
                .execute();
            let n = r.normalized_vs(&ff);
            t.push_row(vec![
                r.scheme.clone(),
                f2(n.time),
                f2(n.energy),
                f2(n.power),
                r.iterations.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fw_recovery_is_structure_sensitive() {
        // Figure 8's thesis: the best scheme depends on the workload
        // because FW's recovery quality depends on matrix structure. With
        // identical fault counts, LI's *iteration* overhead on a
        // regular-banded matrix (crystm02) must be smaller than on the
        // dense-row matrix (nd24k), where the diagonal block captures a
        // smaller share of each row's coupling.
        use crate::runners::evenly_spaced_faults;
        let ranks = 8;
        let mut overheads = Vec::new();
        for name in ["crystm02", "nd24k"] {
            let (a, b) = workload(name, Scale::Quick);
            let ff = run_fault_free(&a, &b, ranks);
            let faults = evenly_spaced_faults(5, ff.iterations, ranks, "f8t");
            let fw = SchemeRun::new(&a, &b, ranks, Scheme::li_local_cg())
                .dvfs(DvfsPolicy::ThrottleWaiters)
                .faults(faults)
                .tag(format!("f8t-{name}"))
                .execute();
            assert!(fw.converged);
            overheads.push(fw.iterations as f64 / ff.iterations as f64);
        }
        assert!(
            overheads[0] < overheads[1],
            "regular crystm02 ({}) should recover more cheaply than dense-row nd24k ({})",
            overheads[0],
            overheads[1]
        );
    }
}
