//! Figure 5x — the related-work recovery schemes (CR-LC, ABFT-CR, MNF)
//! alongside the paper's §5.2 line-up.
//!
//! Two tables:
//!
//! 1. the full scheme comparison under one mid-run node fault — time,
//!    energy, iterations (normalized to FF), and checkpoint traffic,
//!    so the lossy-compression and exact-state trade-offs are visible
//!    next to the original seven mechanisms;
//! 2. MNF under *correlated* multi-rank failures: `k` ranks lost at
//!    the same iteration, reconstructed together from the survivors
//!    (the regime single-failure schemes cannot handle at all).

use rsls_core::interval::CheckpointInterval;
use rsls_core::{RunReport, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};

use crate::campaign::{execute_units, unit_spec};
use crate::output::{f2, f3, Table};
use crate::runners::{
    cr_interval_for, run_fault_free, scheme_allowed, standard_schemes, workload, SchemeRun,
};
use crate::Scale;

/// The matrices the comparison runs on: one small well-conditioned
/// system and one larger one, enough to show the scheme ordering
/// without re-running the whole suite.
const MATRICES: &[&str] = &["crystm02", "wathen100"];

/// Ranks lost simultaneously in the correlated-failure table.
const MULTI_KS: &[usize] = &[2, 3, 4];

fn scheme_row(name: &str, ff: &RunReport, r: &RunReport) -> Vec<String> {
    vec![
        name.to_string(),
        r.scheme.clone(),
        r.iterations.to_string(),
        f2(r.iterations as f64 / ff.iterations.max(1) as f64),
        f3(r.time_s / ff.time_s),
        f3(r.energy_j / ff.energy_j),
        format!("{}", r.checkpoint_bytes_written),
    ]
}

/// Reproduces the extended comparison.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let mut lineup = Table::new(
        format!(
            "Figure 5x — recovery-scheme comparison incl. CR-LC / ABFT-CR / MNF \
             ({ranks} processes, 1 mid-run fault)"
        ),
        &[
            "matrix",
            "scheme",
            "iters",
            "iters/FF",
            "T/T_FF",
            "E/E_FF",
            "ckpt bytes",
        ],
    );
    let mut multi = Table::new(
        format!("Figure 5x — MNF under k simultaneous rank failures ({ranks} processes)"),
        &[
            "matrix",
            "k failed",
            "iters",
            "iters/FF",
            "T/T_FF",
            "E/E_FF",
            "reconstruct [s]",
        ],
    );

    for &name in MATRICES {
        let (a, b) = workload(name, scale);
        let ff = run_fault_free(&a, &b, ranks);
        let interval = cr_interval_for(scale, ff.iterations);
        // One fault strictly between two checkpoints, so the rollback
        // distance is the same for every checkpointed scheme.
        let fault_iter = (ff.iterations / 2 / interval.max(1)) * interval + interval / 2;
        let fault = FaultSchedule::single_at_iteration(fault_iter.max(1), 3, FaultClass::Snf);

        let every = CheckpointInterval::EveryIterations(interval);
        let mut schemes = standard_schemes(interval);
        schemes.push((
            Scheme::LossyCheckpoint {
                interval: every,
                keep_mantissa_bits: 26,
            },
            rsls_core::DvfsPolicy::OsDefault,
        ));
        schemes.push((
            Scheme::AbftCheckpoint { interval: every },
            rsls_core::DvfsPolicy::OsDefault,
        ));
        schemes.push((Scheme::mnf(), rsls_core::DvfsPolicy::OsDefault));

        let specs: Vec<_> = schemes
            .into_iter()
            .filter(|(scheme, _)| *scheme != Scheme::FaultFree && scheme_allowed(scheme))
            .map(|(scheme, dvfs)| {
                let run = SchemeRun::new(&a, &b, ranks, scheme)
                    .dvfs(dvfs)
                    .faults(fault.clone())
                    .tag(name);
                unit_spec(&a, &b, name, Scale::from_env(), run.config())
            })
            .collect();
        lineup.push_row(scheme_row(name, &ff, &ff));
        for r in execute_units(&a, &b, &specs) {
            lineup.push_row(scheme_row(name, &ff, &r));
        }

        // Correlated failures: k ranks die at the same iteration; MNF
        // rebuilds every lost block from the survivors in one union
        // solve. The failed set is spread across the partition.
        if !scheme_allowed(&Scheme::mnf()) {
            continue;
        }
        for &k in MULTI_KS {
            let lost: Vec<usize> = (0..k).map(|i| (i * ranks) / k).collect();
            let sched =
                FaultSchedule::multiple_at_iteration(fault_iter.max(1), &lost, FaultClass::Snf);
            let run = SchemeRun::new(&a, &b, ranks, Scheme::mnf())
                .faults(sched)
                .tag(name);
            let spec = unit_spec(&a, &b, name, Scale::from_env(), run.config());
            let r = &execute_units(&a, &b, &[spec])[0];
            multi.push_row(vec![
                name.to_string(),
                k.to_string(),
                r.iterations.to_string(),
                f2(r.iterations as f64 / ff.iterations.max(1) as f64),
                f3(r.time_s / ff.time_s),
                f3(r.energy_j / ff.energy_j),
                f3(r.breakdown.reconstruct_s),
            ]);
        }
    }
    vec![lineup, multi]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5x_covers_the_new_schemes_and_multi_rank_failures() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let lineup = tables[0].render();
        for scheme in ["FF", "CR-LC", "ABFT-CR", "MNF", "CR-D", "LI", "LSI"] {
            assert!(lineup.contains(scheme), "line-up must include {scheme}");
        }
        let multi = tables[1].render();
        for k in MULTI_KS {
            assert!(
                multi.lines().any(|l| {
                    let mut cols = l.split_whitespace();
                    cols.next().is_some() && cols.next() == Some(&k.to_string())
                }),
                "multi-rank table must include k={k}"
            );
        }
    }
}
