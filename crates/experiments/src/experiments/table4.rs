//! Table 4 — normalized iterations vs process count (crystm02).

use crate::output::{f2, Table};
use crate::runners::{lineup_labels, run_standard_lineup, workload};
use crate::Scale;

/// Process counts exercised per scale (the paper uses 4–256; quick runs
/// stop at 64 because the shrunk analog's blocks get too thin beyond).
fn process_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 16, 64],
        Scale::Full => vec![4, 16, 64, 256],
    }
}

/// Reproduces Table 4: for crystm02 (fixed-size problem) the number of
/// iterations per scheme is normalized to fault-free — and stays constant
/// across process counts, because the recovery mathematics depends on the
/// *data* lost, not on how many processes hold it... up to the caveat that
/// a larger process count means a *smaller* lost block per fault.
pub fn run(scale: Scale) -> Vec<Table> {
    let (a, b) = workload("crystm02", scale);
    let mut headers = vec!["#p".to_string()];
    headers.extend(lineup_labels());
    let mut t = Table::new(
        "Table 4 — normalized iterations vs process count (crystm02, 10 faults)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for p in process_counts(scale) {
        let (ff, reports) = run_standard_lineup(&a, &b, p, 10, "crystm02-t4", scale);
        let mut row = vec![p.to_string()];
        for r in &reports {
            row.push(f2(r.iterations as f64 / ff.iterations.max(1) as f64));
        }
        t.push_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runners::{evenly_spaced_faults, run_fault_free, SchemeRun};
    use rsls_core::Scheme;

    #[test]
    fn rd_is_invariant_across_process_counts() {
        // The cheapest slice of the Table 4 claim: RD tracks FF at any p.
        let (a, b) = workload("wathen100", Scale::Quick);
        for p in [4usize, 16] {
            let ff = run_fault_free(&a, &b, p);
            let faults = evenly_spaced_faults(5, ff.iterations, p, "t4-rd");
            let rd = SchemeRun::new(&a, &b, p, Scheme::Dmr)
                .faults(faults)
                .tag("t4-rd")
                .execute();
            assert_eq!(rd.iterations, ff.iterations, "p = {p}");
        }
    }
}
