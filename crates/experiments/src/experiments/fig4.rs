//! Figure 4 — CG-based construction vs LU/QR baselines (Kuu, 5 faults).

use rsls_core::{ConstructionMethod, ForwardKind, Scheme};

use crate::output::{f2, sci, Table};
use crate::runners::{evenly_spaced_faults, run_fault_free, workload, SchemeRun};
use crate::Scale;

/// Construction tolerances swept for the CG-based schemes (the paper's
/// x-axis).
const TOLERANCES: [f64; 5] = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10];

/// Reproduces Figure 4: time-to-solution of LI/LSI with the optimized
/// local-CG construction (one point per inner tolerance) against the
/// exact LU-based LI and QR-based LSI baselines.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    let (a, b) = workload("Kuu", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let faults = evenly_spaced_faults(5, ff.iterations, ranks, "fig4");

    let mut t = Table::new(
        "Figure 4 — time-to-solution with CG-based construction (Kuu, 5 faults)",
        &["scheme", "inner tol", "iters", "time (s)", "norm time"],
    );

    // Exact baselines first.
    for (label, scheme) in [
        ("LI (LU)", Scheme::li_exact()),
        ("LSI (QR)", Scheme::lsi_exact()),
    ] {
        let r = SchemeRun::new(&a, &b, ranks, scheme)
            .faults(faults.clone())
            .tag("fig4")
            .execute();
        t.push_row(vec![
            label.to_string(),
            "exact".to_string(),
            r.iterations.to_string(),
            sci(r.time_s),
            f2(r.time_s / ff.time_s),
        ]);
    }

    // CG-based sweeps.
    for tol in TOLERANCES {
        for (label, kind) in [
            (
                "LI (CG)",
                ForwardKind::Linear as fn(ConstructionMethod) -> ForwardKind,
            ),
            (
                "LSI (CG)",
                ForwardKind::LeastSquares as fn(ConstructionMethod) -> ForwardKind,
            ),
        ] {
            let scheme = Scheme::Forward(kind(ConstructionMethod::local_cg_fixed(tol, 2000)));
            let r = SchemeRun::new(&a, &b, ranks, scheme)
                .faults(faults.clone())
                .tag("fig4")
                .execute();
            t.push_row(vec![
                label.to_string(),
                sci(tol),
                r.iterations.to_string(),
                sci(r.time_s),
                f2(r.time_s / ff.time_s),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_based_li_is_no_slower_than_lu_based() {
        // Figure 4's claim: "using CG has a shorter time-to-solution than
        // previous solutions for both LI and LSI" (4–15%).
        let ranks = 8;
        let (a, b) = workload("Kuu", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let faults = evenly_spaced_faults(5, ff.iterations, ranks, "fig4-test");
        let lu = SchemeRun::new(&a, &b, ranks, Scheme::li_exact())
            .faults(faults.clone())
            .tag("f4t")
            .execute();
        let cg = SchemeRun::new(
            &a,
            &b,
            ranks,
            Scheme::Forward(ForwardKind::Linear(ConstructionMethod::local_cg_fixed(
                1e-6, 2000,
            ))),
        )
        .faults(faults)
        .tag("f4t")
        .execute();
        assert!(lu.converged && cg.converged);
        assert!(
            cg.time_s <= lu.time_s * 1.001,
            "CG-based LI ({}) must not lose to LU-based ({})",
            cg.time_s,
            lu.time_s
        );
    }

    #[test]
    fn qr_baseline_pays_for_communication() {
        // The parallel-QR baseline must carry visible reconstruction cost.
        let ranks = 8;
        let (a, b) = workload("Kuu", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let faults = evenly_spaced_faults(5, ff.iterations, ranks, "fig4-test2");
        let qr = SchemeRun::new(&a, &b, ranks, Scheme::lsi_exact())
            .faults(faults.clone())
            .tag("f4t2")
            .execute();
        let cgls = SchemeRun::new(&a, &b, ranks, Scheme::lsi_local_cg())
            .faults(faults)
            .tag("f4t2")
            .execute();
        assert!(qr.breakdown.reconstruct_s > 0.0);
        assert!(
            cgls.time_s <= qr.time_s * 1.001,
            "local CGLS ({}) must not lose to parallel QR ({})",
            cgls.time_s,
            qr.time_s
        );
    }
}
