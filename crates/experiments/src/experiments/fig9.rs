//! Figure 9 — projected resilience overhead under weak scaling.

use rsls_models::{project_scheme, ProjectionConfig, ProjectionScheme};

use crate::output::{f2, sci, Table};
use crate::Scale;

/// System sizes projected (processes).
const SIZES: [usize; 7] = [192, 1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000];

/// Reproduces Figure 9: normalized `T_res`, `E_res` and power for RD,
/// CR-D, CR-M and FW under weak scaling (50K nnz/process, per-process
/// MTBF 6K hours ⇒ linearly decreasing system MTBF).
pub fn run(_scale: Scale) -> Vec<Table> {
    let cfg = ProjectionConfig::default();
    let mut tables = Vec::new();
    for metric in ["T_res", "E_res", "P"] {
        let mut t = Table::new(
            format!("Figure 9 — projected {metric} (normalized to fault-free)"),
            &["#processes", "MTBF (h)", "RD", "CR-D", "CR-M", "FW"],
        );
        for &n in &SIZES {
            let mtbf_h = cfg.per_process_mtbf_h / n as f64;
            let mut row = vec![n.to_string(), sci(mtbf_h)];
            for scheme in [
                ProjectionScheme::Rd,
                ProjectionScheme::CrDisk,
                ProjectionScheme::CrMemory,
                ProjectionScheme::Forward,
            ] {
                let p = project_scheme(scheme, &cfg, n);
                let v = match metric {
                    "T_res" => p.t_res_norm,
                    "E_res" => p.e_res_norm,
                    _ => p.p_norm,
                };
                row.push(if v.abs() < 0.01 && v != 0.0 {
                    sci(v)
                } else {
                    f2(v)
                });
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_tables_cover_all_sizes() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows.len(), SIZES.len());
        }
    }

    #[test]
    fn fig9_trends_hold() {
        // CR-D overhead grows fastest; FW grows; CR-M stays negligible;
        // RD flat; FW/CR-D power drops with scale.
        let cfg = ProjectionConfig::default();
        let t = |s, n| project_scheme(s, &cfg, n).t_res_norm;
        assert!(t(ProjectionScheme::CrDisk, 1_000_000) > t(ProjectionScheme::Forward, 1_000_000));
        assert!(t(ProjectionScheme::Forward, 1_000_000) > t(ProjectionScheme::Forward, 1_000));
        assert!(t(ProjectionScheme::CrMemory, 1_000_000) < 0.05);
        assert_eq!(t(ProjectionScheme::Rd, 1_000_000), 0.0);
        let p = |s, n| project_scheme(s, &cfg, n).p_norm;
        assert!(p(ProjectionScheme::Forward, 1_000_000) < p(ProjectionScheme::Forward, 1_000));
    }
}
