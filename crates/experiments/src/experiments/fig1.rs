//! Figure 1 — estimated MTBF for exascale systems from petascale systems.

use rsls_faults::{FaultClass, MtbfEstimator, SystemScale};

use crate::output::{sci, Table};
use crate::Scale;

/// Reproduces Figure 1: per-class system MTBF at petascale (20K nodes,
/// today's technology) and exascale (1M nodes, 11 nm).
pub fn run(_scale: Scale) -> Vec<Table> {
    let est = MtbfEstimator::default();
    let pet = SystemScale::petascale();
    let exa = SystemScale::exascale();

    let mut t = Table::new(
        "Figure 1 — estimated system MTBF (hours) per fault class",
        &[
            "class",
            "kind",
            "node MTBF (today, h)",
            "petascale 20K nodes (h)",
            "exascale 1M nodes (h)",
        ],
    );
    for class in FaultClass::ALL {
        t.push_row(vec![
            class.abbrev().to_string(),
            format!("{:?}", class.category()),
            sci(est.node_mtbf_h(class, pet)),
            sci(est.system_mtbf_h(class, pet)),
            sci(est.system_mtbf_h(class, exa)),
        ]);
    }
    t.push_row(vec![
        "ALL".to_string(),
        "combined".to_string(),
        "-".to_string(),
        sci(est.combined_system_mtbf_h(pet)),
        sci(est.combined_system_mtbf_h(exa)),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_table_with_seven_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 7);
    }

    #[test]
    fn exascale_combined_mtbf_is_below_one_hour() {
        // The paper's headline: "MTBF of an exascale system is within an
        // hour if projected from Petascale systems".
        let est = MtbfEstimator::default();
        assert!(est.combined_system_mtbf_h(SystemScale::exascale()) < 1.0);
    }
}
