//! Beyond-paper extensions: TMR, multilevel checkpointing, energy-optimal
//! intervals, and system-wide outages.
//!
//! The paper's related work discusses TMR and SCR-style multilevel
//! checkpointing, cites the energy-optimal checkpoint period of Aupy et
//! al., and classifies system-wide outages (SWO) without evaluating them.
//! This harness measures all four on the reproduction's machinery.

use rsls_core::interval::CheckpointInterval;
use rsls_core::{CheckpointStorage, DvfsPolicy, Scheme};
use rsls_faults::{FaultClass, FaultSchedule};

use crate::output::{f2, Table};
use crate::runners::{
    cr_interval_for, evenly_spaced_faults, poisson_faults_for, run_fault_free, workload, SchemeRun,
};
use crate::Scale;

/// Runs the four extension studies.
pub fn run(scale: Scale) -> Vec<Table> {
    let ranks = scale.default_ranks();
    vec![
        redundancy_and_multilevel(scale, ranks),
        interval_policies(scale, ranks),
        swo_survival(scale, ranks),
        checkpoint_compression(scale, ranks),
    ]
}

/// SZ-style lossy checkpoint compression on the disk tier.
fn checkpoint_compression(scale: Scale, ranks: usize) -> Table {
    use rsls_core::driver::RunConfig;
    use rsls_core::CompressionModel;

    use crate::runners::run_cached;

    let (a, b) = workload("crystm02", scale);
    // A congested shared PFS (50 MB/s aggregate): the regime where
    // checkpoint *bandwidth* dominates and compression pays off.
    let machine = rsls_cluster::MachineConfig {
        disk_bw_bytes_per_sec: 5.0e7,
        ..Default::default()
    };
    let ff = {
        let mut cfg = rsls_core::driver::RunConfig::new(Scheme::FaultFree, ranks);
        cfg.machine = machine.clone();
        run_cached(&a, &b, "ext-comp", cfg)
    };
    let interval = CheckpointInterval::EveryIterations(cr_interval_for(scale, ff.iterations));
    let scheme = Scheme::Checkpoint {
        storage: CheckpointStorage::Disk,
        interval,
    };
    let faults = evenly_spaced_faults(10, ff.iterations, ranks, "ext-comp");

    let mut t = Table::new(
        "Extension — lossy checkpoint compression (crystm02, CR-D on a congested PFS)",
        &["compressor", "T", "E", "checkpoint share"],
    );
    for (name, comp) in [
        ("none", None),
        (
            "SZ-like 10x @ 1 GB/s",
            Some(CompressionModel::lossy_default()),
        ),
        (
            "ZFP-like 4x @ 3 GB/s",
            Some(CompressionModel {
                ratio: 4.0,
                throughput_bytes_per_s: 3.0e9,
            }),
        ),
    ] {
        let mut cfg = RunConfig::new(scheme, ranks).with_faults(faults.clone());
        cfg.machine = machine.clone();
        cfg.checkpoint_compression = comp;
        cfg.run_tag = format!("ext-comp-{}", name.replace([' ', '@', '/'], ""));
        let r = run_cached(&a, &b, "ext-comp", cfg);
        let n = r.normalized_vs(&ff);
        t.push_row(vec![
            name.to_string(),
            f2(n.time),
            f2(n.energy),
            f2(r.breakdown.checkpoint_s / r.time_s),
        ]);
    }
    t
}

/// TMR and CR-ML against the paper's schemes under node faults.
fn redundancy_and_multilevel(scale: Scale, ranks: usize) -> Table {
    let (a, b) = workload("crystm02", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let interval = CheckpointInterval::EveryIterations(cr_interval_for(scale, ff.iterations));
    let faults = evenly_spaced_faults(10, ff.iterations, ranks, "ext-rm");

    let schemes: Vec<(Scheme, DvfsPolicy)> = vec![
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (Scheme::Tmr, DvfsPolicy::OsDefault),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Memory,
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Multilevel { disk_every: 4 },
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
    ];
    let mut t = Table::new(
        "Extension — TMR and multilevel checkpointing (crystm02, 10 node faults)",
        &["scheme", "T", "P", "E", "iters"],
    );
    t.push_row(vec![
        "FF".into(),
        f2(1.0),
        f2(1.0),
        f2(1.0),
        ff.iterations.to_string(),
    ]);
    for (scheme, dvfs) in schemes {
        let r = SchemeRun::new(&a, &b, ranks, scheme)
            .dvfs(dvfs)
            .faults(faults.clone())
            .tag("ext-rm")
            .execute();
        let n = r.normalized_vs(&ff);
        t.push_row(vec![
            r.scheme.clone(),
            f2(n.time),
            f2(n.power),
            f2(n.energy),
            r.iterations.to_string(),
        ]);
    }
    t
}

/// Checkpoint-interval policies: fixed vs Young vs Daly vs energy-optimal.
fn interval_policies(scale: Scale, ranks: usize) -> Table {
    let (a, b) = workload("Kuu", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let (faults, mtbf_s) = poisson_faults_for(&ff, 4.0, ranks, "ext-int");

    let mut t = Table::new(
        "Extension — checkpoint-interval policies (Kuu, CR-D, rate-based faults)",
        &["policy", "interval (iters)", "T", "E"],
    );
    for (name, interval) in [
        ("fixed-100", CheckpointInterval::EveryIterations(100)),
        ("Young", CheckpointInterval::Young),
        ("Daly", CheckpointInterval::Daly),
        ("energy-optimal", CheckpointInterval::EnergyOptimal),
    ] {
        // Disk storage: the per-checkpoint cost is large enough that the
        // interval policies actually differ.
        let scheme = Scheme::Checkpoint {
            storage: CheckpointStorage::Disk,
            interval,
        };
        let r = SchemeRun::new(&a, &b, ranks, scheme)
            .faults(faults.clone())
            .tag(format!("ext-int-{name}"))
            .mtbf_s(mtbf_s)
            .execute();
        let n = r.normalized_vs(&ff);
        t.push_row(vec![
            name.to_string(),
            r.checkpoint_interval_iters
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            f2(n.time),
            f2(n.energy),
        ]);
    }
    t
}

/// System-wide outages: which schemes retain progress.
fn swo_survival(scale: Scale, ranks: usize) -> Table {
    let (a, b) = workload("Kuu", scale);
    let ff = run_fault_free(&a, &b, ranks);
    let interval = CheckpointInterval::EveryIterations(cr_interval_for(scale, ff.iterations));
    let swo = FaultSchedule::single_at_iteration(ff.iterations / 2, 0, FaultClass::Swo);

    let schemes: Vec<(Scheme, DvfsPolicy)> = vec![
        (Scheme::Dmr, DvfsPolicy::OsDefault),
        (Scheme::li_local_cg(), DvfsPolicy::ThrottleWaiters),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Memory,
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Disk,
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
        (
            Scheme::Checkpoint {
                storage: CheckpointStorage::Multilevel { disk_every: 4 },
                interval,
            },
            DvfsPolicy::OsDefault,
        ),
    ];
    let mut t = Table::new(
        "Extension — system-wide outage at mid-solve (Kuu)",
        &["scheme", "norm iters", "retains progress"],
    );
    for (scheme, dvfs) in schemes {
        let r = SchemeRun::new(&a, &b, ranks, scheme)
            .dvfs(dvfs)
            .faults(swo.clone())
            .tag("ext-swo")
            .execute();
        let norm = r.iterations as f64 / ff.iterations as f64;
        t.push_row(vec![r.scheme.clone(), f2(norm), (norm < 1.3).to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_policies_behave_sanely() {
        // Energy-optimal checkpoints at least as often as Young (ρ ≤ 1),
        // and all policies converge.
        let ranks = 16;
        let (a, b) = workload("wathen100", Scale::Quick);
        let ff = run_fault_free(&a, &b, ranks);
        let (faults, mtbf) = poisson_faults_for(&ff, 3.0, ranks, "ext-test");
        let interval_of = |interval| {
            let scheme = Scheme::Checkpoint {
                storage: CheckpointStorage::Memory,
                interval,
            };
            let r = SchemeRun::new(&a, &b, ranks, scheme)
                .faults(faults.clone())
                .tag("ext-test")
                .mtbf_s(mtbf)
                .execute();
            assert!(r.converged);
            r.checkpoint_interval_iters.unwrap()
        };
        let young = interval_of(CheckpointInterval::Young);
        let energy = interval_of(CheckpointInterval::EnergyOptimal);
        assert!(energy <= young, "energy-optimal {energy} vs Young {young}");
    }
}
