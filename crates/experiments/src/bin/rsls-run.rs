//! Command-line entry point for the paper-reproduction harnesses.
//!
//! ```text
//! rsls-run --list                 list available experiments
//! rsls-run --experiment fig5      run one experiment
//! rsls-run --all                  run every experiment
//! rsls-run --all --csv out/       additionally dump CSV files
//! RSLS_SCALE=full rsls-run --all  paper-sized matrices (slow)
//! ```

use std::path::PathBuf;
use std::time::Instant;

use rsls_experiments::experiments::{by_name, ALL};
use rsls_experiments::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: rsls-run [--list] [--all] [--experiment <name>] [--csv <dir>] [--svg <dir>]\n\
         experiments: {}",
        ALL.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut run_all = false;
    let mut names: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in ALL {
                    println!("{:<8} {}", e.name, e.description);
                }
                return;
            }
            "--all" => run_all = true,
            "--experiment" | "-e" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                names.push(args[i].clone());
            }
            "--csv" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                csv_dir = Some(PathBuf::from(&args[i]));
            }
            "--svg" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                svg_dir = Some(PathBuf::from(&args[i]));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let scale = Scale::from_env();
    println!(
        "scale: {:?} (set RSLS_SCALE=full for paper-sized matrices)\n",
        scale
    );

    let selected: Vec<_> = if run_all {
        ALL.iter().collect()
    } else {
        names
            .iter()
            .map(|n| by_name(n).unwrap_or_else(|| {
                eprintln!("unknown experiment '{n}'");
                usage();
            }))
            .collect()
    };
    if selected.is_empty() {
        usage();
    }

    for e in selected {
        let start = Instant::now();
        println!(">>> {} — {}", e.name, e.description);
        let tables = (e.run)(scale);
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{}-{}.csv", e.name, i));
                if let Err(err) = t.write_csv(&path) {
                    eprintln!("warning: failed to write {}: {err}", path.display());
                } else {
                    println!("csv: {}", path.display());
                }
            }
            if let Some(dir) = &svg_dir {
                if let Some(svg) = rsls_experiments::plot::render_auto(t) {
                    let path = dir.join(format!("{}-{}.svg", e.name, i));
                    if let Err(err) = std::fs::create_dir_all(dir)
                        .and_then(|_| std::fs::write(&path, svg))
                    {
                        eprintln!("warning: failed to write {}: {err}", path.display());
                    } else {
                        println!("svg: {}", path.display());
                    }
                }
            }
        }
        println!("<<< {} done in {:.1?}\n", e.name, start.elapsed());
    }
}
