//! Command-line entry point for the paper-reproduction harnesses.
//!
//! ```text
//! rsls-run --list                 list available experiments
//! rsls-run --experiment fig5      run one experiment
//! rsls-run --all                  run every experiment
//! rsls-run --all --csv out/       additionally dump CSV files
//! rsls-run --all --jobs 8        run campaign units on 8 workers
//! rsls-run --all --resume         continue an interrupted campaign
//! RSLS_SCALE=full rsls-run --all  paper-sized matrices (slow)
//! ```
//!
//! Every solver invocation goes through the campaign engine
//! (`rsls-campaign`): completed runs are cached by content address under
//! `--cache-dir` (default `results/cache`), so re-running an experiment
//! re-reads its reports instead of re-solving, and `--jobs N` executes
//! independent units in parallel without changing any result byte.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use rsls_campaign::EngineOptions;
use rsls_experiments::campaign;
use rsls_experiments::experiments::{by_name, ALL};
use rsls_experiments::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: rsls-run [--list] [--all] [--experiment <name>] [--csv <dir>] [--svg <dir>]\n\
         \x20               [--jobs <n>] [--cache-dir <dir>] [--resume] [--no-cache]\n\
         experiments: {}",
        ALL.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut run_all = false;
    let mut names: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut cache_dir = PathBuf::from("results/cache");
    let mut resume = false;
    let mut use_cache = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in ALL {
                    println!("{:<8} {}", e.name, e.description);
                }
                return;
            }
            "--all" => run_all = true,
            "--experiment" | "-e" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                names.push(args[i].clone());
            }
            "--csv" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                csv_dir = Some(PathBuf::from(&args[i]));
            }
            "--svg" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                svg_dir = Some(PathBuf::from(&args[i]));
            }
            "--jobs" | "-j" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                jobs = match args[i].parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs takes a positive integer");
                        usage();
                    }
                };
            }
            "--cache-dir" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                cache_dir = PathBuf::from(&args[i]);
            }
            "--resume" => resume = true,
            "--no-cache" => use_cache = false,
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let journal_path = cache_dir
        .parent()
        .map(|p| p.join("campaign.journal"))
        .unwrap_or_else(|| PathBuf::from("campaign.journal"));
    if let Err(e) = campaign::configure(EngineOptions {
        jobs,
        cache_dir: cache_dir.clone(),
        use_cache,
        resume,
        journal_path: Some(journal_path),
        retries: 0,
    }) {
        eprintln!("failed to configure campaign engine: {e}");
        std::process::exit(1);
    }

    let scale = Scale::from_env();
    println!(
        "scale: {:?} (set RSLS_SCALE=full for paper-sized matrices)",
        scale
    );
    println!(
        "campaign: {jobs} worker{}, cache {} at {}{}\n",
        if jobs == 1 { "" } else { "s" },
        if use_cache { "enabled" } else { "disabled" },
        cache_dir.display(),
        if resume { ", resuming" } else { "" },
    );

    let selected: Vec<_> = if run_all {
        ALL.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{n}'");
                    usage();
                })
            })
            .collect()
    };
    if selected.is_empty() {
        usage();
    }

    let mut failed_experiments: Vec<&str> = Vec::new();
    for e in selected {
        let start = Instant::now();
        println!(">>> {} — {}", e.name, e.description);
        campaign::set_experiment(e.name);
        // A failed unit panics out of the harness (its siblings have
        // already been journaled and cached); isolate it so the rest of
        // the campaign still runs.
        let tables = match panic::catch_unwind(AssertUnwindSafe(|| (e.run)(scale))) {
            Ok(tables) => tables,
            Err(_) => {
                eprintln!("<<< {} FAILED (see campaign journal)\n", e.name);
                failed_experiments.push(e.name);
                continue;
            }
        };
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{}-{}.csv", e.name, i));
                if let Err(err) = t.write_csv(&path) {
                    eprintln!("warning: failed to write {}: {err}", path.display());
                } else {
                    println!("csv: {}", path.display());
                }
            }
            if let Some(dir) = &svg_dir {
                if let Some(svg) = rsls_experiments::plot::render_auto(t) {
                    let path = dir.join(format!("{}-{}.svg", e.name, i));
                    if let Err(err) =
                        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, svg))
                    {
                        eprintln!("warning: failed to write {}: {err}", path.display());
                    } else {
                        println!("svg: {}", path.display());
                    }
                }
            }
        }
        println!("<<< {} done in {:.1?}\n", e.name, start.elapsed());
    }

    print!("{}", campaign::engine().summary_table());
    if !failed_experiments.is_empty() {
        eprintln!("failed experiments: {}", failed_experiments.join(", "));
        std::process::exit(1);
    }
}
