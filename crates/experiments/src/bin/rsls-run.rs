//! Command-line entry point for the paper-reproduction harnesses.
//!
//! ```text
//! rsls-run --list                 list available experiments
//! rsls-run --experiment fig5      run one experiment
//! rsls-run --all                  run every experiment
//! rsls-run --all --csv out/       additionally dump CSV files
//! rsls-run --all --jobs 8        run campaign units on 8 workers
//! rsls-run --all --resume         continue an interrupted campaign
//! rsls-run --serve 127.0.0.1:8080 serve results over HTTP (rsls-serve)
//! rsls-run --all --query "SELECT scheme, avg(energy) FROM runs GROUP BY scheme"
//! rsls-run --query "SELECT * FROM schemes"   query an existing store, run nothing
//! RSLS_SCALE=full rsls-run --all  paper-sized matrices (slow)
//! ```
//!
//! Every solver invocation goes through the campaign engine
//! (`rsls-campaign`): completed runs are cached by content address under
//! `--cache-dir` (default `results/cache`), so re-running an experiment
//! re-reads its reports instead of re-solving, and `--jobs N` executes
//! independent units in parallel without changing any result byte.
//! Experiment dispatch goes through `rsls_experiments::ExperimentRegistry`
//! — the same registry `rsls-serve` serves from.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use rsls_campaign::EngineOptions;
use rsls_chaos::{ChaosInjector, ChaosPlan};
use rsls_experiments::campaign;
use rsls_experiments::ExperimentRegistry;

fn usage() -> ! {
    eprintln!(
        "usage: rsls-run [--list] [--all] [--experiment <name>] [--csv <dir>] [--svg <dir>]\n\
         \x20               [--jobs <n>] [--cache-dir <dir>] [--resume] [--no-cache]\n\
         \x20               [--chaos-seed <n>] [--serve <addr>] [--query <sql>]\n\
         \x20               [--schemes <label,label,...>]\n\
         experiments: {}\n\
         schemes: {}",
        ExperimentRegistry::builtin().ids().join(", "),
        rsls_core::Scheme::KNOWN_LABELS.join(", ")
    );
    std::process::exit(2);
}

/// Delegates to the `rsls-serve` binary next to this one — the service
/// is a separate binary (it owns the process: signal handlers, worker
/// pools), and this passthrough only exists so `rsls-run --serve` does
/// the obvious thing.
fn serve_passthrough(addr: &str, jobs: usize, cache_dir: &PathBuf, use_cache: bool) -> ! {
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("rsls-serve")))
        .filter(|p| p.exists());
    let program = sibling.unwrap_or_else(|| PathBuf::from("rsls-serve"));
    let mut cmd = Command::new(&program);
    cmd.arg("--addr")
        .arg(addr)
        .arg("--jobs")
        .arg(jobs.to_string())
        .arg("--cache-dir")
        .arg(cache_dir);
    if !use_cache {
        cmd.arg("--no-cache");
    }
    match cmd.status() {
        Ok(status) => std::process::exit(status.code().unwrap_or(1)),
        Err(e) => {
            eprintln!(
                "failed to launch {} ({e}); build it with `cargo build --release -p rsls-serve`",
                program.display()
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let registry = ExperimentRegistry::builtin();
    let mut run_all = false;
    let mut names: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut cache_dir = PathBuf::from("results/cache");
    let mut resume = false;
    let mut use_cache = true;
    let mut chaos_seed: Option<u64> = None;
    let mut serve_addr: Option<String> = None;
    let mut query_sql: Option<String> = None;
    let mut scheme_filter: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in registry.entries() {
                    println!("{:<8} {}", e.name, e.description);
                }
                return;
            }
            "--all" => run_all = true,
            "--experiment" | "-e" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                names.push(args[i].clone());
            }
            "--csv" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                csv_dir = Some(PathBuf::from(&args[i]));
            }
            "--svg" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                svg_dir = Some(PathBuf::from(&args[i]));
            }
            "--jobs" | "-j" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                jobs = match args[i].parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs takes a positive integer");
                        usage();
                    }
                };
            }
            "--cache-dir" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                cache_dir = PathBuf::from(&args[i]);
            }
            "--resume" => resume = true,
            "--no-cache" => use_cache = false,
            "--chaos-seed" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                chaos_seed = match args[i].parse() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--chaos-seed takes an unsigned integer");
                        usage();
                    }
                };
            }
            "--serve" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                serve_addr = Some(args[i].clone());
            }
            "--query" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                query_sql = Some(args[i].clone());
            }
            "--schemes" => {
                i += 1;
                if i >= args.len() {
                    usage();
                }
                // Validate every label up front and canonicalize it
                // (`LI` → `LI (CG)`), so the filter compares against
                // exactly what `Scheme::label()` prints.
                let mut labels = Vec::new();
                for raw in args[i].split(',') {
                    match rsls_core::Scheme::parse_label(raw) {
                        Some(scheme) => labels.push(scheme.label()),
                        None => {
                            eprintln!(
                                "--schemes: unknown scheme label '{}' (known: {})",
                                raw.trim(),
                                rsls_core::Scheme::KNOWN_LABELS.join(", ")
                            );
                            std::process::exit(2);
                        }
                    }
                }
                scheme_filter = Some(labels);
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    if let Some(addr) = serve_addr {
        serve_passthrough(&addr, jobs, &cache_dir, use_cache);
    }

    if let Some(labels) = scheme_filter {
        println!("schemes: restricted to FF + {}", labels.join(", "));
        rsls_experiments::runners::set_scheme_filter(labels);
    }

    // Fail fast on a malformed --query before any unit runs: a typo
    // should cost nothing.
    if let Some(sql) = &query_sql {
        if let Err(e) = rsls_lab::parse(sql) {
            eprintln!("--query: {e}");
            std::process::exit(2);
        }
    }

    let journal_path = cache_dir
        .parent()
        .map(|p| p.join("campaign.journal"))
        .unwrap_or_else(|| PathBuf::from("campaign.journal"));
    // Under chaos the engine needs retry headroom: every injected
    // transient must be absorbable, so the run's outputs stay identical
    // to a fault-free campaign.
    let chaos = chaos_seed.map(|seed| Arc::new(ChaosInjector::new(ChaosPlan::aggressive(seed))));
    if let Err(e) = campaign::configure(EngineOptions {
        jobs,
        cache_dir: cache_dir.clone(),
        use_cache,
        resume,
        journal_path: Some(journal_path.clone()),
        retries: if chaos.is_some() { 8 } else { 0 },
        chaos: chaos.clone(),
        ..EngineOptions::default()
    }) {
        eprintln!("failed to configure campaign engine: {e}");
        std::process::exit(1);
    }

    let scale = rsls_experiments::Scale::from_env();
    let selected: Vec<&str> = if run_all {
        registry.ids()
    } else {
        names
            .iter()
            .map(|n| {
                registry
                    .get(n)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment '{n}'");
                        usage();
                    })
                    .name
            })
            .collect()
    };
    // With --query and no experiments, query the existing store; the
    // banners stay quiet so stdout is exactly the canonical JSON.
    if selected.is_empty() && query_sql.is_none() {
        usage();
    }
    if !selected.is_empty() {
        println!(
            "scale: {:?} (set RSLS_SCALE=full for paper-sized matrices)",
            scale
        );
        println!(
            "campaign: {jobs} worker{}, cache {} at {}{}{}\n",
            if jobs == 1 { "" } else { "s" },
            if use_cache { "enabled" } else { "disabled" },
            cache_dir.display(),
            if resume { ", resuming" } else { "" },
            match chaos_seed {
                Some(seed) => format!(", chaos seed {seed}"),
                None => String::new(),
            },
        );
    }

    // (name, passed, seconds) per experiment, for the final summary.
    let mut outcomes: Vec<(&str, bool, f64)> = Vec::new();
    for name in selected {
        let e = registry.get(name).expect("selected ids are registered");
        let start = Instant::now();
        println!(">>> {} — {}", e.name, e.description);
        // A failed unit panics out of the harness (its siblings have
        // already been journaled and cached); isolate it so the rest of
        // the campaign still runs.
        let tables = match panic::catch_unwind(AssertUnwindSafe(|| {
            registry.run(e.name, scale).expect("id is registered")
        })) {
            Ok(tables) => tables,
            Err(_) => {
                eprintln!("<<< {} FAILED (see campaign journal)\n", e.name);
                outcomes.push((e.name, false, start.elapsed().as_secs_f64()));
                continue;
            }
        };
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{}-{}.csv", e.name, i));
                if let Err(err) = t.write_csv(&path) {
                    eprintln!("warning: failed to write {}: {err}", path.display());
                } else {
                    println!("csv: {}", path.display());
                }
            }
            if let Some(dir) = &svg_dir {
                if let Some(svg) = rsls_experiments::plot::render_auto(t) {
                    let path = dir.join(format!("{}-{}.svg", e.name, i));
                    if let Err(err) =
                        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, svg))
                    {
                        eprintln!("warning: failed to write {}: {err}", path.display());
                    } else {
                        println!("svg: {}", path.display());
                    }
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        println!("<<< {} done in {secs:.1}s\n", e.name);
        outcomes.push((e.name, true, secs));
    }

    // Journal per-site chaos fired counts so the warehouse `chaos`
    // view can ingest them.
    campaign::engine().journal_chaos_summary();

    if !outcomes.is_empty() {
        print!("{}", campaign::engine().summary_table());
    }
    if let Some(chaos) = &chaos {
        println!(
            "chaos: {} fault{} injected ({})",
            chaos.total_fired(),
            if chaos.total_fired() == 1 { "" } else { "s" },
            chaos.fired_summary()
        );
    }

    // Per-experiment pass/fail summary, and a nonzero exit if anything
    // failed — CI and scripts key off both.
    let failed: Vec<&str> = outcomes
        .iter()
        .filter(|(_, ok, _)| !ok)
        .map(|&(name, _, _)| name)
        .collect();
    if outcomes.len() > 1 || !failed.is_empty() {
        println!("\nexperiment summary:");
        for (name, ok, secs) in &outcomes {
            println!(
                "  {name:<12} {} {secs:>8.1}s",
                if *ok { "PASS" } else { "FAIL" }
            );
        }
    }
    if !failed.is_empty() {
        eprintln!("failed experiments: {}", failed.join(", "));
        std::process::exit(1);
    }

    // --query passthrough: load the warehouse over the store this run
    // populated (or an existing one) and print canonical JSON — the
    // same bytes `rsls-lab query` and `rsls-serve /query` produce. The
    // committed BENCH_*.json baselines in the working directory attach
    // as the `kernels` view, so the perf trajectory across PRs plots
    // from the same query surface as the experiment results.
    if let Some(sql) = &query_sql {
        let mut warehouse = match rsls_lab::Warehouse::load(&cache_dir, Some(&journal_path)) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("failed to load warehouse from {}: {e}", cache_dir.display());
                std::process::exit(1);
            }
        };
        warehouse.attach_kernels(std::path::Path::new("."));
        match warehouse.query(sql) {
            Ok(result) => println!("{}", result.to_canonical_json()),
            Err(e) => {
                eprintln!("--query: {e}");
                std::process::exit(2);
            }
        }
    }
}
